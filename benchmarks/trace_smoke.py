"""The ``make trace-smoke`` gate: --trace output must stay loadable.

Runs ``vaultc check --trace`` over the examples corpus (every ``.vlt``
under ``examples/``) plus a synthesized workload with the worker pool
forced on, then schema-checks each trace file:

* every event carries the required Chrome trace-event keys
  (``name``/``ph``/``ts``/``pid``), a known phase, and a non-negative
  duration — the same validation ``chrome://tracing`` and Perfetto
  rely on to load the file at all;
* the forced-pool trace must show **distinct tracks**: the main
  process plus one pid per pool worker (skipped where fork does not
  exist).

Exits non-zero on any violation.  Usable both as a script and as a
pytest module.
"""

import glob
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis import synthesize_program            # noqa: E402
from repro.cli import main as vaultc                     # noqa: E402
from repro.obs import validate_chrome_trace              # noqa: E402
from repro.pipeline import fork_available                # noqa: E402

_EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: forced-pool workload size: big enough for a balanced 2-batch plan,
#: small enough to keep the gate under a second.
N_FORCED = 24


def _check_traced(path: str, extra_args=()) -> dict:
    """Run ``vaultc check --trace`` on ``path``; return the trace."""
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        rc = vaultc(["check", path, "--trace", trace_path, *extra_args])
        assert rc in (0, 1), f"vaultc check {path} exited {rc}"
        with open(trace_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    problems = validate_chrome_trace(payload)
    assert not problems, \
        f"{path}: trace schema violations: {problems}"
    events = payload["traceEvents"]
    assert any(e.get("ph") == "X" for e in events), \
        f"{path}: trace contains no spans"
    names = {e["name"] for e in events}
    for required in ("check_unit", "lex", "parse"):
        assert required in names, f"{path}: missing {required!r} span"
    return payload


def test_examples_corpus_traces():
    corpus = sorted(glob.glob(os.path.join(_EXAMPLES, "*.vlt")))
    assert corpus, f"no .vlt files under {_EXAMPLES}"
    for path in corpus:
        _check_traced(path)
        print(f"trace-smoke: {os.path.basename(path)}   OK")


def test_forced_pool_trace_has_worker_tracks():
    if not fork_available():
        print("trace-smoke: worker-track check skipped (no fork)")
        return
    with tempfile.TemporaryDirectory() as tmp:
        source_path = os.path.join(tmp, "forced.vlt")
        with open(source_path, "w", encoding="utf-8") as handle:
            handle.write(synthesize_program(N_FORCED, seed=17))
        payload = _check_traced(
            source_path, ["--jobs", "2", "--break-even", "0"])
    pids = {e["pid"] for e in payload["traceEvents"]}
    assert len(pids) >= 3, \
        f"expected main + 2 worker tracks, saw pids {sorted(pids)}"
    worker_spans = [e for e in payload["traceEvents"]
                    if e["name"] == "worker_batch"]
    assert worker_spans, "no worker_batch spans in forced-pool trace"
    print(f"trace-smoke: forced pool shows {len(pids)} tracks   OK")


if __name__ == "__main__":
    test_examples_corpus_traces()
    test_forced_pool_trace_has_worker_tracks()
    print("trace-smoke: PASS")
