"""Wire-level chaos smoke for the check daemon (``make daemon-chaos-smoke``).

The acceptance gate for the daemon's production-hardening story.  A
real ``vaultc serve`` subprocess sits behind a :class:`ChaosProxy`
acting out every wire fault a :class:`FaultPlan` can describe, and the
gate asserts the *user-visible* contract each time:

* **byte-identity under faults** — whatever goes wrong on the wire
  (torn reply, garbage frame, oversize header, disconnect, stall,
  daemon killed mid-check), the daemon-first/in-process-fallback path
  produces exactly the diagnostics of a plain in-process check, within
  a bounded wall-clock budget;
* **load shedding** — a burst past ``--max-queue`` gets ``busy``
  replies with retry hints; every request in the burst is answered
  (shed, never dropped);
* **supervision** — a ``--supervise`` daemon survives three SIGKILLs
  of its child, keeps answering checks, and exits 0 on SIGTERM;
* **storage faults** — an injected ENOSPC in the shared CAS degrades
  to a cache miss (never a wrong replay) and the tier keeps working
  once space returns;
* **control** — with no faults planned, the proxy relays transparently
  and acts out nothing.

Results land under the ``"daemon_resilience"`` key of
``BENCH_checker.json`` (read-modify-write; other gates own the other
keys).  Usable both as a script and as a pytest module; where AF_UNIX
sockets are unavailable the gate reports itself skipped rather than
passing vacuously.
"""

import json
import os
import signal
import socket as socket_mod
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import check_source                            # noqa: E402
from repro.cache import CASTier, SharedStore, encode_blob  # noqa: E402
from repro.pipeline.faults import FaultPlan               # noqa: E402
from repro.server import (ChaosProxy, DaemonClient,       # noqa: E402
                          DaemonUnavailable, check_via_daemon,
                          encode_frame, recv_frame)

_REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_BENCH_JSON = os.path.join(_REPO, "BENCH_checker.json")

#: wall-clock ceiling for one faulted check (fault + retry/fallback).
MAX_FAULTED_SECONDS = 15.0

#: wire faults exercised against a live daemon (``kill`` runs last —
#: it leaves the daemon dead and proves the fallback instead).
LIVE_FAULTS = ("torn", "garbage-frame", "oversize", "disconnect", "stall")

BURST_QUEUE = 2
BURST_SIZE = 5
SIGKILLS = 3

SOURCE_PATH = os.path.join(_REPO, "examples", "region_demo.vlt")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env["VAULTC_SERVER_TEST_OPS"] = "1"
    return env


def _spawn(sock: str, *extra: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
         "--jobs", "1", *extra],
        cwd=_REPO, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with DaemonClient(sock) as client:
                client.ping()
            return proc
        except DaemonUnavailable:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited early (rc={proc.returncode})")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became ready")


def _checked_outcome(source: str, socket_path: str, expected: str,
                     read_timeout: float = 5.0) -> dict:
    """One daemon-first check with in-process fallback; asserts
    byte-identity and the latency ceiling, returns what happened."""
    started = time.perf_counter()
    outcome = check_via_daemon(source, "chaos.vlt",
                               socket_path=socket_path,
                               read_timeout=read_timeout)
    via_daemon = outcome is not None
    render = outcome.render if outcome is not None \
        else check_source(source, "chaos.vlt").render()
    elapsed = time.perf_counter() - started
    assert render == expected, \
        "diagnostics diverged from the in-process check"
    assert elapsed < MAX_FAULTED_SECONDS, \
        f"faulted check took {elapsed:.1f}s (> {MAX_FAULTED_SECONDS}s)"
    return {"via_daemon": via_daemon,
            "seconds": round(elapsed, 4)}


def _scenario_wire_faults(tmp: str, source: str, expected: str) -> dict:
    """Every live wire fault, a no-fault control, then ``kill``."""
    sock = os.path.join(tmp, "chaos-daemon.sock")
    listen = os.path.join(tmp, "chaos-proxy.sock")
    proc = _spawn(sock)
    results = {}
    try:
        with ChaosProxy(listen, sock) as proxy:
            # Control: nothing planned, nothing acted out.
            control = _checked_outcome(source, listen, expected)
            assert control["via_daemon"], "control run missed the daemon"
            assert not proxy.faults_acted, \
                f"control run acted out faults: {dict(proxy.faults_acted)}"
            results["control"] = control

            for kind in LIVE_FAULTS:
                proxy.plan = FaultPlan.parse(f"{kind}@0")
                proxy.reset()
                stall = kind == "stall"
                row = _checked_outcome(
                    source, listen, expected,
                    read_timeout=1.0 if stall else 5.0)
                assert proxy.faults_acted.get(kind) == 1, \
                    f"{kind}: the planned fault was never acted out"
                assert row["via_daemon"], \
                    f"{kind}: the retry should have reached the daemon"
                results[kind] = row

            # kill: the daemon dies mid-check; the client must fall
            # back in-process with identical bytes, never hang.
            proxy.plan = FaultPlan.parse("kill@0")
            proxy.reset()
            row = _checked_outcome(source, listen, expected)
            assert proxy.faults_acted.get("kill") == 1
            assert not row["via_daemon"], \
                "kill: expected the in-process fallback"
            results["kill"] = row
        assert proc.wait(timeout=20) == 86, \
            "test_die child should have exited 86"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20)
    return results


def _scenario_burst(tmp: str, source: str) -> dict:
    """A burst past ``--max-queue``: shed with busy, nothing dropped."""
    sock = os.path.join(tmp, "burst-daemon.sock")
    proc = _spawn(sock, "--max-queue", str(BURST_QUEUE))
    try:
        raw = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        raw.connect(sock)
        raw.settimeout(30)
        # Hold the loop busy so the burst is ingested all at once.
        raw.sendall(encode_frame({"op": "check", "source": source,
                                  "filename": "sleeper.vlt",
                                  "test_sleep": 0.4}))
        time.sleep(0.15)
        raw.sendall(b"".join(
            encode_frame({"op": "check", "source": source,
                          "filename": f"burst{i}.vlt", "id": i})
            for i in range(BURST_SIZE)))
        replies = [recv_frame(raw) for _ in range(BURST_SIZE + 1)]
        raw.close()
        assert all(r is not None for r in replies), \
            "a burst request went unanswered"
        busy = [r for r in replies if r.get("kind") == "busy"]
        ok = [r for r in replies if r.get("ok") is True]
        assert len(busy) == BURST_SIZE - BURST_QUEUE, \
            f"expected {BURST_SIZE - BURST_QUEUE} busy replies, " \
            f"got {len(busy)}"
        assert len(ok) == BURST_QUEUE + 1
        for r in busy:
            assert 50 <= r["retry_after_ms"] <= 5000
            assert r["queue_depth"] == BURST_QUEUE
        proc.send_signal(signal.SIGTERM)
        # First SIGTERM drains; the idle daemon exits promptly.
        assert proc.wait(timeout=20) == 0
        assert not os.path.exists(sock)
        return {"burst": BURST_SIZE, "queue_limit": BURST_QUEUE,
                "shed": len(busy),
                "retry_after_ms": [r["retry_after_ms"] for r in busy]}
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20)


def _scenario_supervised(tmp: str, source: str, expected: str) -> dict:
    """``--supervise`` outlives SIGKILL x3 and still answers checks."""
    sock = os.path.join(tmp, "sup-daemon.sock")
    proc = _spawn(sock, "--supervise")
    pids = []
    try:
        with DaemonClient(sock) as client:
            pids.append(client.ping()["pid"])
        assert pids[0] != proc.pid, "--supervise must run a child"
        for _round in range(SIGKILLS):
            os.kill(pids[-1], signal.SIGKILL)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    with DaemonClient(sock) as client:
                        pid = client.ping()["pid"]
                    if pid != pids[-1]:
                        pids.append(pid)
                        break
                except DaemonUnavailable:
                    pass
                time.sleep(0.1)
            else:
                raise AssertionError(
                    f"daemon not respawned after SIGKILL #{_round + 1}")
        outcome = check_via_daemon(source, "sup.vlt", socket_path=sock)
        assert outcome is not None and outcome.via_daemon
        assert outcome.render == expected
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0, \
            "supervisor must exit 0 on SIGTERM"
        return {"sigkills": SIGKILLS, "respawns": len(pids) - 1,
                "pids": pids}
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20)


def _scenario_enospc(tmp: str) -> dict:
    """Injected ENOSPC in the CAS: degrade to a miss, then recover."""
    store = SharedStore([CASTier(os.path.join(tmp, "cas"), fsync=False,
                                 fault_plan=FaultPlan.parse("enospc@1"))])
    key = "c" * 64 + "-s"
    blob = encode_blob({"smoke": True})
    store.put_blobs({key: blob})
    assert store.get_blobs([key]) == {}, \
        "an ENOSPC'd write must degrade to a miss, not a wrong replay"
    io_errors_after_fault = store.tiers[0].io_errors
    assert io_errors_after_fault == 1
    store.put_blobs({key: blob})              # the disk came back
    assert store.get_blobs([key]) == {key: blob}
    return {"io_errors": io_errors_after_fault, "recovered": True}


def test_daemon_chaos_smoke():
    if not hasattr(socket_mod, "AF_UNIX"):
        print("daemon chaos smoke SKIPPED: no AF_UNIX sockets")
        return

    with open(SOURCE_PATH, "r", encoding="utf-8") as handle:
        source = handle.read()
    expected = check_source(source, "chaos.vlt").render()

    with tempfile.TemporaryDirectory(prefix="vaultc-dchaos-") as tmp:
        wire = _scenario_wire_faults(tmp, source, expected)
        burst = _scenario_burst(tmp, source)
        supervised = _scenario_supervised(tmp, source, expected)
        enospc = _scenario_enospc(tmp)

    result = {"wire_faults": wire, "burst": burst,
              "supervised": supervised, "enospc": enospc,
              "byte_identical": True}

    # Read-modify-write: other gates own the other keys of the file;
    # this gate owns only "daemon_resilience".
    try:
        with open(_BENCH_JSON, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged["daemon_resilience"] = result
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")

    print("=" * 64)
    print("| daemon chaos smoke: wire faults, shed, supervise, ENOSPC")
    print("=" * 64)
    for kind in ("control",) + LIVE_FAULTS + ("kill",):
        row = wire[kind]
        how = "via daemon " if row["via_daemon"] else "fallback   "
        print(f"  {kind:<14} {how} {row['seconds'] * 1000:8.1f} ms  "
              f"byte-identical")
    print(f"  burst {burst['burst']} vs queue {burst['queue_limit']}: "
          f"{burst['shed']} shed with busy, all answered")
    print(f"  supervise: survived {supervised['sigkills']} SIGKILLs "
          f"({supervised['respawns']} respawns), SIGTERM -> rc 0")
    print(f"  ENOSPC in CAS: degraded to miss, recovered "
          f"(io_errors={enospc['io_errors']})")
    print("=" * 64)


if __name__ == "__main__":
    test_daemon_chaos_smoke()
    print("daemon chaos smoke: OK")
