"""A fast resilience smoke check (the ``make chaos-smoke`` gate).

Runs the ISSUE's acceptance scenario in a few seconds: a 120-function
corpus checked with ``--jobs 4`` while a seeded fault plan kills two
workers and hangs a third.  The run must complete *without* falling
back to serial, with diagnostics byte-identical to a serial check, and
with the recovery counters showing exactly the injected faults (two
respawns from crashes, one from the watchdog kill).  A second round
corrupts the on-disk summary cache and asserts quarantine-and-rebuild.
Finally the same scenario is driven end-to-end through the ``vaultc``
CLI (``--inject-faults`` / ``--batch-timeout`` / ``--profile``).

Where ``os.fork`` is unavailable the pool cannot exist, so the gate
reports itself skipped rather than passing vacuously.

Usable both as a script (``python benchmarks/chaos_smoke.py``) and as
a pytest module.
"""

import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import check_source                           # noqa: E402
from repro.analysis import synthesize_program            # noqa: E402
from repro.pipeline import (CheckSession, FaultPlan,     # noqa: E402
                            fork_available)

N_FUNCTIONS = 120
UNITS = ["region"]
FAULT_SPEC = "crash@0,crash@1,hang@2"
BATCH_TIMEOUT = 1.0


def test_supervised_pool_survives_chaos():
    if not fork_available():
        print("chaos-smoke: skipped (fork not available)")
        return
    source = synthesize_program(N_FUNCTIONS, seed=13, error_rate=0.2)
    expected = check_source(source, units=UNITS).render()

    start = time.perf_counter()
    with CheckSession(units=UNITS, jobs=4, break_even_seconds=0.0,
                      batch_timeout=BATCH_TIMEOUT,
                      fault_plan=FaultPlan.parse(FAULT_SPEC)) as session:
        rendered = session.check(source).render()
    elapsed = time.perf_counter() - start

    assert rendered == expected, \
        "diagnostics under injected faults must be byte-identical to serial"
    stats = session.stats
    assert stats.serial_fallbacks == 0, \
        "the pool must recover in place, not abandon parallelism"
    assert stats.respawns == 3, f"expected 3 respawns, got {stats.respawns}"
    assert stats.timeouts == 1, f"expected 1 watchdog kill, got " \
        f"{stats.timeouts}"
    print(f"chaos-smoke: {N_FUNCTIONS} fns, faults [{FAULT_SPEC}]: "
          f"recovered in {elapsed * 1000:.1f} ms "
          f"(respawns={stats.respawns}, timeouts={stats.timeouts}, "
          f"retries={stats.retries}, fallbacks={stats.serial_fallbacks})")
    print("chaos-smoke: byte-identity under worker faults   OK")


def test_corrupt_cache_is_quarantined():
    source = synthesize_program(20, seed=17)
    expected = check_source(source, units=UNITS).render()
    with tempfile.TemporaryDirectory() as cache_dir:
        with CheckSession(units=UNITS, cache_dir=cache_dir) as writer:
            writer.check(source)
        path = os.path.join(cache_dir, "summaries.pkl")
        with open(path, "r+b") as handle:
            data = handle.read()
            handle.seek(len(data) // 2)
            handle.write(bytes([data[len(data) // 2] ^ 0x40]))

        with CheckSession(units=UNITS, cache_dir=cache_dir) as victim:
            rendered = victim.check(source).render()
        assert rendered == expected
        assert victim.stats.cache_quarantines == 1
        quarantined = [name for name in os.listdir(cache_dir)
                       if name.startswith("summaries.pkl.corrupt.")]
        assert quarantined, \
            "the corrupt original must be preserved for post-mortems"

        with CheckSession(units=UNITS, cache_dir=cache_dir) as reader:
            reader.check(source)
        assert reader.stats.cache_quarantines == 0
        assert reader.stats.functions_checked == 0, \
            "the rebuilt cache must replay on the next run"
    print("chaos-smoke: cache quarantine + rebuild   OK")


def test_cli_chaos_run():
    if not fork_available():
        print("chaos-smoke: CLI round skipped (fork not available)")
        return
    source = synthesize_program(40, seed=19)
    with tempfile.TemporaryDirectory() as work:
        target = os.path.join(work, "prog.vlt")
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(source)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                         os.pardir, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", target,
             "--jobs", "4", "--break-even", "0",
             "--batch-timeout", str(BATCH_TIMEOUT),
             "--inject-faults", "crash@0", "--profile"],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, \
            f"CLI chaos run failed:\n{proc.stderr}"
        out = proc.stdout + proc.stderr
        assert "worker respawns" in out, \
            "--profile must surface the resilience counters"
    print("chaos-smoke: CLI --inject-faults round   OK")


if __name__ == "__main__":
    test_supervised_pool_survives_chaos()
    test_corrupt_cache_is_quarantined()
    test_cli_chaos_run()
    print("chaos-smoke: PASS")
