"""A fast parallel-pipeline smoke check (the ``make bench-smoke`` gate).

Runs in a few seconds on a tiny workload and asserts two properties:

* the worker pool's reason to exist — asking for ``--jobs N`` is never
  a pessimisation.  Concretely, on a multi-CPU host the parallel
  session must come within 5% of the serial cold check
  (``parallel_vs_cold >= 0.95``) — the scheduler's break-even fallback
  makes that hold even when the workload is too small for a real
  speedup.  On single-CPU hosts the timing gate is skipped (and says
  so); the byte-identity of forced-pool output is still verified, so
  the worker protocol gets exercised everywhere fork exists;

* the front-end ratchet — lex + parse must stay under a pinned
  fraction of the whole cold check on the 160-function corpus, and a
  one-chunk edit must serve >= 90% of chunks from the token cache on
  the warm re-check.  Both are ratios of numbers measured on the same
  run, so they hold on any hardware.

Usable both as a script (``python benchmarks/bench_smoke.py``) and as
a pytest module.
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis import synthesize_program           # noqa: E402
from repro.obs import Telemetry                          # noqa: E402
from repro.pipeline import CheckSession, fork_available  # noqa: E402

N_FUNCTIONS = 120
N_FUNCTIONS_FRONTEND = 160
UNITS = ["region"]

#: Ceiling on (lex + parse) / cold-check wall time.  The pre-optimised
#: front-end sat at ~0.72 on this corpus; the regex lexer + inlined
#: parser hold ~0.55-0.65 even on noisy single-CPU hosts (the fraction
#: is taken as the best of three runs, since scheduling noise can only
#: inflate it).
FRONTEND_FRACTION_CEILING = 0.70

#: Floor on the token-cache hit rate across a one-chunk-edit re-check.
TOKEN_CACHE_HIT_FLOOR = 0.90


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def test_parallel_never_pessimises():
    source = synthesize_program(N_FUNCTIONS, seed=13)
    cpus = _available_cpus()
    jobs = min(4, max(2, cpus))

    start = time.perf_counter()
    serial_report = CheckSession(units=UNITS).check(source)
    cold = time.perf_counter() - start

    with CheckSession(units=UNITS, jobs=jobs) as session:
        start = time.perf_counter()
        parallel_report = session.check(source)
        parallel = time.perf_counter() - start

    assert parallel_report.render() == serial_report.render(), \
        "parallel diagnostics must be byte-identical to serial"

    ratio = cold / parallel if parallel else float("inf")
    print(f"bench-smoke: {N_FUNCTIONS} fns, {cpus} CPU(s), jobs={jobs}: "
          f"serial {cold * 1000:.1f} ms, parallel {parallel * 1000:.1f} ms "
          f"(parallel_vs_cold={ratio:.2f})")

    if cpus >= 2 and fork_available():
        assert ratio >= 0.95, \
            f"--jobs {jobs} was a pessimisation: parallel_vs_cold={ratio:.2f}"
        print("bench-smoke: parallel_vs_cold >= 0.95   OK")
    else:
        print(f"bench-smoke: timing gate skipped "
              f"({cpus} CPU(s), fork_available={fork_available()})")

    if fork_available():
        # Force the pool below break-even so the worker protocol runs
        # even where the scheduler would (rightly) stay serial.
        with CheckSession(units=UNITS, jobs=2,
                          break_even_seconds=0.0) as forced:
            forced_report = forced.check(source)
            assert forced.stats.parallel_runs == 1
        assert forced_report.render() == serial_report.render(), \
            "forced worker-pool output must be byte-identical"
        print("bench-smoke: forced pool byte-identity   OK")


def test_frontend_ratchet():
    source = synthesize_program(N_FUNCTIONS_FRONTEND, seed=42)

    # Front-end share of a cold check: best of three traced runs (the
    # tracer's span totals are the same data ``--trace`` reports, and
    # timing noise can only push the fraction *up*, so min is the
    # honest estimator of what the front-end actually costs).
    best_fraction = float("inf")
    for _ in range(3):
        telemetry = Telemetry(trace=True)
        session = CheckSession(units=UNITS, telemetry=telemetry)
        start = time.perf_counter()
        session.check(source)
        wall = time.perf_counter() - start
        totals = telemetry.tracer.phase_totals()
        frontend = totals.get("lex", 0.0) + totals.get("parse", 0.0)
        best_fraction = min(best_fraction, frontend / wall)
    print(f"bench-smoke: front-end fraction {best_fraction:.2f} "
          f"(ceiling {FRONTEND_FRACTION_CEILING})")
    assert best_fraction <= FRONTEND_FRACTION_CEILING, \
        f"lex+parse take {best_fraction:.0%} of a cold check " \
        f"(ceiling {FRONTEND_FRACTION_CEILING:.0%})"

    # Token-cache hit rate across a warm one-chunk-edit re-check.  The
    # edit is what forces the session back through ``_parse`` — a
    # byte-identical warm replay is served from the context cache and
    # never consults the token cache at all.
    session = CheckSession(units=UNITS)
    session.check(source)
    needle = "c.value += "
    at = source.index(needle, len(source) // 2)
    end = source.index(";", at)
    edited = source[:at] + "c.value += 4242" + source[end:]
    hits0, misses0 = session.stats.token_hits, session.stats.token_misses
    session.check(edited)
    hits = session.stats.token_hits - hits0
    misses = session.stats.token_misses - misses0
    rate = hits / (hits + misses) if hits + misses else 0.0
    print(f"bench-smoke: token cache {hits} hits / {misses} misses "
          f"({rate:.1%}) on one-chunk edit")
    assert rate >= TOKEN_CACHE_HIT_FLOOR, \
        f"token-cache hit rate {rate:.1%} under " \
        f"{TOKEN_CACHE_HIT_FLOOR:.0%} on a one-chunk edit"
    assert session.stats.relex_splices >= 1, \
        "a same-position chunk edit must take the relex splice path"
    print("bench-smoke: front-end ratchet   OK")


if __name__ == "__main__":
    test_parallel_never_pessimises()
    test_frontend_ratchet()
    print("bench-smoke: PASS")
