"""A fast parallel-pipeline smoke check (the ``make bench-smoke`` gate).

Runs in a few seconds on a tiny workload and asserts the property the
worker pool exists to guarantee: asking for ``--jobs N`` is never a
pessimisation.  Concretely, on a multi-CPU host the parallel session
must come within 5% of the serial cold check (``parallel_vs_cold >=
0.95``) — the scheduler's break-even fallback makes that hold even
when the workload is too small for a real speedup.

On single-CPU hosts the timing gate is skipped (and says so); the
byte-identity of forced-pool output is still verified, so the worker
protocol gets exercised everywhere fork exists.

Usable both as a script (``python benchmarks/bench_smoke.py``) and as
a pytest module.
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis import synthesize_program           # noqa: E402
from repro.pipeline import CheckSession, fork_available  # noqa: E402

N_FUNCTIONS = 120
UNITS = ["region"]


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def test_parallel_never_pessimises():
    source = synthesize_program(N_FUNCTIONS, seed=13)
    cpus = _available_cpus()
    jobs = min(4, max(2, cpus))

    start = time.perf_counter()
    serial_report = CheckSession(units=UNITS).check(source)
    cold = time.perf_counter() - start

    with CheckSession(units=UNITS, jobs=jobs) as session:
        start = time.perf_counter()
        parallel_report = session.check(source)
        parallel = time.perf_counter() - start

    assert parallel_report.render() == serial_report.render(), \
        "parallel diagnostics must be byte-identical to serial"

    ratio = cold / parallel if parallel else float("inf")
    print(f"bench-smoke: {N_FUNCTIONS} fns, {cpus} CPU(s), jobs={jobs}: "
          f"serial {cold * 1000:.1f} ms, parallel {parallel * 1000:.1f} ms "
          f"(parallel_vs_cold={ratio:.2f})")

    if cpus >= 2 and fork_available():
        assert ratio >= 0.95, \
            f"--jobs {jobs} was a pessimisation: parallel_vs_cold={ratio:.2f}"
        print("bench-smoke: parallel_vs_cold >= 0.95   OK")
    else:
        print(f"bench-smoke: timing gate skipped "
              f"({cpus} CPU(s), fork_available={fork_available()})")

    if fork_available():
        # Force the pool below break-even so the worker protocol runs
        # even where the scheduler would (rightly) stay serial.
        with CheckSession(units=UNITS, jobs=2,
                          break_even_seconds=0.0) as forced:
            forced_report = forced.check(source)
            assert forced.stats.parallel_runs == 1
        assert forced_report.render() == serial_report.render(), \
            "forced worker-pool output must be byte-identical"
        print("bench-smoke: forced pool byte-identity   OK")


if __name__ == "__main__":
    test_parallel_never_pessimises()
    print("bench-smoke: PASS")
