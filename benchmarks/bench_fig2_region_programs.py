"""Figure 2 — okay / dangling / leaky.

The paper's three region programs: ``okay`` typechecks; ``dangling``
accesses through a deleted region's key (rejected); ``leaky`` never
deletes (rejected as an effect-clause violation).  The bench asserts
all three verdicts and times a full check of the trio.
"""

from repro import check_source
from repro.diagnostics import Code

from conftest import banner

POINT = "struct point { int x; int y; }\n"

OKAY = POINT + """
void okay() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
    Region.delete(rgn);
}
"""

DANGLING = POINT + """
void dangling() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    Region.delete(rgn);
    pt.x++;
}
"""

LEAKY = POINT + """
void leaky() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
}
"""


def check_all_three():
    return (check_source(OKAY, units=["region"]),
            check_source(DANGLING, units=["region"]),
            check_source(LEAKY, units=["region"]))


def test_fig2_verdicts(benchmark):
    okay, dangling, leaky = benchmark(check_all_three)

    assert okay.ok
    assert dangling.has(Code.KEY_NOT_HELD)
    assert leaky.has(Code.KEY_LEAKED)

    banner("Figure 2: region programs", [
        "okay      -> accepted                      (paper: accepted)",
        f"dangling  -> {dangling.codes()[0].value} key not held "
        "(paper: 'key R not in held-key set')",
        f"leaky     -> {leaky.codes()[0].value} resource leak  "
        "(paper: 'extra key R in held-key set')",
        "all three verdicts REPRODUCED",
    ])
