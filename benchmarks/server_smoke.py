"""A fast daemon smoke check (the ``make server-smoke`` gate).

Starts a real ``vaultc serve`` subprocess, fires **three concurrent**
check requests at it from separate client threads, and asserts:

* every reply is byte-identical to the in-process check of the same
  source (the daemon's central promise);
* a SIGTERM then shuts the daemon down cleanly — exit code 0, socket
  file unlinked, no stray worker processes;
* with the daemon *gone*, ``vaultc check --daemon`` on the same file
  still produces the exact same stdout (transparent fallback).

Where AF_UNIX sockets are unavailable the gate reports itself skipped
rather than passing vacuously.

Usable both as a script (``python benchmarks/server_smoke.py``) and as
a pytest module.
"""

import os
import signal
import socket as socket_mod
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import check_source                           # noqa: E402
from repro.analysis import synthesize_program            # noqa: E402
from repro.server import DaemonClient, DaemonUnavailable  # noqa: E402

N_FUNCTIONS = 60
N_CLIENTS = 3
_REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def _spawn_daemon(sock: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock],
        cwd=_REPO, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with DaemonClient(sock) as client:
                client.ping()
            return proc
        except DaemonUnavailable:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited early (rc={proc.returncode})")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became ready")


def test_server_smoke():
    if not hasattr(socket_mod, "AF_UNIX"):
        print("server smoke SKIPPED: no AF_UNIX sockets on this platform")
        return

    source = synthesize_program(N_FUNCTIONS, seed=9)
    expected = check_source(source, "smoke.vlt")
    assert expected.ok
    rendered = expected.render()

    with tempfile.TemporaryDirectory(prefix="vaultc-smoke-") as tmp:
        sock = os.path.join(tmp, "daemon.sock")
        proc = _spawn_daemon(sock)
        replies = []
        errors = []

        def _client(i: int):
            try:
                with DaemonClient(sock) as client:
                    replies.append((i, client.check(source, "smoke.vlt")))
            except Exception as exc:             # noqa: BLE001
                errors.append((i, exc))

        threads = [threading.Thread(target=_client, args=(i,))
                   for i in range(N_CLIENTS)]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        elapsed = time.perf_counter() - started

        assert not errors, f"client failures: {errors}"
        assert len(replies) == N_CLIENTS
        for _i, reply in replies:
            assert reply["ok"] is True and reply["check_ok"] is True
            assert reply["render"] == rendered, \
                "daemon reply diverged from the in-process check"

        with DaemonClient(sock) as client:
            stats = client.stats()["stats"]
        coalesced = stats["metrics"].get(
            "server.coalesced", {}).get("value", 0)

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        assert rc == 0, f"daemon exited {rc} on SIGTERM"
        assert not os.path.exists(sock), "daemon left its socket behind"

        # Daemon gone: the CLI must fall back with identical stdout.
        path = os.path.join(tmp, "smoke.vlt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        plain = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", path],
            cwd=_REPO, env=_env(), capture_output=True, text=True)
        fallback = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", path,
             "--daemon", sock],
            cwd=_REPO, env=_env(), capture_output=True, text=True)
        assert plain.returncode == fallback.returncode == 0
        assert fallback.stdout == plain.stdout, \
            "--daemon fallback stdout diverged from plain check"

    print("=" * 64)
    print("| server smoke: daemon under concurrent clients")
    print("=" * 64)
    print(f"  {N_CLIENTS} concurrent clients answered in "
          f"{elapsed * 1000:.0f} ms ({coalesced} coalesced)")
    print("  all replies byte-identical to in-process check   VERIFIED")
    print("  SIGTERM -> exit 0, socket unlinked               VERIFIED")
    print("  --daemon fallback stdout identical               VERIFIED")
    print("=" * 64)


if __name__ == "__main__":
    test_server_smoke()
    print("server smoke: OK")
