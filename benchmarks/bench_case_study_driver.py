"""§4 case study — the floppy driver.

The paper ports a 4900-line C floppy driver to 5200 lines of Vault
(~6% annotation overhead), compiles it back to C and runs it under
Windows 2000.  We regenerate each part of that row:

* the driver checks clean against the kernel interface (timed);
* the annotated-vs-erased size comparison (our analogue of 4900/5200);
* the driver compiles (keys erased) and serves a real I/O workload on
  the simulated kernel, leak-free (timed).
"""

from repro.analysis import compare_sizes
from repro.drivers import FloppyHarness, check_driver, driver_source
from repro.kernel import (IOCTL_EJECT, IOCTL_GET_GEOMETRY, IOCTL_INSERT,
                          STATUS_NO_MEDIA, STATUS_SUCCESS)

from conftest import banner


def test_case_study_static_check(benchmark):
    report = benchmark(check_driver)
    assert report.ok, report.render()

    cmp = compare_sizes(driver_source())
    assert cmp.token_overhead > 0

    banner("Case study: static check + size", [
        "floppy.vlt checks clean against ntkernel.vlt (IRP ownership, "
        "completion routines, events, spin locks, IRQL, paged memory)",
        f"size: vault={cmp.vault_tokens} tokens / "
        f"erased={cmp.erased_tokens} tokens "
        f"-> +{cmp.token_overhead:.1%} annotation overhead",
        f"      vault={cmp.vault_lines} lines / "
        f"erased={cmp.erased_lines} lines "
        f"(+{cmp.line_overhead:.1%})",
        "paper: 4900 C lines -> 5200 Vault lines (+6.1%); same shape — "
        "a single-digit-to-low-teens annotation tax   REPRODUCED",
    ])


def run_workload():
    harness = FloppyHarness(check=False)   # checked in the other bench
    harness.boot()
    harness.open()
    payload = bytes(range(256)) * 4
    harness.write(0, payload)
    _irp, data = harness.read(0, len(payload))
    assert data == payload
    harness.ioctl(IOCTL_GET_GEOMETRY)
    harness.ioctl(IOCTL_EJECT)
    no_media, _ = harness.read(0, 16)
    assert no_media.status == STATUS_NO_MEDIA
    harness.ioctl(IOCTL_INSERT)
    pnp = harness.pnp()
    assert pnp.status == STATUS_SUCCESS
    harness.close()
    assert harness.audit() == []
    return harness


def test_case_study_driver_runs(benchmark):
    harness = benchmark(run_workload)

    banner("Case study: execution", [
        f"workload: open, 1 KiB write+read, geometry, eject/insert, "
        f"PnP (Figure 7 path), close",
        f"device transfers: {harness.device.reads} read(s), "
        f"{harness.device.writes} write(s); "
        f"kernel ticks: {harness.host.kernel.ticks}",
        f"driver stats (spin-locked): {harness.stats_total()} operations",
        "audit: zero leaked IRPs/regions/sockets/files",
        "paper: 'the driver linked with the wrapper runs successfully "
        "under Windows 2000' — ours runs under the simulated kernel   "
        "REPRODUCED",
    ])


def run_compiled_workload():
    harness = FloppyHarness(check=False, compiled=True)
    harness.boot()
    harness.open()
    payload = bytes(range(256)) * 4
    harness.write(0, payload)
    _irp, data = harness.read(0, len(payload))
    assert data == payload
    pnp = harness.pnp()
    assert pnp.status == STATUS_SUCCESS
    harness.close()
    assert harness.audit() == []
    return harness


def test_case_study_compiled_driver(benchmark):
    """The deployment model: the checked driver compiled with keys
    erased, serving the same workload."""
    harness = benchmark(run_compiled_workload)
    assert harness.device.reads == 1 and harness.device.writes == 1

    banner("Case study: compiled deployment (Vault -> Python, keys "
           "erased)", [
        "the same driver, compiled — no key machinery in the emitted "
        "code — serves the workload on the same kernel",
        "paper: checked Vault compiled to C and linked via a thin "
        "wrapper   REPRODUCED",
    ])
