"""Figure 7 / §4.1 / §4.3 — IRP ownership and completion routines.

Asserts the paper's IRP claims: the completion-routine + event idiom
typechecks; a service routine cannot drop, double-complete, or touch a
released IRP; footnote 10's "completion routine that consumes the IRP
can only return 'MoreProcessingRequired" holds.  Then *executes* the
Figure 7 idiom through the simulated kernel.
"""

from repro import check_source
from repro.diagnostics import Code
from repro.drivers import FloppyHarness
from repro.kernel import STATUS_SUCCESS

from conftest import banner

FIG7 = """
DSTATUS<I> PnpRequest(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    KEVENT<I> irp_is_back = KeInitializeEvent(irp);
    tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT d,
                                           tracked(I) IRP i) [-I] {
        KeSignalEvent(irp_is_back);
        return 'MoreProcessingRequired;
    }
    IoSetCompletionRoutine(irp, RegainIrp);
    IoCopyCurrentIrpStackLocationToNext(irp);
    DSTATUS<I2> st = IoCallDriver(IoGetLowerDevice(dev), irp);
    KeWaitForEvent(irp_is_back);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
"""

DROPPED = """
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    return IoMarkIrpPending(irp);
}
"""

DOUBLE_COMPLETE = """
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    DSTATUS<I> st = IoCompleteRequest(irp, 0);
    return IoCompleteRequest(irp, 0);
}
"""

FOOTNOTE10 = """
DSTATUS<I> Pnp(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    KEVENT<I> ev = KeInitializeEvent(irp);
    tracked COMPLETION_RESULT<I> Bad(DEVICE_OBJECT d,
                                     tracked(I) IRP i) [-I] {
        KeSignalEvent(ev);
        return 'Finished(0);
    }
    IoSetCompletionRoutine(irp, Bad);
    IoCopyCurrentIrpStackLocationToNext(irp);
    DSTATUS<I2> st = IoCallDriver(IoGetLowerDevice(dev), irp);
    KeWaitForEvent(ev);
    return IoCompleteRequest(irp, 0);
}
"""


def check_all():
    return [check_source(s) for s in
            (FIG7, DROPPED, DOUBLE_COMPLETE, FOOTNOTE10)]


def test_fig7_irp_protocols(benchmark):
    fig7, dropped, double, footnote = benchmark(check_all)

    assert fig7.ok
    assert dropped.has(Code.POSTCONDITION_MISMATCH)
    assert double.has(Code.KEY_CONSUMED_MISSING)
    assert footnote.has(Code.KEY_NOT_HELD)

    # And the idiom runs: the floppy driver's PnP path is Figure 7.
    harness = FloppyHarness()
    harness.boot()
    pnp = harness.pnp()
    assert pnp.status == STATUS_SUCCESS
    reclaimed = any("reclaimed" in line for line in harness.host.kernel.log)
    assert reclaimed

    banner("Figure 7 + §4.1/§4.3: IRP ownership", [
        "completion-routine + event idiom      -> accepted",
        "IRP pended without queueing           -> rejected "
        "(paper: 'code paths on which IRPs are neither completed, "
        "passed on, nor pended')",
        "IRP completed twice                   -> rejected",
        "footnote 10: consume + 'Finished       -> rejected "
        "(only 'MoreProcessingRequired typechecks)",
        "Figure 7 executed on the simulated kernel: IRP reclaimed by "
        "completion routine, then completed    OK",
        "all verdicts REPRODUCED",
    ])
