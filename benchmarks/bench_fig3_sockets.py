"""Figure 3 / §2.3 — the socket protocol.

Key states drive the setup FSM (raw -> named -> listening; accept
returns a fresh "ready" socket).  The bench asserts: the correct
server is accepted; skipping a step is rejected; ignoring the
failure-aware ``bind``'s status is rejected; checking it is accepted.
It also *runs* the accepted program against the loopback simulator.
"""

from repro import check_source, load_context
from repro.diagnostics import Code
from repro.stdlib.hostimpl import create_host, make_interpreter

from conftest import banner

GOOD = """
int main() {
    sockaddr addr = new sockaddr { host = "h"; port = 5; };
    tracked(S) sock srv = Socket.socket('INET, 'STREAM, 0);
    Socket.bind(srv, addr);
    Socket.listen(srv, 4);
    tracked(C) sock cli = Socket.socket('INET, 'STREAM, 0);
    Socket.connect(cli, addr);
    byte[] msg = [1, 2, 3];
    Socket.send(cli, msg);
    tracked(N) sock conn = Socket.accept(srv, addr);
    byte[] buf = [0, 0, 0, 0];
    int n = Socket.receive(conn, buf);
    Socket.close(conn);
    Socket.close(cli);
    Socket.close(srv);
    return n;
}
"""

SKIPPED_STEP = """
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.listen(s, 4);
    Socket.close(s);
}
"""

UNCHECKED_BIND = """
void f() {
    sockaddr addr = new sockaddr { host = "h"; port = 5; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind_checked(s, addr);
    Socket.listen(s, 4);
    Socket.close(s);
}
"""

CHECKED_BIND = """
void f() {
    sockaddr addr = new sockaddr { host = "h"; port = 5; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    switch (Socket.bind_checked(s, addr)) {
        case 'Ok:
            Socket.listen(s, 4);
            Socket.close(s);
        case 'Error(code):
            Socket.close(s);
    }
}
"""


def check_all():
    return [check_source(s) for s in
            (GOOD, SKIPPED_STEP, UNCHECKED_BIND, CHECKED_BIND)]


def test_fig3_protocol(benchmark):
    good, skipped, unchecked, checked = benchmark(check_all)

    assert good.ok
    assert skipped.has(Code.KEY_WRONG_STATE)
    assert not unchecked.ok
    assert checked.ok

    # The accepted server actually serves a message.
    ctx, _ = load_context(GOOD)
    host = create_host()
    interp = make_interpreter(ctx, host)
    received = interp.call("main")
    assert received == 3
    host.assert_no_leaks()

    banner("Figure 3: socket protocol", [
        "full setup (socket;bind;listen;accept;receive) -> accepted",
        f"listen on raw socket  -> {skipped.codes()[0].value} "
        "wrong key state (paper: precondition for listen violated)",
        "bind status ignored   -> rejected (paper: key removed, "
        "listen illegal)",
        "bind status switched  -> accepted ('Ok restores key@named)",
        f"accepted server ran: received {received} bytes, no leaks",
        "all verdicts REPRODUCED",
    ])
