"""§2.1's zero-cost claim — "keys are purely compile-time entities that
have no impact on run-time representations or execution time".

Two measurements make the claim concrete:

1. **Identical output**: compiling the annotated program and compiling
   its key-erased rendering produce byte-identical Python — the
   annotations leave no trace in generated code.
2. **Checked == unchecked speed**: the compiled annotated program runs
   exactly as fast as the compiled erased program (same code), and the
   static check is a one-off compile-time cost.
"""

import time

from repro import check_source, parse
from repro.lower import compile_to_python, erase_program, load_compiled
from repro.stdlib.hostimpl import create_host

from conftest import banner

WORKLOAD = """
struct acc { int total; int count; }

int churn(int rounds) {
    tracked(R) region rgn = Region.create();
    R:acc a = new(rgn) acc { total = 0; count = 0; };
    int i = 0;
    while (i < rounds) {
        a.total += i * 3 % 7;
        a.count++;
        i++;
    }
    int result = a.total + a.count;
    Region.delete(rgn);
    return result;
}
"""


def compile_both():
    annotated = compile_to_python(parse(WORKLOAD))
    erased_ast = erase_program(parse(WORKLOAD))
    erased = compile_to_python(erased_ast)
    return annotated, erased


def test_zero_cost_erasure(benchmark):
    report = check_source(WORKLOAD, units=["region"])
    assert report.ok

    annotated, erased = benchmark(compile_both)

    # 1. The generated code is byte-identical: keys left no trace.
    assert annotated == erased

    # 2. Both run, and produce the same result.
    mod_a = load_compiled(annotated, create_host())
    mod_e = load_compiled(erased, create_host())
    rounds = 5000
    start = time.perf_counter()
    result_a = mod_a["churn"](rounds)
    time_a = time.perf_counter() - start
    start = time.perf_counter()
    result_e = mod_e["churn"](rounds)
    time_e = time.perf_counter() - start
    assert result_a == result_e

    banner("Zero-cost checking (§2.1)", [
        "compile(annotated) == compile(erased): byte-identical Python "
        "output — keys/guards leave no run-time trace",
        f"compiled annotated: churn(5000) = {result_a} in "
        f"{time_a * 1000:.1f} ms",
        f"compiled erased:    churn(5000) = {result_e} in "
        f"{time_e * 1000:.1f} ms  (same code object)",
        "paper: 'no impact on run-time representations or execution "
        "time'   REPRODUCED",
    ])
