"""Figure 4 — anonymization through tracked collections (§2.4, §3.3).

Placing a region on a ``reglist`` loses its named key; matching gives
back *some* fresh key, so an object guarded by the original key is
inaccessible.  The paper's fix (keep the correlated data together) is
accepted.
"""

from repro import check_source
from repro.diagnostics import Code

from conftest import banner

POINT = "struct point { int x; int y; }\n"
REGLIST = ("variant reglist [ 'Nil | 'Cons(tracked region, "
           "tracked reglist) ];\n")

FIG4 = POINT + REGLIST + """
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    tracked reglist list = 'Cons(rgn, 'Nil);
    switch (list) {
        case 'Cons(rgn2, rest):
            pt.x++;
            Region.delete(rgn2);
            dispose(rest);
        case 'Nil:
            int y = 0;
    }
}
void dispose(tracked reglist l) {
    switch (l) {
        case 'Nil:
            int d = 0;
        case 'Cons(r, rest):
            Region.delete(r);
            dispose(rest);
    }
}
"""

FIXED = POINT + """
variant regcell [ 'None | 'Some(tracked region) ];
void main() {
    tracked(R) region rgn = Region.create();
    tracked regcell cell = 'Some(rgn);
    switch (cell) {
        case 'Some(rgn2):
            R2:point pt = new(rgn2) point {x=4; y=2;};
            pt.x++;
            Region.delete(rgn2);
        case 'None:
            int y = 0;
    }
}
"""


def check_both():
    return check_source(FIG4), check_source(FIXED)


def test_fig4_anonymization(benchmark):
    broken, fixed = benchmark(check_both)

    assert broken.has(Code.KEY_NOT_HELD)
    assert fixed.ok

    banner("Figure 4: anonymous tracked collections", [
        "region through reglist, then pt.x++ -> "
        f"{[c.value for c in broken.codes() if c is Code.KEY_NOT_HELD][0]} "
        "(paper: 'we need key R, held-key set contains some fresh key')",
        "correlated-data fix                  -> accepted",
        "verdicts REPRODUCED",
    ])
