"""Derived experiment T3 — the incremental/parallel checking pipeline.

Times :class:`repro.pipeline.CheckSession` on the same 160-function
synthetic workload as ``bench_checker_scaling.py``:

* **baseline** — plain ``check_source`` (cold, no session);
* **cold** — first ``CheckSession.check`` (fills every cache);
* **warm** — re-checking the byte-identical source (summary replay);
* **edit** — re-checking after a one-function edit (one summary
  invalidated, 159 replayed);
* **parallel** — a cold check fanned out to 4 fork workers.

All modes must produce byte-identical diagnostic output.  The timings
are written to ``BENCH_checker.json`` at the repository root so the
performance trajectory is tracked across PRs.
"""

import json
import multiprocessing
import os
import time

from repro import check_source
from repro.analysis import synthesize_program
from repro.pipeline import CheckSession

from conftest import banner

N_FUNCTIONS = 160
UNITS = ["region"]
JOBS = 4

_BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_checker.json")


def _cpu_count() -> int:
    return os.cpu_count() or 1


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _edit(source: str) -> str:
    """Change one constant inside one function body (no line shift)."""
    needle = "c.value += "
    at = source.index(needle, len(source) // 2)
    end = source.index(";", at)
    return source[:at] + "c.value += 4242" + source[end:]


def _measure():
    source = synthesize_program(N_FUNCTIONS, seed=42)

    start = time.perf_counter()
    baseline_report = check_source(source, units=UNITS)
    baseline = time.perf_counter() - start
    assert baseline_report.ok

    session = CheckSession(units=UNITS)
    start = time.perf_counter()
    cold_report = session.check(source)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_report = session.check(source)
    warm = time.perf_counter() - start

    start = time.perf_counter()
    session.check(_edit(source))
    edit = time.perf_counter() - start
    edited_functions = list(session.stats.last_checked)

    parallel_session = CheckSession(units=UNITS, jobs=JOBS)
    start = time.perf_counter()
    parallel_report = parallel_session.check(source)
    parallel = time.perf_counter() - start

    rendered = baseline_report.render()
    assert cold_report.render() == rendered, "session must match check_source"
    assert warm_report.render() == rendered, "warm replay must be identical"
    assert parallel_report.render() == rendered, \
        "parallel diagnostics must be byte-identical to serial"

    return {
        "workload": {"functions": N_FUNCTIONS, "units": UNITS, "seed": 42},
        "cpus": _cpu_count(),
        "jobs": JOBS,
        "fork_available": _fork_available(),
        "seconds": {
            "baseline_check_source": baseline,
            "cold": cold,
            "warm": warm,
            "edit_one_function": edit,
            "parallel": parallel,
        },
        "speedup": {
            "warm_vs_cold": cold / warm if warm else float("inf"),
            "edit_vs_cold": cold / edit if edit else float("inf"),
            "parallel_vs_cold": cold / parallel if parallel else float("inf"),
        },
        "edit_rechecked": edited_functions,
    }


def test_incremental_pipeline(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)

    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    sec = result["seconds"]
    speed = result["speedup"]
    rows = [
        f"baseline check_source      {sec['baseline_check_source'] * 1000:8.1f} ms",
        f"session cold               {sec['cold'] * 1000:8.1f} ms",
        f"session warm (replay)      {sec['warm'] * 1000:8.1f} ms"
        f"  ({speed['warm_vs_cold']:.1f}x)",
        f"one-function edit          {sec['edit_one_function'] * 1000:8.1f} ms"
        f"  ({speed['edit_vs_cold']:.1f}x, re-checked "
        f"{result['edit_rechecked']})",
        f"parallel cold ({result['jobs']} workers)   "
        f"{sec['parallel'] * 1000:8.1f} ms  "
        f"({speed['parallel_vs_cold']:.1f}x on {result['cpus']} CPU(s))",
    ]

    # Warm replay must beat a cold check by a wide margin everywhere.
    assert speed["warm_vs_cold"] >= 5.0, \
        "warm-cache re-check should be >=5x faster than cold"
    # An edit to one function must only re-check that function.
    assert len(result["edit_rechecked"]) == 1

    if result["cpus"] >= 4 and result["fork_available"]:
        assert speed["parallel_vs_cold"] >= 2.0, \
            "4 workers on >=4 CPUs should give >=2x"
        rows.append("parallel speedup >=2x with 4 workers   VERIFIED")
    else:
        rows.append(f"parallel >=2x assertion skipped "
                    f"({result['cpus']} CPU(s) available; "
                    f"byte-identity still verified)")
    rows.append("serial/warm/parallel outputs byte-identical   VERIFIED")
    banner("T3: incremental + parallel pipeline", rows)
