"""Derived experiment T3 — the incremental/parallel checking pipeline.

Times :class:`repro.pipeline.CheckSession` on the same 160-function
synthetic workload as ``bench_checker_scaling.py``:

* **baseline** — plain ``check_source`` (cold, no session), with a
  per-phase breakdown (lex/parse/elaborate/check) sourced from the
  observability tracer's spans, so the benchmark and ``--trace``
  report the same numbers;
* **cold** — first ``CheckSession.check`` (fills every cache);
* **warm** — re-checking the byte-identical source (summary replay);
* **edit** — re-checking after a one-function edit (one summary
  invalidated, 159 replayed);
* **parallel** — a cold check through the fork-server worker pool
  (measured on a 320-function workload so there is enough work to
  amortise the fan-out; **skipped and flagged** on single-CPU hosts,
  where a speedup is physically impossible and reporting one would be
  a lie);
* **parallel_small** — ``jobs > 1`` on a 20-function workload, where
  the scheduler's break-even check must keep the session serial:
  this measures the *overhead* of asking for parallelism when it
  cannot pay off;
* **large** — cold/warm/one-edit timings on a 640-function workload,
  the front-end ratchet corpus: the cold and single-edit budgets below
  are enforced here, and the token-cache/relex counters are recorded
  from the edit re-check.

All modes must produce byte-identical diagnostic output.  The timings
are written to ``BENCH_checker.json`` at the repository root so the
performance trajectory is tracked across PRs.

Absolute wall-clock budgets are only meaningful on hardware at least
as fast as the reference box the targets were set on, so they sit
behind a calibration probe (single-thread lex of the 160-function
corpus).  A slower host **skips and flags** the absolute ratchets —
the same policy the parallel measurement applies on single-CPU
hosts — while the machine-independent ratchets (speedup ratios,
cache hit rates, relex splice counts) are enforced everywhere.
"""

import gc
import json
import os
import time

from repro import check_source
from repro.analysis import synthesize_program
from repro.obs import Telemetry
from repro.pipeline import CheckSession, fork_available
from repro.syntax import tokenize

from conftest import banner

N_FUNCTIONS = 160
N_FUNCTIONS_PARALLEL = 320
N_FUNCTIONS_SMALL = 20
N_FUNCTIONS_LARGE = 640
UNITS = ["region"]
JOBS = 4

#: Calibration reference: seconds a single thread needs to lex the
#: 160-function corpus on the hardware the absolute budgets were set
#: on.  Hosts slower than this (within slack) skip the wall-clock
#: ratchets and record why.
CALIBRATION_REF_LEX = 0.012
CALIBRATION_SLACK = 1.25

#: Absolute budgets, enforced only on calibrated-fast hardware.
COLD_LARGE_BUDGET = 0.30    # cold 640-function session check
EDIT_LARGE_BUDGET = 0.010   # warm single-edit re-check, 640 functions

_BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_checker.json")


def _available_cpus() -> int:
    """CPUs this process may run on — the honest parallelism budget
    (affinity masks and cgroup limits make this < os.cpu_count() on
    CI runners and containers)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _edit(source: str) -> str:
    """Change one constant inside one function body (no line shift)."""
    needle = "c.value += "
    at = source.index(needle, len(source) // 2)
    end = source.index(";", at)
    return source[:at] + "c.value += 4242" + source[end:]


def _phase_timings(source: str) -> dict:
    """Per-phase breakdown of one cold check plus the edit-only
    front-end phases, read off the tracer.

    The span totals are the same data ``vaultc check --trace`` writes,
    so the benchmark's phase numbers and a trace viewer's agree by
    construction.  ``relex`` and ``token_cache`` only run on a warm
    re-check after an edit (a cold check has no prior token stream to
    splice), so those two entries are deltas measured across a
    one-function edit on the same session.
    """
    telemetry = Telemetry(trace=True)
    session = CheckSession(units=UNITS, telemetry=telemetry)
    session.check(source)
    cold = dict(telemetry.tracer.phase_totals())
    session.check(_edit(source))
    after = telemetry.tracer.phase_totals()
    return {"lex": cold.get("lex", 0.0),
            "parse": cold.get("parse", 0.0),
            "elaborate": cold.get("elaborate", 0.0),
            "check": cold.get("check_function", 0.0),
            "fingerprint": cold.get("fingerprint", 0.0),
            "relex": after.get("relex", 0.0) - cold.get("relex", 0.0),
            "token_cache": (after.get("token_cache", 0.0)
                            - cold.get("token_cache", 0.0))}


def _cache_hit_rates(metrics) -> dict:
    """Per-cache-layer hit rates from a session's metrics registry."""
    snapshot = metrics.snapshot()
    rates = {}
    for layer in ("chunk_ast", "context", "summary", "stdlib_base",
                  "unit_replay", "tokens", "ast_pool", "fingerprint_memo"):
        hits = snapshot.get(f"cache.{layer}.hits", {}).get("value", 0)
        misses = snapshot.get(f"cache.{layer}.misses", {}).get("value", 0)
        if hits + misses:
            rates[layer] = {"hits": hits, "misses": misses,
                            "rate": hits / (hits + misses)}
    return rates


def _calibrate() -> dict:
    """Single-thread lex speed vs. the reference box (best of three)."""
    probe_source = synthesize_program(N_FUNCTIONS, seed=42)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        tokenize(probe_source)
        best = min(best, time.perf_counter() - start)
    fast_enough = best <= CALIBRATION_REF_LEX * CALIBRATION_SLACK
    return {"lex_160fn_seconds": best,
            "reference_seconds": CALIBRATION_REF_LEX,
            "fast_enough": fast_enough}


_RESILIENCE_COUNTERS = ("respawns", "retries", "bisections", "timeouts",
                        "poisoned", "cache_quarantines", "serial_fallbacks")


def _measure():
    source = synthesize_program(N_FUNCTIONS, seed=42)
    cpus = _available_cpus()
    # Recovery activity summed over every session this run creates —
    # a no-fault benchmark must report all zeros, so regressions that
    # make the supervisor fire spuriously show up in BENCH_checker.json.
    resilience = {name: 0 for name in _RESILIENCE_COUNTERS}

    def _tally(sess):
        for name in _RESILIENCE_COUNTERS:
            resilience[name] += getattr(sess.stats, name, 0)

    start = time.perf_counter()
    baseline_report = check_source(source, units=UNITS)
    baseline = time.perf_counter() - start
    assert baseline_report.ok

    phases = _phase_timings(source)

    session = CheckSession(units=UNITS, telemetry=Telemetry(metrics=True))
    start = time.perf_counter()
    cold_report = session.check(source)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_report = session.check(source)
    warm = time.perf_counter() - start

    start = time.perf_counter()
    session.check(_edit(source))
    edit = time.perf_counter() - start
    edited_functions = list(session.stats.last_checked)
    cache_hit_rates = _cache_hit_rates(session.telemetry.metrics)

    rendered = baseline_report.render()
    assert cold_report.render() == rendered, "session must match check_source"
    assert warm_report.render() == rendered, "warm replay must be identical"

    # Large corpus: the front-end ratchet workload.  The token-cache
    # and relex counters are deltas across the edit re-check only —
    # session stats are cumulative, and a cold check is all misses by
    # definition.
    large_source = synthesize_program(N_FUNCTIONS_LARGE, seed=42)
    large_session = CheckSession(units=UNITS,
                                 telemetry=Telemetry(metrics=True))
    edited_large = _edit(large_source)
    # A gen-2 collection walking the session's caches (millions of
    # live tokens/AST nodes by this point in the run) costs ~100 ms if
    # it lands inside a timed window — collect *before* each timing so
    # the numbers measure the checker, not the garbage collector.
    gc.collect()
    start = time.perf_counter()
    large_report = large_session.check(large_source)
    cold_large = time.perf_counter() - start
    assert large_report.ok
    gc.collect()
    start = time.perf_counter()
    large_session.check(large_source)
    warm_large = time.perf_counter() - start
    lstats = large_session.stats
    tok_hits0, tok_misses0 = lstats.token_hits, lstats.token_misses
    gc.collect()
    start = time.perf_counter()
    large_session.check(edited_large)
    edit_large = time.perf_counter() - start
    _tally(large_session)
    edit_token_hits = lstats.token_hits - tok_hits0
    edit_token_misses = lstats.token_misses - tok_misses0
    edit_token_total = edit_token_hits + edit_token_misses
    frontend = {
        "edit_token_cache": {
            "hits": edit_token_hits,
            "misses": edit_token_misses,
            "rate": (edit_token_hits / edit_token_total
                     if edit_token_total else 0.0),
        },
        "relex": {"splices": lstats.relex_splices,
                  "fallbacks": lstats.relex_fallbacks},
        "fingerprints_memoized": lstats.fingerprints_memoized,
        "calibration": _calibrate(),
    }

    # Parallel: only measured where a speedup is possible.  On a
    # single-CPU host the workers just time-slice one core, so a
    # "speedup" number would be noise — record why it is missing
    # instead of a misleading value.
    parallel = None
    parallel_skipped = None
    parallel_vs_cold = None
    if not fork_available():
        parallel_skipped = "fork not available on this platform"
    elif cpus < 2:
        parallel_skipped = f"only {cpus} CPU available to this process"
    else:
        big_source = synthesize_program(N_FUNCTIONS_PARALLEL, seed=42)
        serial_big = CheckSession(units=UNITS)
        start = time.perf_counter()
        serial_big_report = serial_big.check(big_source)
        cold_big = time.perf_counter() - start
        with CheckSession(units=UNITS, jobs=min(JOBS, cpus)) as psession:
            start = time.perf_counter()
            parallel_report = psession.check(big_source)
            parallel = time.perf_counter() - start
        _tally(psession)
        assert parallel_report.render() == serial_big_report.render(), \
            "parallel diagnostics must be byte-identical to serial"
        parallel_vs_cold = cold_big / parallel if parallel else float("inf")

    # Small workload: the break-even check must keep jobs>1 from
    # costing anything (no forks below the threshold).
    small_source = synthesize_program(N_FUNCTIONS_SMALL, seed=7)
    start = time.perf_counter()
    small_serial_report = CheckSession(units=UNITS).check(small_source)
    small_serial = time.perf_counter() - start
    with CheckSession(units=UNITS, jobs=JOBS) as small_session:
        start = time.perf_counter()
        small_parallel_report = small_session.check(small_source)
        small_parallel = time.perf_counter() - start
        small_forked = small_session.stats.pool_spawns
    assert small_parallel_report.render() == small_serial_report.render()
    _tally(session)
    _tally(small_session)
    assert not any(resilience.values()), \
        f"recovery machinery fired during a no-fault run: {resilience}"

    return {
        "workload": {"functions": N_FUNCTIONS, "units": UNITS, "seed": 42,
                     "parallel_functions": N_FUNCTIONS_PARALLEL,
                     "small_functions": N_FUNCTIONS_SMALL,
                     "large_functions": N_FUNCTIONS_LARGE},
        "cpus": cpus,
        "jobs": JOBS,
        "fork_available": fork_available(),
        "seconds": {
            "baseline_check_source": baseline,
            "phases": phases,
            "cold": cold,
            "warm": warm,
            "edit_one_function": edit,
            "cold_large": cold_large,
            "warm_large": warm_large,
            "edit_large": edit_large,
            "parallel": parallel,
            "small_serial": small_serial,
            "small_parallel": small_parallel,
        },
        "speedup": {
            "warm_vs_cold": cold / warm if warm else float("inf"),
            "edit_vs_cold": cold / edit if edit else float("inf"),
            "edit_large_vs_cold_large":
                cold_large / edit_large if edit_large else float("inf"),
            "parallel_vs_cold": parallel_vs_cold,
            "small_parallel_vs_serial":
                small_serial / small_parallel if small_parallel
                else float("inf"),
        },
        "cache_hit_rates": cache_hit_rates,
        "frontend": frontend,
        "resilience": resilience,
        "parallel_skipped": parallel_skipped,
        "small_workload_forked_workers": small_forked,
        "edit_rechecked": edited_functions,
    }


def test_incremental_pipeline(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)

    # Preserve keys owned by other benchmarks (bench_server.py writes
    # "server", bench_cache.py writes "shared_cache", and future
    # gates get the same courtesy without a new special case here).
    try:
        with open(_BENCH_JSON, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        previous = {}
    for key, value in previous.items():
        result.setdefault(key, value)

    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    sec = result["seconds"]
    speed = result["speedup"]
    phases = sec["phases"]
    frontend = result["frontend"]
    calibration = frontend["calibration"]
    rows = [
        f"baseline check_source      {sec['baseline_check_source'] * 1000:8.1f} ms",
        f"  lex {phases['lex'] * 1000:.1f} / parse {phases['parse'] * 1000:.1f}"
        f" / elaborate {phases['elaborate'] * 1000:.1f}"
        f" / check {phases['check'] * 1000:.1f} ms",
        f"  edit-path relex {phases['relex'] * 1000:.2f}"
        f" / token_cache {phases['token_cache'] * 1000:.2f} ms",
        f"session cold               {sec['cold'] * 1000:8.1f} ms",
        f"session warm (replay)      {sec['warm'] * 1000:8.1f} ms"
        f"  ({speed['warm_vs_cold']:.1f}x)",
        f"one-function edit          {sec['edit_one_function'] * 1000:8.1f} ms"
        f"  ({speed['edit_vs_cold']:.1f}x, re-checked "
        f"{result['edit_rechecked']})",
        f"640-fn cold / warm / edit  {sec['cold_large'] * 1000:8.1f} /"
        f" {sec['warm_large'] * 1000:.1f} / {sec['edit_large'] * 1000:.1f} ms",
        "cache hit rates (cold+warm+edit): " + ", ".join(
            f"{layer} {data['rate']:.0%}"
            for layer, data in sorted(result["cache_hit_rates"].items())),
        f"640-fn edit token cache: "
        f"{frontend['edit_token_cache']['hits']} hits / "
        f"{frontend['edit_token_cache']['misses']} misses "
        f"({frontend['edit_token_cache']['rate']:.1%}), "
        f"{frontend['relex']['splices']} relex splice(s), "
        f"{frontend['relex']['fallbacks']} fallback(s)",
    ]

    # Warm replay must beat a cold check by a wide margin everywhere.
    assert speed["warm_vs_cold"] >= 5.0, \
        "warm-cache re-check should be >=5x faster than cold"
    # An edit to one function must only re-check that function.
    assert len(result["edit_rechecked"]) == 1

    # Machine-independent front-end ratchets — enforced everywhere.
    assert frontend["edit_token_cache"]["rate"] >= 0.9, \
        "a one-chunk edit must serve >=90% of chunks from the token cache"
    assert frontend["relex"]["splices"] >= 1, \
        "a same-position chunk edit must take the relex splice path"
    assert speed["edit_large_vs_cold_large"] >= 10.0, \
        "a one-function edit on the 640-fn corpus should be >=10x " \
        "faster than cold"

    # Absolute wall-clock budgets — only on calibrated-fast hardware
    # (same skip-and-flag policy as the parallel measurement below).
    if calibration["fast_enough"]:
        assert sec["cold_large"] <= COLD_LARGE_BUDGET, \
            f"cold 640-fn check {sec['cold_large']:.3f}s over " \
            f"{COLD_LARGE_BUDGET}s budget"
        assert sec["edit_large"] <= EDIT_LARGE_BUDGET, \
            f"640-fn single-edit re-check {sec['edit_large']:.4f}s over " \
            f"{EDIT_LARGE_BUDGET}s budget"
        rows.append(f"absolute budgets (cold<{COLD_LARGE_BUDGET}s, "
                    f"edit<{EDIT_LARGE_BUDGET * 1000:.0f}ms)   ENFORCED")
    else:
        rows.append(
            f"absolute budgets SKIPPED: host lexes 160-fn corpus in "
            f"{calibration['lex_160fn_seconds'] * 1000:.1f} ms "
            f"(reference {calibration['reference_seconds'] * 1000:.1f} ms)")

    if result["parallel_skipped"]:
        rows.append(f"parallel measurement SKIPPED: "
                    f"{result['parallel_skipped']}")
    else:
        rows.append(
            f"parallel cold ({result['jobs']} workers, "
            f"{result['workload']['parallel_functions']} fns) "
            f"{sec['parallel'] * 1000:8.1f} ms  "
            f"({speed['parallel_vs_cold']:.2f}x on {result['cpus']} CPU(s))")
        assert speed["parallel_vs_cold"] > 1.0, \
            "worker pool must beat serial on a multi-CPU host"
        if result["cpus"] >= 4:
            assert speed["parallel_vs_cold"] >= 2.0, \
                "4 workers on >=4 CPUs should give >=2x"
            rows.append("parallel speedup >=2x with 4 workers   VERIFIED")

    rows.append(
        f"20-fn workload, jobs={result['jobs']}: "
        f"{sec['small_parallel'] * 1000:.1f} ms vs "
        f"{sec['small_serial'] * 1000:.1f} ms serial "
        f"({result['small_workload_forked_workers']} pools forked)")
    # The break-even check must keep small workloads serial: no forks,
    # and within noise of the serial session (>5% would mean jobs>1
    # costs something even when it cannot help).
    assert result["small_workload_forked_workers"] == 0, \
        "break-even check must avoid forking for a 20-function unit"
    assert sec["small_parallel"] <= sec["small_serial"] * 1.05 + 0.005, \
        "jobs>1 must not be slower than serial on a small workload"

    rows.append("serial/warm/parallel outputs byte-identical   VERIFIED")
    banner("T3: incremental + parallel pipeline", rows)
