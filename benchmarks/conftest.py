"""Shared helpers for the reproduction benchmarks.

Each benchmark file regenerates one of the paper's figures/experiments
(see DESIGN.md's experiment index): it *asserts* the qualitative result
(which programs the checker accepts/rejects, with the paper's reason)
and *times* the checking or execution involved.  A summary block is
printed so ``pytest benchmarks/ --benchmark-only`` output doubles as
the EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import check_source
from repro.diagnostics import Code, Reporter


def check(source: str, units: Optional[Sequence[str]] = None) -> Reporter:
    return check_source(source, units=units)


def verdict(source: str, units: Optional[Sequence[str]] = None) -> str:
    report = check(source, units)
    if report.ok:
        return "accepted"
    return "rejected:" + ",".join(sorted({c.value for c in report.codes()}))


def banner(title: str, rows: List[str]) -> None:
    width = max([len(title) + 4] + [len(r) + 2 for r in rows])
    print()
    print("=" * width)
    print(f"| {title}")
    print("=" * width)
    for row in rows:
        print(f"  {row}")
    print("=" * width)
