"""Derived experiment T2 — checker scaling.

The paper reports no compile-time numbers; a practical reproduction
should still show the checker's cost grows roughly linearly in program
size (the per-function flow analysis is modular, §3).  We synthesise
region-protocol programs of increasing size and time full checks.
"""

import time

import pytest

from repro import check_source
from repro.analysis import count_lines, synthesize_program

from conftest import banner

SIZES = [10, 40, 160]

#: The old ``list.pop(0)`` worklist only degraded visibly past a few
#: hundred functions; the 640 point guards against regressing it.  It
#: is skipped in smoke runs (``--benchmark-disable``) to keep CI fast.
LARGE_SIZE = 640


@pytest.mark.parametrize("n_functions", SIZES)
def test_checker_scaling(benchmark, n_functions):
    source = synthesize_program(n_functions, seed=42)
    report = benchmark(check_source, source, units=["region"])
    assert report.ok


def test_checker_scaling_large(benchmark):
    if benchmark.disabled:
        pytest.skip("640-function point runs only in full benchmark mode")
    source = synthesize_program(LARGE_SIZE, seed=42)
    report = benchmark(check_source, source, units=["region"])
    assert report.ok


def test_scaling_is_roughly_linear(benchmark):
    sizes = SIZES if benchmark.disabled else SIZES + [LARGE_SIZE]

    def measure():
        points = []
        for n in sizes:
            source = synthesize_program(n, seed=42)
            start = time.perf_counter()
            report = check_source(source, units=["region"])
            elapsed = time.perf_counter() - start
            assert report.ok
            points.append((n, count_lines(source), elapsed))
        return points

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [f"{n:>5} functions  {lines:>6} lines  {sec * 1000:8.1f} ms  "
            f"({sec * 1e6 / lines:6.1f} us/line)"
            for n, lines, sec in timings]

    # Shape check: many-times more functions should cost far less than
    # the square (i.e. clearly sub-quadratic / near-linear per function).
    small = timings[0][2] / timings[0][0]
    large = timings[-1][2] / timings[-1][0]
    ratio = large / small
    factor = timings[-1][0] // timings[0][0]
    rows.append(f"per-function cost ratio ({timings[-1][0]} vs "
                f"{timings[0][0]} functions): "
                f"{ratio:.2f}x  (linear => ~1x, quadratic => ~{factor}x)")
    assert ratio < 6.0, "checking should scale near-linearly"
    rows.append("near-linear scaling — modular per-function analysis "
                "as in §3   REPRODUCED")
    banner("T2: checker scaling", rows)
