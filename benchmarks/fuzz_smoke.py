"""Differential-fuzzing smoke gate (the ``make fuzz-smoke`` target).

Generates a bounded batch of seeded adversarial protocol programs
(``repro.testing.generate``) and pushes every one through all four
checking paths — serial, forked worker pool, warm cached session, live
check daemon — asserting the canonical CLI bytes agree on each
program.  Any divergence fails the gate with a shrunk reproducer and a
replay command; a passing run proves the checker's diagnostics are a
pure function of the source, however they were computed.

Also asserts the batch was *adversarial enough*: both clean and
rejected programs occurred, and every protocol-error family the
generator aims at (wrong state, leak, double consume) showed up.

Merges a ``fuzz`` block into ``BENCH_checker.json``.  Usable both as a
script (``python benchmarks/fuzz_smoke.py``) and as a pytest module.
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.testing import run_fuzz                       # noqa: E402

COUNT = 200
SEED = 20260808
_REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_BENCH_JSON = os.path.join(_REPO, "BENCH_checker.json")

#: the generator's target diagnostics; all must occur in the batch.
EXPECTED_CODES = ("V0301", "V0302", "V0303")


def test_fuzz_smoke(benchmark=None):
    start = time.perf_counter()
    report = run_fuzz(COUNT, seed=SEED)
    elapsed = time.perf_counter() - start

    for record in report.divergences:
        print(f"DIVERGENCE program seed {record.program_seed} "
              f"(paths: {', '.join(record.paths)}):")
        print(record.shrunk)
        print(f"replay: vaultc fuzz --emit {record.program_seed}")
    assert not report.divergences, (
        f"{len(report.divergences)} divergence(s): the checking paths "
        f"are not byte-identical")

    assert report.programs_ok + report.programs_rejected == COUNT
    assert report.programs_ok > 0, "batch had no clean programs"
    assert report.programs_rejected > 0, "batch had no violations"
    for code in EXPECTED_CODES:
        assert report.diagnostics.get(code, 0) > 0, (
            f"batch never produced {code}; the generator lost an "
            f"intent family")

    result = {
        "seed": SEED,
        "programs": COUNT,
        "paths": report.paths,
        "skipped_paths": report.skipped_paths,
        "programs_ok": report.programs_ok,
        "programs_rejected": report.programs_rejected,
        "diagnostics": dict(sorted(report.diagnostics.items())),
        "divergences": 0,
        "seconds": round(elapsed, 3),
    }

    # Read-modify-write: bench_incremental.py owns the rest of the
    # file; this gate owns only the "fuzz" key.
    try:
        with open(_BENCH_JSON, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged["fuzz"] = result
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")

    tally = ", ".join(f"{code} x{n}" for code, n
                      in sorted(report.diagnostics.items()))
    print("=" * 64)
    print("| fuzz smoke: differential byte-identity across paths")
    print("=" * 64)
    print(f"  {COUNT} programs (seed {SEED}) in {elapsed:.1f} s via "
          f"{'/'.join(report.paths)}")
    if report.skipped_paths:
        print(f"  paths unavailable here: {'/'.join(report.skipped_paths)}")
    print(f"  {report.programs_ok} checked clean, "
          f"{report.programs_rejected} rejected ({tally})")
    print("  divergences: 0 — all paths byte-identical      VERIFIED")
    print("=" * 64)


if __name__ == "__main__":
    test_fuzz_smoke()
    print("fuzz smoke: OK")
