"""Figure 6 — the internal type language.

Elaborates a representative corpus of surface types into the core
language (singleton/tracked, guarded, packed/existential, function and
variant types with key sets) and checks the structural invariants the
paper's Figure 6 grammar implies.  Times a full stdlib elaboration —
the translation the paper's type checker performs up front.
"""

from repro import load_context
from repro.core import (CFun, CGuarded, CNamed, CPacked, CTracked,
                        KeyVarRef)

from conftest import banner

SURFACE = """
type FILE;
type guarded_int<key K> = K:int;

void f1(tracked(F) FILE g) [-F];
void f2(tracked FILE g);
tracked(@raw) sock f3();
void f4(tracked(F) FILE g, guarded_int<F> gi) [F];
void f5(paged<int> cfg);
void f6(COMPLETION_ROUTINE<K> cb, tracked(K) IRP irp) [K];
"""


def elaborate():
    ctx, reporter = load_context(SURFACE)
    assert reporter.ok, reporter.render()
    return ctx


def test_fig6_internal_types(benchmark):
    ctx = benchmark(elaborate)

    # tracked(F) FILE  ==>  singleton type s(ρF), ∀ρF (§3.2).
    f1 = ctx.functions["f1"].params[0].type
    assert isinstance(f1, CTracked) and f1.key == KeyVarRef("F")

    # tracked FILE  ==>  ∃[ρ | {ρ@T -> FILE}]. s(ρ)  (§3.3).
    f2 = ctx.functions["f2"].params[0].type
    assert isinstance(f2, CPacked)

    # tracked(@raw) sock result: existential packed at state "raw".
    f3 = ctx.functions["f3"].ret
    assert isinstance(f3, CPacked)

    # guarded_int<F>  ==>  {ρF@*} |> int  (guarded type C |> τ).
    f4 = ctx.functions["f4"].params[1].type
    assert isinstance(f4, CGuarded)
    assert f4.guards[0][0] == KeyVarRef("F")

    # paged<int>  ==>  {IRQL@(δ <= APC)} |> int, with the global key.
    f5 = ctx.functions["f5"].params[0].type
    assert isinstance(f5, CGuarded)
    assert f5.guards[0][0] is ctx.global_key("IRQL").key

    # COMPLETION_ROUTINE<K>  ==>  a function type (C, τ) -> (C', τ').
    f6 = ctx.functions["f6"].params[0].type
    assert isinstance(f6, CFun)
    assert f6.sig.effect.items[0].mode == "consume"

    banner("Figure 6: internal type language", [
        f"tracked(F) FILE      => {f1.show()}   (singleton s(ρ))",
        f"tracked FILE         => {f2.show()}   (existential pack)",
        f"guarded_int<F>       => {f4.show()}   (guarded C |> τ)",
        f"paged<int>           => {f5.show()}   (global-key guard)",
        "COMPLETION_ROUTINE<K> => polymorphic function type with "
        "effect [-K]",
        "core-language shapes REPRODUCED",
    ])
