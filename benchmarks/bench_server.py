"""Derived experiment T4 — the persistent check daemon.

Measures what ``vaultc serve`` buys over cold batch invocation on the
640-function synthetic corpus (the largest point of the scaling
study):

* **cold subprocess** — one full ``vaultc check`` process: interpreter
  start-up, stdlib elaboration, parse, check.  This is the edit loop
  the paper's tooling story competes against;
* **cold daemon** — the first request to a freshly started daemon
  (pays elaboration + check, but not interpreter start-up on the
  client side);
* **warm daemon** — re-checking the byte-identical source against the
  daemon's warm session (whole-unit replay served over the socket);
* **throughput** — warm requests/second, sequential clients.

Acceptance: the warm daemon re-check must be **>=5x** faster than the
cold subprocess check, with byte-identical diagnostics.  Results are
merged into ``BENCH_checker.json`` under the ``"server"`` key
(read-modify-write: the incremental benchmark owns the rest of the
file).
"""

import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import time

from repro import check_source
from repro.analysis import synthesize_program
from repro.server import DaemonClient, DaemonUnavailable

from conftest import banner

N_FUNCTIONS = 640
SEED = 42
WARM_ROUNDS = 10

_REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_BENCH_JSON = os.path.join(_REPO, "BENCH_checker.json")


def _vaultc_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def _spawn_daemon(sock: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock],
        cwd=_REPO, env=_vaultc_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with DaemonClient(sock) as client:
                client.ping()
            return proc
        except DaemonUnavailable:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited early (rc={proc.returncode})")
            time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon never became ready")


def _measure():
    source = synthesize_program(N_FUNCTIONS, seed=SEED)
    local_report = check_source(source, "corpus.vlt")
    assert local_report.ok
    rendered = local_report.render()

    with tempfile.TemporaryDirectory(prefix="vaultc-bench-") as tmp:
        corpus = os.path.join(tmp, "corpus.vlt")
        with open(corpus, "w", encoding="utf-8") as handle:
            handle.write(source)

        # Cold subprocess: the full `vaultc check` a cold edit loop pays.
        started = time.perf_counter()
        run = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", corpus],
            cwd=_REPO, env=_vaultc_env(), capture_output=True, text=True)
        cold_subprocess = time.perf_counter() - started
        assert run.returncode == 0, run.stderr

        sock = os.path.join(tmp, "daemon.sock")
        proc = _spawn_daemon(sock)
        try:
            with DaemonClient(sock) as client:
                started = time.perf_counter()
                first = client.check(source, "corpus.vlt")
                cold_daemon = time.perf_counter() - started
                assert first["ok"] and first["check_ok"]
                assert first["render"] == rendered, \
                    "daemon diagnostics must be byte-identical"

                warm_times = []
                for _ in range(WARM_ROUNDS):
                    started = time.perf_counter()
                    reply = client.check(source, "corpus.vlt")
                    warm_times.append(time.perf_counter() - started)
                    assert reply["render"] == rendered
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0, \
                "daemon must exit 0 on SIGTERM"
        assert not os.path.exists(sock), "daemon must unlink its socket"

    warm = statistics.median(warm_times)
    return {
        "workload": {"functions": N_FUNCTIONS, "seed": SEED,
                     "warm_rounds": WARM_ROUNDS},
        "seconds": {
            "cold_subprocess_check": cold_subprocess,
            "cold_daemon_first_request": cold_daemon,
            "warm_daemon_recheck_median": warm,
            "warm_daemon_recheck_min": min(warm_times),
        },
        "speedup": {
            "warm_daemon_vs_cold_subprocess":
                cold_subprocess / warm if warm else float("inf"),
            "warm_daemon_vs_cold_daemon":
                cold_daemon / warm if warm else float("inf"),
        },
        "warm_requests_per_second":
            len(warm_times) / sum(warm_times) if sum(warm_times)
            else float("inf"),
    }


def test_server_daemon(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)

    # Read-modify-write: bench_incremental.py owns the rest of the
    # file; this benchmark owns only the "server" key.
    try:
        with open(_BENCH_JSON, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged["server"] = result
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")

    sec = result["seconds"]
    speed = result["speedup"]
    rows = [
        f"cold `vaultc check` subprocess   {sec['cold_subprocess_check'] * 1000:8.1f} ms",
        f"cold daemon (first request)      {sec['cold_daemon_first_request'] * 1000:8.1f} ms",
        f"warm daemon re-check (median)    {sec['warm_daemon_recheck_median'] * 1000:8.1f} ms"
        f"  ({speed['warm_daemon_vs_cold_subprocess']:.1f}x vs cold subprocess)",
        f"warm throughput                  {result['warm_requests_per_second']:8.1f} requests/s",
        "daemon diagnostics byte-identical to in-process   VERIFIED",
        "SIGTERM -> exit 0, socket unlinked                VERIFIED",
    ]
    banner("T4: persistent check daemon", rows)

    assert speed["warm_daemon_vs_cold_subprocess"] >= 5.0, \
        "warm daemon re-check should be >=5x faster than a cold " \
        "`vaultc check` subprocess"
