"""Ablation — the design choices §3 calls out.

Two mechanisms make the checker practical on real programs:

1. **join abstraction** — α-renaming local keys at control-flow joins
   ("we abstract over the actual names of local keys in incoming key
   sets").  Without it, any program whose branches each create a
   resource bound to the same variable is rejected, even when both
   branches are balanced.
2. **loop-invariant inference** — iterating the body a bounded number
   of times instead of demanding declared invariants ("for all of the
   loops in our device driver case study, the type checker
   automatically infers the loop invariants").

The bench checks a small suite of idiomatic programs under each
configuration and reports the acceptance rate: full checker accepts
all; each ablated variant starts rejecting correct code.
"""

from repro.api import load_context
from repro.core import check_program
from repro.diagnostics import Reporter

from conftest import banner

#: Idiomatic, *correct* programs exercising the two mechanisms.
SUITE = {
    "branch-local-keys": """
void f(bool c) {
    tracked region rgn;
    if (c) {
        rgn = Region.create();
    } else {
        rgn = Region.create();
    }
    Region.delete(rgn);
}
""",
    "branch-local-files": """
void f(bool c) {
    tracked FILE log;
    if (c) {
        log = fopen("a.log");
    } else {
        log = fopen("b.log");
    }
    fputb(log, 1);
    fclose(log);
}
""",
    "loop-rebinding": """
void f(int n) {
    tracked region r = Region.create();
    int i = 0;
    while (i < n) {
        Region.delete(r);
        r = Region.create();
        i++;
    }
    Region.delete(r);
}
""",
    "plain-loop": """
int f(int n) {
    tracked(F) FILE log = fopen("x");
    int i = 0;
    while (i < n) {
        fputb(log, i);
        i++;
    }
    int len = flen(log);
    fclose(log);
    return len;
}
""",
}

CONFIGS = {
    "full checker": dict(join_abstraction=True, max_loop_iterations=4),
    "no join abstraction": dict(join_abstraction=False,
                                max_loop_iterations=4),
    "single loop iteration": dict(join_abstraction=True,
                                  max_loop_iterations=1),
}


def run_all():
    results = {}
    for config_name, options in CONFIGS.items():
        accepted = {}
        for prog_name, source in SUITE.items():
            ctx, reporter = load_context(source)
            assert reporter.ok
            check_program(ctx, reporter, **options)
            accepted[prog_name] = reporter.ok
        results[config_name] = accepted
    return results


def test_ablation(benchmark):
    results = benchmark(run_all)

    full = results["full checker"]
    no_join = results["no join abstraction"]
    one_iter = results["single loop iteration"]

    # The full checker accepts the whole suite.
    assert all(full.values()), full
    # Removing the join abstraction rejects the branch-local programs.
    assert not no_join["branch-local-keys"]
    assert not no_join["branch-local-files"]
    # A single loop iteration still handles trivial loops, but the
    # rebinding idiom needs the renamed-join fixpoint.
    assert one_iter["plain-loop"]

    rows = []
    for config_name, accepted in results.items():
        ok = sum(accepted.values())
        detail = ", ".join(f"{k}:{'Y' if v else 'N'}"
                           for k, v in accepted.items())
        rows.append(f"{config_name:<24} {ok}/{len(accepted)} accepted   "
                    f"({detail})")
    rows.append("join abstraction and inferred loop invariants are "
                "load-bearing, as §3 claims")
    banner("Ablation: §3's design choices", rows)
