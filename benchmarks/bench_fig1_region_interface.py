"""Figure 1 — the REGION interface.

The paper's Figure 1 declares the safe region abstraction: an abstract
``region`` type, ``create`` returning a fresh tracked region ([new R])
and ``delete`` consuming it ([-R]).  This bench verifies our stdlib
interface elaborates to exactly that shape and times the front-end
(parse + context build) for it.
"""

from repro import load_context
from repro.core import CPacked, CTracked, KeyVarRef
from repro.stdlib import stdlib_source

from conftest import banner


def build_region_context():
    ctx, reporter = load_context("void nothing() { }", units=["region"])
    assert reporter.ok, reporter.render()
    return ctx


def test_fig1_interface_shape(benchmark):
    ctx = benchmark(build_region_context)

    create = ctx.function("create", module="Region")
    delete = ctx.function("delete", module="Region")

    assert create is not None and delete is not None
    assert isinstance(create.ret, CTracked)
    assert create.effect.items[0].mode == "fresh"

    assert isinstance(delete.params[0].type, CTracked)
    assert delete.effect.items[0].mode == "consume"

    region = ctx.type_decl("region")
    assert region is not None and region.is_abstract
    assert region.owner == "Region"

    banner("Figure 1: REGION interface", [
        f"type region                 -> abstract, owned by module Region",
        f"create: {create.show()}",
        f"delete: {delete.show()}",
        "paper: same shape (create [new R], delete [-R])   REPRODUCED",
    ])
