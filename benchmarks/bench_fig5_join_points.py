"""Figure 5 — type agreement at join points (§2.4).

The data-correlated deletion program is memory-safe in fact but the
held-key sets disagree at the join, so the checker rejects it; making
the correlation explicit with a keyed variant is accepted — both
exactly as the paper prescribes.
"""

from repro import check_source
from repro.diagnostics import Code

from conftest import banner

POINT = "struct point { int x; int y; }\n"

FIG5 = POINT + """
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    if (pt.x > 0) {
        pt.y = 0;
        Region.delete(rgn);
    } else {
        pt.y = pt.x;
    }
    if (pt.x <= 0) {
        Region.delete(rgn);
    }
}
"""

FIXED = POINT + """
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    tracked opt_key<R> status;
    if (pt.x > 0) {
        pt.y = 0;
        Region.delete(rgn);
        status = 'NoKey;
    } else {
        pt.y = pt.x;
        status = 'SomeKey{R};
    }
    switch (status) {
        case 'NoKey:
            int done = 0;
        case 'SomeKey:
            Region.delete(rgn);
    }
}
"""


def check_both():
    return check_source(FIG5), check_source(FIXED)


def test_fig5_join_points(benchmark):
    broken, fixed = benchmark(check_both)

    assert broken.has(Code.JOIN_MISMATCH)
    assert fixed.ok

    banner("Figure 5: join-point agreement", [
        "data-correlated deletes -> V0305 join mismatch "
        "(paper: 'join point inconsistent')",
        "keyed-variant rewrite   -> accepted "
        "(paper: correlation made explicit via variant)",
        "verdicts REPRODUCED",
    ])
