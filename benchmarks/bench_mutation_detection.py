"""Derived experiment T1 — seeded-fault detection.

The paper's core claim is that Vault catches protocol errors at compile
time that testing struggles to reproduce.  We quantify it: seed
drop/dup/swap faults into the corpus programs and the floppy driver,
and measure detection by (a) the Vault checker, (b) a plain checker
with guards erased, (c) a dynamic test workload on the simulators.

Expected shape: Vault detects the overwhelming majority statically;
the plain checker sees almost none (protocols are inexpressible);
dynamic detection tracks *coverage* — driver mutants on paths the
workload never exercises go unnoticed.
"""

from typing import Optional

from repro.analysis import CORPUS, format_table, run_study
from repro.diagnostics import RuntimeProtocolError, VaultError
from repro.drivers import FloppyHarness, driver_source

from conftest import banner


def driver_runner(source: str) -> Optional[str]:
    """A *partial* workload: exercises read/write/create but never the
    PnP or ioctl paths — realistic test coverage.  A request left
    pending forever counts as a hang (the timeout a test harness would
    eventually hit)."""
    try:
        harness = FloppyHarness(check=False, source=source)
        harness.boot()
        harness.open()
        harness.write(0, b"abc")
        irp, _ = harness.read(0, 3)
        harness.close()
    except RuntimeProtocolError as err:
        return err.code.value
    except VaultError:
        return "crash"
    if harness.host.kernel.live_irps:
        return "hang"
    leaks = harness.audit()
    if leaks:
        return "leak"
    return None


def run_corpus_studies():
    results = {}
    for name, program in sorted(CORPUS.items()):
        results[name] = run_study(program.source, runner=program.runner,
                                  monitor_runner=program.monitor_runner)
    return results


def test_mutation_detection_corpus(benchmark):
    results = benchmark.pedantic(run_corpus_studies, rounds=1,
                                 iterations=1)

    rows = []
    tot = {"n": 0, "v": 0, "p": 0, "d": 0, "m": 0}
    for name, summary in results.items():
        rows.append([name, str(summary.total),
                     f"{summary.rate('vault'):.0%}",
                     f"{summary.rate('plain'):.0%}",
                     f"{summary.rate('dynamic'):.0%}",
                     f"{summary.rate('monitor'):.0%}",
                     str(summary.benign)])
        tot["n"] += summary.total
        tot["v"] += summary.vault_detected
        tot["p"] += summary.plain_detected
        tot["d"] += summary.dynamic_detected
        tot["m"] += summary.monitor_detected
        # The paper's shape: Vault dominates the plain checker ...
        assert summary.vault_detected > summary.plain_detected
    rows.append(["TOTAL", str(tot["n"]),
                 f"{tot['v'] / tot['n']:.0%}",
                 f"{tot['p'] / tot['n']:.0%}",
                 f"{tot['d'] / tot['n']:.0%}",
                 f"{tot['m'] / tot['n']:.0%}", ""])

    table = format_table(
        ["program", "mutants", "vault", "plain", "dynamic", "monitor",
         "benign"],
        rows)
    banner("T1a: seeded faults, corpus programs", table.splitlines())

    assert tot["v"] / tot["n"] > 0.5
    assert tot["p"] / tot["n"] < 0.2


def test_mutation_detection_driver(benchmark):
    # Mutate only the dispatch routines; evaluate with a partial
    # workload so coverage effects show.
    from repro.analysis.mutation import DRIVER_OPERATORS
    summary = benchmark.pedantic(
        lambda: run_study(
            driver_source(), runner=driver_runner,
            functions=["FloppyCreate", "FloppyRead", "FloppyPnp"],
            operators=DRIVER_OPERATORS),
        rounds=1, iterations=1)

    rows = summary.rows()
    lines = [f"{name}: {n}/{summary.total} ({rate:.0%})"
             for name, n, rate in rows]

    # Static beats dynamic here because the workload never drives the
    # PnP path: its mutants are invisible to testing.
    pnp_results = [r for r in summary.results
                   if r.mutant.function == "FloppyPnp"]
    pnp_static = sum(r.vault_detected for r in pnp_results)
    pnp_dynamic = sum(r.dynamic_detected for r in pnp_results)
    assert summary.vault_detected >= summary.dynamic_detected
    assert pnp_static > pnp_dynamic

    lines.append(f"FloppyPnp mutants (path never tested): "
                 f"static {pnp_static}/{len(pnp_results)}, "
                 f"dynamic {pnp_dynamic}/{len(pnp_results)}")
    lines.append("paper: 'testing has not proven to be a good way to "
                 "achieve high reliability in drivers' — "
                 "coverage-blindness REPRODUCED")
    banner("T1b: seeded faults, floppy driver (partial workload)", lines)
