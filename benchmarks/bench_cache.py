"""Shared-store smoke benchmark (the ``make cache-smoke`` gate).

The scenario the tiered store exists for: developer A checks a 640
function corpus cold; developer B (a different process, an empty L1,
a brand-new store handle) checks the identical corpus against the same
content-addressed store directory and must run at warm speed.  A third
session edits one function and must rebuild *only* that function from
the shared summaries.  A final round drives the same replay through a
live daemon's ``cache_get``/``cache_put`` wire ops (the remote tier).

Ratchets (enforced, then recorded under the ``"shared_cache"`` key of
``BENCH_checker.json``):

* second cold check >= **3x** faster than the first (unit replay);
* post-edit summary hit rate >= **0.9** (one function of 640 edited);
* diagnostics byte-identical across every path, including the remote
  tier.

Usable both as a script (``python benchmarks/bench_cache.py``) and as
a pytest module.
"""

import json
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis import synthesize_program          # noqa: E402
from repro.cache import open_store                     # noqa: E402
from repro.pipeline import CheckSession                # noqa: E402

N_FUNCTIONS = 640
SEED = 42
ERROR_RATE = 0.1
UNITS = ["region"]

MIN_REPLAY_SPEEDUP = 3.0
MIN_SUMMARY_HIT_RATE = 0.9

_REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_BENCH_JSON = os.path.join(_REPO, "BENCH_checker.json")


def _timed_check(source, store, **session_kw):
    """One fresh session + one check against ``store``; returns
    ``(seconds, rendered, stats)``."""
    with CheckSession(units=UNITS, shared_store=store,
                      **session_kw) as session:
        started = time.perf_counter()
        report = session.check(source, "corpus.vlt")
        elapsed = time.perf_counter() - started
    return elapsed, report.render(), session.stats


def _measure():
    source = synthesize_program(N_FUNCTIONS, seed=SEED,
                                error_rate=ERROR_RATE)
    edited = source.replace(
        "int worker_3(int input) {\n    tracked",
        "int worker_3(int input) {\n    // edited\n    tracked", 1)
    assert edited != source

    result = {"workload": {"functions": N_FUNCTIONS, "seed": SEED,
                           "error_rate": ERROR_RATE, "units": UNITS}}
    tmp = tempfile.mkdtemp(prefix="vaultc-cache-bench-")
    try:
        cas_dir = os.path.join(tmp, "cas")

        # -- session A: cold, populating the store --------------------
        store_a = open_store(cas_dir)
        cold, expected, stats_a = _timed_check(source, store_a)
        store_a.close()
        assert stats_a.shared_puts > 0, "the cold session must publish"

        # -- session B: cold process, warm store ----------------------
        store_b = open_store(cas_dir)
        replay, rendered, stats_b = _timed_check(source, store_b)
        store_b.close()
        assert rendered == expected, \
            "shared-store replay must be byte-identical"
        assert stats_b.shared_unit_hits == 1
        assert stats_b.functions_checked == 0, \
            "a whole-unit replay re-checks nothing"

        # -- session C: one function edited ---------------------------
        store_c = open_store(cas_dir)
        edit_s, _rendered_c, stats_c = _timed_check(edited, store_c)
        store_c.close()
        lookups = stats_c.shared_summary_hits + stats_c.shared_summary_misses
        hit_rate = stats_c.shared_summary_hits / lookups if lookups else 0.0
        assert stats_c.shared_unit_hits == 0
        assert stats_c.functions_checked <= max(
            1, int(N_FUNCTIONS * (1 - MIN_SUMMARY_HIT_RATE)))

        # -- remote tier: replay through a live daemon ----------------
        from repro.server import CheckServer
        sock = os.path.join(tmp, "d.sock")
        server = CheckServer(socket_path=sock,
                             shared_cache_dir=os.path.join(tmp, "dcas"))
        server.bind()
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            writer = open_store("daemon:" + sock)
            _elapsed, rendered_w, _stats = _timed_check(source, writer)
            writer.close()
            assert rendered_w == expected

            reader = open_store("daemon:" + sock)
            remote_s, rendered_r, stats_r = _timed_check(source, reader)
            reader.close()
            assert rendered_r == expected, \
                "remote-tier replay must be byte-identical"
            assert stats_r.shared_unit_hits == 1
            assert stats_r.functions_checked == 0
        finally:
            server.request_stop()
            thread.join(10)
            server.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    result["seconds"] = {
        "cold_populate": cold,
        "cold_replay": replay,
        "edit_one_function": edit_s,
        "remote_replay": remote_s,
    }
    result["speedup"] = {
        "replay_vs_cold": cold / replay if replay else float("inf"),
        "remote_replay_vs_cold":
            cold / remote_s if remote_s else float("inf"),
    }
    result["summary_hit_rate_after_edit"] = hit_rate
    result["byte_identical"] = True
    return result


def test_shared_cache_smoke(benchmark=None):
    if benchmark is not None:
        result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    else:
        result = _measure()

    # Read-modify-write: bench_incremental.py owns the rest of the
    # file; this gate owns only the "shared_cache" key.
    try:
        with open(_BENCH_JSON, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged["shared_cache"] = result
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")

    sec = result["seconds"]
    speed = result["speedup"]
    print(f"cache-smoke: cold populate          "
          f"{sec['cold_populate'] * 1000:8.1f} ms")
    print(f"cache-smoke: cold replay (CAS)      "
          f"{sec['cold_replay'] * 1000:8.1f} ms  "
          f"({speed['replay_vs_cold']:.1f}x)")
    print(f"cache-smoke: edit one of {N_FUNCTIONS}      "
          f"{sec['edit_one_function'] * 1000:8.1f} ms  "
          f"(summary hit rate "
          f"{result['summary_hit_rate_after_edit']:.3f})")
    print(f"cache-smoke: cold replay (remote)   "
          f"{sec['remote_replay'] * 1000:8.1f} ms  "
          f"({speed['remote_replay_vs_cold']:.1f}x)")
    print("cache-smoke: byte-identity across all tiers   OK")

    assert speed["replay_vs_cold"] >= MIN_REPLAY_SPEEDUP, \
        f"a second cold check over a warm store must be >= " \
        f"{MIN_REPLAY_SPEEDUP}x faster (got " \
        f"{speed['replay_vs_cold']:.2f}x)"
    assert result["summary_hit_rate_after_edit"] >= \
        MIN_SUMMARY_HIT_RATE, \
        f"after one edit the summary hit rate must stay >= " \
        f"{MIN_SUMMARY_HIT_RATE} (got " \
        f"{result['summary_hit_rate_after_edit']:.3f})"


if __name__ == "__main__":
    test_shared_cache_smoke()
    print("cache-smoke: PASS")
