"""Observability smoke check (the ``make obs-smoke`` gate).

Boots a real ``vaultc serve`` subprocess with the whole telemetry
surface turned on — time-series sampling, a Prometheus textfile,
slow-request capture, a JSONL event log — drives a burst of checks
through it, and asserts the service-grade promises of the obs layer:

* the ``telemetry`` wire op round-trips live counters, monotone
  latency quantiles (p50 <= p95 <= p99 for ``server.check_seconds``),
  at least one time-series sample, and the session registry;
* the Prometheus textfile parses line-by-line
  (:func:`validate_exposition` returns zero problems);
* one forced-slow request (the ``test_sleep`` chaos hook) lands
  **exactly one** trace file in the ring, and that file passes
  :func:`validate_chrome_trace`;
* the JSONL audit log carries ``server_start`` (and, after SIGTERM,
  ``server_stop``) as parseable JSON lines;
* ``vaultc top --once --json`` exits 0 with the same telemetry body.

Where AF_UNIX sockets are unavailable the gate reports itself skipped
rather than passing vacuously.  Merges an ``observability`` block into
``BENCH_checker.json``.

Usable both as a script (``python benchmarks/obs_smoke.py``) and as a
pytest module.
"""

import json
import os
import signal
import socket as socket_mod
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis import synthesize_program            # noqa: E402
from repro.obs import (validate_chrome_trace,            # noqa: E402
                       validate_exposition)
from repro.server import DaemonClient, DaemonUnavailable  # noqa: E402

N_FUNCTIONS = 40
N_CHECKS = 5
SLOW_MS = 1500.0
SLEEP_SECONDS = 2.0
_REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_BENCH_JSON = os.path.join(_REPO, "BENCH_checker.json")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env["VAULTC_SERVER_TEST_OPS"] = "1"    # enables the test_sleep hook
    return env


def _spawn_daemon(sock: str, *extra: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
         *extra],
        cwd=_REPO, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with DaemonClient(sock) as client:
                client.ping()
            return proc
        except DaemonUnavailable:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited early (rc={proc.returncode})")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became ready")


def _measure() -> dict:
    source = synthesize_program(N_FUNCTIONS, seed=11)
    with tempfile.TemporaryDirectory(prefix="vaultc-obs-") as tmp:
        sock = os.path.join(tmp, "daemon.sock")
        prom = os.path.join(tmp, "metrics.prom")
        traces = os.path.join(tmp, "traces")
        event_log = os.path.join(tmp, "events.jsonl")
        proc = _spawn_daemon(
            sock, "--sample-interval", "0.2",
            "--prom-file", prom,
            "--slow-ms", str(SLOW_MS), "--trace-dir", traces,
            "--event-log", event_log)
        try:
            with DaemonClient(sock) as client:
                started = time.perf_counter()
                for _ in range(N_CHECKS):
                    reply = client.check(source, "obs.vlt")
                    assert reply["ok"] and reply["check_ok"], reply
                check_seconds = time.perf_counter() - started
                # One forced-slow request, well past the threshold.
                reply = client.request(
                    {"op": "check", "source": source,
                     "filename": "obs-slow.vlt",
                     "test_sleep": SLEEP_SECONDS})
                assert reply["ok"], reply
                # Let at least one sample tick land post-traffic.
                deadline = time.monotonic() + 10
                tel = client.telemetry()
                while time.monotonic() < deadline:
                    tel = client.telemetry()
                    if tel.get("timeseries", {}).get("samples") \
                            and os.path.exists(prom):
                        break
                    time.sleep(0.1)

            # -- telemetry op round-trip --------------------------------
            assert tel["ok"] is True, tel
            counters = tel["counters"]
            assert counters["server.checks"] == N_CHECKS + 1, counters
            q = tel["quantiles"]["server.check_seconds"]
            assert 0 <= q["p50"] <= q["p95"] <= q["p99"], q
            samples = tel["timeseries"]["samples"]
            assert samples, "no time-series samples after traffic"
            assert len(tel["sessions"]) == 1

            # -- Prometheus textfile ------------------------------------
            with open(prom, "r", encoding="utf-8") as handle:
                expo = handle.read()
            problems = validate_exposition(expo)
            assert problems == [], problems
            assert "vaultc_server_checks_total" in expo

            # -- slow-request capture -----------------------------------
            trace_files = sorted(
                name for name in os.listdir(traces)
                if name.startswith("slow-") and name.endswith(".json"))
            assert len(trace_files) == 1, \
                f"expected exactly one slow trace, got {trace_files}"
            with open(os.path.join(traces, trace_files[0]),
                      encoding="utf-8") as handle:
                payload = json.load(handle)
            assert validate_chrome_trace(payload) == []
            names = [e.get("name") for e in payload["traceEvents"]]
            assert "server.request" in names, names
            assert counters["server.slow_requests"] == 1, counters

            # -- vaultc top ---------------------------------------------
            top = subprocess.run(
                [sys.executable, "-m", "repro.cli", "top", sock,
                 "--once", "--json"],
                cwd=_REPO, env=_env(), capture_output=True, text=True)
            assert top.returncode == 0, top.stderr
            top_reply = json.loads(top.stdout)
            assert top_reply["counters"]["server.checks"] == N_CHECKS + 1
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        assert rc == 0, f"daemon exited {rc} on SIGTERM"

        # -- JSONL audit log (after shutdown, so server_stop landed) ----
        with open(event_log, "r", encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        kinds = [event["kind"] for event in events]
        assert "server_start" in kinds, kinds
        assert "server_stop" in kinds, kinds
        assert "slow_request" in kinds, kinds

    return {
        "functions": N_FUNCTIONS,
        "checks": N_CHECKS,
        "seconds": {"drive_checks": check_seconds},
        "quantiles_ms": {"p50": q["p50"] * 1000.0,
                         "p95": q["p95"] * 1000.0,
                         "p99": q["p99"] * 1000.0},
        "timeseries_samples": len(samples),
        "slow_traces": len(trace_files),
        "exposition_problems": len(problems),
        "event_kinds": sorted(set(kinds)),
    }


def test_obs_smoke(benchmark=None):
    if not hasattr(socket_mod, "AF_UNIX"):
        print("obs smoke SKIPPED: no AF_UNIX sockets on this platform")
        return

    if benchmark is not None:
        result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    else:
        result = _measure()

    # Read-modify-write: bench_incremental.py owns the rest of the
    # file; this gate owns only the "observability" key.
    try:
        with open(_BENCH_JSON, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged["observability"] = result
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")

    qms = result["quantiles_ms"]
    print("=" * 64)
    print("| obs smoke: live telemetry surface of the daemon")
    print("=" * 64)
    print(f"  {result['checks']} checks of {result['functions']} functions "
          f"in {result['seconds']['drive_checks'] * 1000:.0f} ms")
    print(f"  check latency  p50 {qms['p50']:.1f} / p95 {qms['p95']:.1f} "
          f"/ p99 {qms['p99']:.1f} ms (monotone)      VERIFIED")
    print(f"  telemetry op round-trip, "
          f"{result['timeseries_samples']} sample(s)        VERIFIED")
    print("  Prometheus exposition parses (0 problems)        VERIFIED")
    print(f"  forced slow request -> exactly "
          f"{result['slow_traces']} valid trace         VERIFIED")
    print("  JSONL audit log: start/slow_request/stop         VERIFIED")
    print("  vaultc top --once --json exits 0                 VERIFIED")
    print("=" * 64)


if __name__ == "__main__":
    test_obs_smoke()
    print("obs smoke: OK")
