"""§4.4 — interrupt levels and paged memory.

The global IRQL key over the partially-ordered IRQ_LEVEL stateset:
exact requirements (KeSetPriorityThread @ PASSIVE_LEVEL), bounded state
polymorphism (KeReleaseSemaphore at (level <= DISPATCH_LEVEL)), level
transitions captured in KIRQL<level> result types, and the paged<T>
guard that prevents the deadlock of touching pageable data at high
IRQL.  Also demonstrates the corresponding *run-time* deadlock on the
simulator — the error the checker prevents.
"""

import pytest

from repro import check_source
from repro.diagnostics import Code, RuntimeProtocolError
from repro.kernel import DISPATCH_LEVEL, IrqlState, PageManager

from conftest import banner

CASES = {
    "exact-ok": ("""
void f(KTHREAD t) [IRQL @ PASSIVE_LEVEL] {
    KPRIORITY p = KeSetPriorityThread(t, 3);
}
""", True),
    "exact-bad": ("""
void f(KTHREAD t) [IRQL @ DISPATCH_LEVEL] {
    KPRIORITY p = KeSetPriorityThread(t, 3);
}
""", False),
    "bounded-ok": ("""
void f(KSEMAPHORE s) [IRQL @ (lvl <= APC_LEVEL)] {
    int r = KeReleaseSemaphore(s, 1, 0);
}
""", True),
    "bounded-bad": ("""
void f(KSEMAPHORE s) [IRQL @ DIRQL] {
    int r = KeReleaseSemaphore(s, 1, 0);
}
""", False),
    "raise-restore": ("""
void f() [IRQL @ PASSIVE_LEVEL] {
    KIRQL<old> saved = KeRaiseIrqlToDpcLevel();
    KeLowerIrql(saved);
}
""", True),
    "undeclared-raise": ("""
void f() [IRQL @ PASSIVE_LEVEL] {
    KIRQL<old> saved = KeRaiseIrqlToDpcLevel();
}
""", False),
    "paged-low": ("""
struct config { int a; }
int f(paged<config> cfg) [IRQL @ APC_LEVEL] {
    return cfg.a;
}
""", True),
    "paged-high": ("""
struct config { int a; }
int f(paged<config> cfg) [IRQL @ DISPATCH_LEVEL] {
    return cfg.a;
}
""", False),
}


def check_all():
    return {name: check_source(src) for name, (src, _) in CASES.items()}


def test_sec44_irql(benchmark):
    reports = benchmark(check_all)

    rows = []
    for name, (src, expect_ok) in CASES.items():
        report = reports[name]
        assert report.ok == expect_ok, f"{name}: {report.render()}"
        verdict = "accepted" if report.ok else \
            "rejected " + ",".join(sorted({c.value for c in report.codes()}))
        rows.append(f"{name:<18} -> {verdict}")

    # The run-time consequence the checker prevents: touching a
    # non-resident paged object at DISPATCH deadlocks the machine.
    irql = IrqlState(DISPATCH_LEVEL)
    pages = PageManager(irql)
    obj = pages.allocate("cfg", resident=False)
    with pytest.raises(RuntimeProtocolError) as exc:
        pages.access(obj)
    assert exc.value.code is Code.RT_DEADLOCK
    rows.append("simulator: page fault at DISPATCH_LEVEL -> OS deadlock "
                "(the bug the guard prevents)")
    rows.append("all verdicts REPRODUCED")

    banner("Section 4.4: IRQLs and paged memory", rows)
