"""§4.2 — thread coordination: events and spin locks.

Asserts the paper's claims: events transfer keys between held-key
sets; spin locks protect tracked data (access requires acquire),
missing release is detected like a leak, and double acquire is
detected because a key cannot enter the held-key set twice.
"""

from repro import check_source
from repro.diagnostics import Code

from conftest import banner

COUNTER = "struct counter { int n; }\n"

EVENT_TRANSFER = """
void f() {
    tracked(F) FILE file = fopen("x");
    KEVENT<F> ev = KeInitializeEvent(file);
    KeSignalEvent(ev);
    KeWaitForEvent(ev);
    fclose(file);
}
"""

LOCK_OK = COUNTER + """
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    c.n++;
    KeReleaseSpinLock(lock, saved);
}
"""

UNLOCKED_ACCESS = COUNTER + """
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    c.n++;
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    KeReleaseSpinLock(lock, saved);
}
"""

MISSING_RELEASE = COUNTER + """
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    c.n++;
}
"""

DOUBLE_ACQUIRE = COUNTER + """
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<a> s1 = KeAcquireSpinLock(lock);
    KIRQL<b> s2 = KeAcquireSpinLock(lock);
    KeReleaseSpinLock(lock, s2);
    KeReleaseSpinLock(lock, s1);
}
"""


def check_all():
    return [check_source(s) for s in
            (EVENT_TRANSFER, LOCK_OK, UNLOCKED_ACCESS, MISSING_RELEASE,
             DOUBLE_ACQUIRE)]


def test_sec42_locks_events(benchmark):
    event, lock_ok, unlocked, missing, double = benchmark(check_all)

    assert event.ok
    assert lock_ok.ok
    assert unlocked.has(Code.KEY_NOT_HELD)
    assert missing.has(Code.KEY_LEAKED)
    assert double.has(Code.KEY_DUPLICATED)

    banner("Section 4.2: events and spin locks", [
        "event passes key signal->wait          -> accepted",
        "acquire / touch / release              -> accepted",
        "touch before acquire                   -> V0300 "
        "(paper: 'only way to access the object is to acquire the lock')",
        "missing release                        -> V0302 "
        "(paper: detected like a memory leak)",
        "double acquire                         -> V0304 "
        "(paper: 'second acquire introduces a key already present')",
        "all verdicts REPRODUCED",
    ])
