PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke trace-smoke chaos-smoke

test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: `vaultc check --trace` over the examples corpus
# (plus a forced worker pool) must emit schema-valid Chrome trace JSON
# with one track per process.
trace-smoke:
	$(PYTHON) benchmarks/trace_smoke.py

# Fast CI smoke: asserts jobs>1 is never a pessimisation (tiny
# workload; the timing gate applies on multi-CPU runners, byte-identity
# everywhere), then runs the benchmark bodies once (no timing rounds),
# refreshing BENCH_checker.json with cold/warm/parallel timings.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py
	$(PYTHON) -m pytest benchmarks/bench_checker_scaling.py \
	    benchmarks/bench_incremental.py -q --benchmark-disable

# Resilience smoke: the acceptance chaos scenario (two workers killed,
# one hung, --jobs 4) must recover without serial fallback and with
# byte-identical diagnostics; a corrupted summary cache must be
# quarantined and rebuilt.
chaos-smoke:
	$(PYTHON) benchmarks/chaos_smoke.py

# Full benchmark run, including the 640-function scaling point.
bench:
	$(PYTHON) -m pytest benchmarks/ -q
