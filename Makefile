PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke

test:
	$(PYTHON) -m pytest -x -q

# Fast CI smoke: asserts jobs>1 is never a pessimisation (tiny
# workload; the timing gate applies on multi-CPU runners, byte-identity
# everywhere), then runs the benchmark bodies once (no timing rounds),
# refreshing BENCH_checker.json with cold/warm/parallel timings.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py
	$(PYTHON) -m pytest benchmarks/bench_checker_scaling.py \
	    benchmarks/bench_incremental.py -q --benchmark-disable

# Full benchmark run, including the 640-function scaling point.
bench:
	$(PYTHON) -m pytest benchmarks/ -q
