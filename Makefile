PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke

test:
	$(PYTHON) -m pytest -x -q

# Fast CI smoke: runs every benchmark body once (no timing rounds) and
# refreshes BENCH_checker.json with cold/warm/parallel pipeline timings.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_checker_scaling.py \
	    benchmarks/bench_incremental.py -q --benchmark-disable

# Full benchmark run, including the 640-function scaling point.
bench:
	$(PYTHON) -m pytest benchmarks/ -q
