PYTHON ?= python
export PYTHONPATH := src

#: minimum branch coverage of src/repro/server/ (ratchet: raise, never
#: lower, as the daemon's test surface grows).
COVERAGE_MIN ?= 85

.PHONY: test bench bench-smoke trace-smoke chaos-smoke server-smoke \
	cache-smoke obs-smoke daemon-chaos-smoke fuzz-smoke coverage

test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: `vaultc check --trace` over the examples corpus
# (plus a forced worker pool) must emit schema-valid Chrome trace JSON
# with one track per process.
trace-smoke:
	$(PYTHON) benchmarks/trace_smoke.py

# Fast CI smoke: asserts jobs>1 is never a pessimisation (tiny
# workload; the timing gate applies on multi-CPU runners, byte-identity
# everywhere), then runs the benchmark bodies once (no timing rounds),
# refreshing BENCH_checker.json with cold/warm/parallel timings.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py
	$(PYTHON) -m pytest benchmarks/bench_checker_scaling.py \
	    benchmarks/bench_incremental.py -q --benchmark-disable

# Resilience smoke: the acceptance chaos scenario (two workers killed,
# one hung, --jobs 4) must recover without serial fallback and with
# byte-identical diagnostics; a corrupted summary cache must be
# quarantined and rebuilt.
chaos-smoke:
	$(PYTHON) benchmarks/chaos_smoke.py

# Shared-store smoke: a second cold session over a warm shared store
# must replay >=3x faster with byte-identical diagnostics; after one
# edit the shared summary hit rate must stay >=0.9.  Writes the
# "shared_cache" block of BENCH_checker.json.
cache-smoke:
	$(PYTHON) benchmarks/bench_cache.py

# Telemetry smoke: a daemon with the full obs surface on (time-series
# sampling, Prometheus textfile, slow-trace ring, JSONL event log)
# must round-trip the telemetry op with monotone latency quantiles,
# emit parseable exposition, capture exactly one forced-slow trace,
# and serve `vaultc top --once --json`.  Writes the "observability"
# block of BENCH_checker.json.
obs-smoke:
	$(PYTHON) benchmarks/obs_smoke.py

# Daemon smoke: a real `vaultc serve` under three concurrent clients
# must answer byte-identically to the in-process checker, shut down
# cleanly on SIGTERM, and fall back transparently once gone.
server-smoke:
	$(PYTHON) benchmarks/server_smoke.py

# Wire-level chaos smoke: a real daemon behind the ChaosProxy must
# keep the diagnostics byte-identical under every wire fault (torn,
# garbage, oversize, disconnect, stall, kill mid-check), shed a burst
# past --max-queue with busy replies, survive 3 SIGKILLs under
# --supervise, and degrade an injected CAS ENOSPC to a miss.  Writes
# the "daemon_resilience" block of BENCH_checker.json.
daemon-chaos-smoke:
	$(PYTHON) benchmarks/daemon_chaos_smoke.py

# Differential-fuzzing smoke: 200 seeded adversarial protocol
# programs (random keyed state machines + violating clients) must
# check byte-identically through serial, the forked worker pool, a
# warm cached session and a live check daemon — zero divergences.
# Writes the "fuzz" block of BENCH_checker.json.
fuzz-smoke:
	$(PYTHON) benchmarks/fuzz_smoke.py

# Branch coverage of the server package, ratcheted via COVERAGE_MIN.
# Skips (loudly) where coverage.py is not installed; CI installs it
# and enforces the floor.
coverage:
	@if $(PYTHON) -c "import coverage" 2>/dev/null; then \
		$(PYTHON) -m coverage run --branch \
		    --source=src/repro/server \
		    -m pytest tests/test_server.py tests/test_golden.py -q \
		&& $(PYTHON) -m coverage report \
		    --fail-under=$(COVERAGE_MIN); \
	else \
		echo "coverage: module not installed; skipping (CI enforces)"; \
	fi

# Full benchmark run, including the 640-function scaling point.
bench:
	$(PYTHON) -m pytest benchmarks/ -q
