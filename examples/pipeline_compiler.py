#!/usr/bin/env python3
"""A multi-stage pipeline written *in* the Vault dialect (paper §6).

The paper's conclusion describes writing Vault's own front end in
Vault: "a multi-stage pipeline where each stage's results are stored in
its own region".  This example is that architecture in miniature — an
arithmetic-expression compiler with three stages (tokenize -> parse ->
evaluate), each owning a region for its scratch state, all statically
checked for leaks and dangling accesses, then executed.

Run:  python examples/pipeline_compiler.py
"""

from repro import check_source, load_context
from repro.stdlib.hostimpl import create_host, make_interpreter

PIPELINE = r"""
// ---- token and AST types (plain variants: freely copyable) --------

variant token [ 'TNum(int) | 'TPlus | 'TStar | 'TLParen | 'TRParen
              | 'TEnd ];
variant toklist [ 'TNil | 'TCons(token, toklist) ];
variant expr [ 'Num(int) | 'Add(expr, expr) | 'Mul(expr, expr) ];

// Per-stage scratch state lives in that stage's region (§6).
struct scan_state { int pos; int emitted; }
struct parse_state { int consumed; int depth; }

// ---- stage 1: tokenizer -------------------------------------------

bool is_digit(char c) {
    return c >= '0' && c <= '9';
}

int digit_value(char c) {
    if (c == '0') { return 0; }
    if (c == '1') { return 1; }
    if (c == '2') { return 2; }
    if (c == '3') { return 3; }
    if (c == '4') { return 4; }
    if (c == '5') { return 5; }
    if (c == '6') { return 6; }
    if (c == '7') { return 7; }
    if (c == '8') { return 8; }
    return 9;
}

toklist tokenize_from(string src, int len, tracked(S) region scratch,
                      S:scan_state st) [S] {
    if (st.pos >= len) {
        st.emitted++;
        return 'TCons('TEnd, 'TNil);
    }
    char c = src[st.pos];
    if (c == ' ') {
        st.pos++;
        return tokenize_from(src, len, scratch, st);
    }
    if (is_digit(c)) {
        int value = 0;
        while (st.pos < len && is_digit(src[st.pos])) {
            value = value * 10 + digit_value(src[st.pos]);
            st.pos++;
        }
        st.emitted++;
        return 'TCons('TNum(value), tokenize_from(src, len, scratch, st));
    }
    st.pos++;
    st.emitted++;
    if (c == '+') {
        return 'TCons('TPlus, tokenize_from(src, len, scratch, st));
    }
    if (c == '*') {
        return 'TCons('TStar, tokenize_from(src, len, scratch, st));
    }
    if (c == '(') {
        return 'TCons('TLParen, tokenize_from(src, len, scratch, st));
    }
    return 'TCons('TRParen, tokenize_from(src, len, scratch, st));
}

toklist tokenize(string src, int len) {
    tracked(S) region scratch = Region.create();
    S:scan_state st = new(scratch) scan_state { pos = 0; emitted = 0; };
    toklist toks = tokenize_from(src, len, scratch, st);
    Region.delete(scratch);          // stage 1 scratch gone, tokens live
    return toks;
}

// ---- stage 2: parser (precedence climbing) ------------------------
//
// The parser threads the remaining tokens functionally; its depth
// counter lives in stage 2's region.

struct parse_out { int ok; }

variant presult [ 'PR(expr, toklist) ];

token peek(toklist toks) {
    switch (toks) {
        case 'TNil:
            return 'TEnd;
        case 'TCons(head, rest):
            return head;
    }
}

toklist advance(toklist toks) {
    switch (toks) {
        case 'TNil:
            return 'TNil;
        case 'TCons(head, rest):
            return rest;
    }
}

presult parse_atom(toklist toks, tracked(P) region prgn,
                   P:parse_state st) [P] {
    st.depth++;
    switch (peek(toks)) {
        case 'TNum(n):
            st.consumed++;
            return 'PR('Num(n), advance(toks));
        case 'TLParen:
            st.consumed++;
            switch (parse_sum(advance(toks), prgn, st)) {
                case 'PR(inner, rest):
                    st.consumed++;       // the ')'
                    return 'PR(inner, advance(rest));
            }
        case 'TPlus:
            return 'PR('Num(0), advance(toks));
        case 'TStar:
            return 'PR('Num(0), advance(toks));
        case 'TRParen:
            return 'PR('Num(0), advance(toks));
        case 'TEnd:
            return 'PR('Num(0), toks);
    }
}

presult parse_product(toklist toks, tracked(P) region prgn,
                      P:parse_state st) [P] {
    switch (parse_atom(toks, prgn, st)) {
        case 'PR(left, rest):
            switch (peek(rest)) {
                case 'TStar:
                    st.consumed++;
                    switch (parse_product(advance(rest), prgn, st)) {
                        case 'PR(right, rest2):
                            return 'PR('Mul(left, right), rest2);
                    }
                case 'TNum(n):
                    return 'PR(left, rest);
                case 'TPlus:
                    return 'PR(left, rest);
                case 'TLParen:
                    return 'PR(left, rest);
                case 'TRParen:
                    return 'PR(left, rest);
                case 'TEnd:
                    return 'PR(left, rest);
            }
    }
}

presult parse_sum(toklist toks, tracked(P) region prgn,
                  P:parse_state st) [P] {
    switch (parse_product(toks, prgn, st)) {
        case 'PR(left, rest):
            switch (peek(rest)) {
                case 'TPlus:
                    st.consumed++;
                    switch (parse_sum(advance(rest), prgn, st)) {
                        case 'PR(right, rest2):
                            return 'PR('Add(left, right), rest2);
                    }
                case 'TNum(n):
                    return 'PR(left, rest);
                case 'TStar:
                    return 'PR(left, rest);
                case 'TLParen:
                    return 'PR(left, rest);
                case 'TRParen:
                    return 'PR(left, rest);
                case 'TEnd:
                    return 'PR(left, rest);
            }
    }
}

expr parse(toklist toks) {
    tracked(P) region prgn = Region.create();
    P:parse_state st = new(prgn) parse_state { consumed = 0; depth = 0; };
    switch (parse_sum(toks, prgn, st)) {
        case 'PR(tree, rest):
            Region.delete(prgn);     // stage 2 scratch gone, AST lives
            return tree;
    }
}

// ---- stage 3: evaluator -------------------------------------------

int eval(expr e) {
    switch (e) {
        case 'Num(n):
            return n;
        case 'Add(a, b):
            return eval(a) + eval(b);
        case 'Mul(a, b):
            return eval(a) * eval(b);
    }
}

int compile_and_run(string src, int len) {
    toklist toks = tokenize(src, len);
    expr tree = parse(toks);
    return eval(tree);
}

int main() {
    return compile_and_run("2 + 3 * (4 + 1)", 15);
}
"""


def main() -> None:
    print("Multi-stage pipeline in Vault (paper section 6)\n")

    report = check_source(PIPELINE)
    assert report.ok, report.render()
    print("[check] 3-stage pipeline checks clean: every stage's region "
          "is deleted exactly once,\n        no scratch state escapes "
          "its stage")

    ctx, _ = load_context(PIPELINE)
    host = create_host()
    interp = make_interpreter(ctx, host)

    cases = {
        "2 + 3 * (4 + 1)": 17,
        "(1 + 2) * (3 + 4)": 21,
        "10 * 10 + 1": 101,
        "7": 7,
    }
    for source, expected in cases.items():
        got = interp.call("compile_and_run", [source, len(source)])
        status = "ok" if got == expected else "MISMATCH"
        print(f"[run  ] {source!r:<22} -> {got:<4} ({status})")
        assert got == expected

    host.assert_no_leaks()
    print("[audit] all stage regions reclaimed — no leaks\n")

    # The classic pipeline bug: returning stage scratch to a later
    # stage after its region died.
    broken = PIPELINE.replace(
        "    toklist toks = tokenize_from(src, len, scratch, st);\n"
        "    Region.delete(scratch);          "
        "// stage 1 scratch gone, tokens live",
        "    Region.delete(scratch);\n"
        "    toklist toks = tokenize_from(src, len, scratch, st);")
    assert broken != PIPELINE
    bad_report = check_source(broken)
    assert not bad_report.ok
    first = bad_report.errors[0]
    print(f"[rejected] stage scratch used after its region died: "
          f"{first.code.value}")
    print(f"           {first.message[:72]}")


if __name__ == "__main__":
    main()
