#!/usr/bin/env python3
"""The §2.3 socket protocol: key states drive an FSM at compile time.

Builds an echo server + client pair in the Vault dialect, shows the
checker rejecting every way to get the setup sequence wrong (skipping
``bind``, receiving before ``accept``, ignoring ``bind``'s failure
status), then runs the correct program on the loopback socket
simulator.

Run:  python examples/sockets_server.py
"""

from repro import check_source, load_context
from repro.stdlib.hostimpl import create_host, make_interpreter

ECHO = """
int run_echo() {
    sockaddr addr = new sockaddr { host = "loopback"; port = 4242; };

    // Server setup: raw -> named -> listening (each step checked).
    tracked(S) sock srv = Socket.socket('INET, 'STREAM, 0);
    switch (Socket.bind_checked(srv, addr)) {
        case 'Error(code):
            Socket.close(srv);
            return 0 - code;
        case 'Ok:
            Socket.listen(srv, 4);

            // Client connects: raw -> ready.
            tracked(C) sock client = Socket.socket('INET, 'STREAM, 0);
            Socket.connect(client, addr);
            byte[] msg = [86, 97, 117, 108, 116];      // "Vault"
            Socket.send(client, msg);

            // Server accepts: a fresh socket in state "ready".
            tracked(N) sock conn = Socket.accept(srv, addr);
            byte[] buf = [0, 0, 0, 0, 0, 0, 0, 0];
            int n = Socket.receive(conn, buf);
            Socket.send(conn, buf);

            byte[] echoed = [0, 0, 0, 0, 0, 0, 0, 0];
            int m = Socket.receive(client, echoed);

            Socket.close(conn);
            Socket.close(client);
            Socket.close(srv);
            return n * 100 + m;
    }
}
"""

MISTAKES = {
    "skip bind (raw -> listen)": """
void oops() {
    tracked(S) sock s = Socket.socket('INET, 'STREAM, 0);
    Socket.listen(s, 4);      // error: key S is 'raw', listen needs 'named'
    Socket.close(s);
}
""",
    "receive before accept": """
void oops() {
    sockaddr addr = new sockaddr { host = "h"; port = 1; };
    tracked(S) sock s = Socket.socket('INET, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.listen(s, 4);
    byte[] buf = [0];
    Socket.receive(s, buf);   // error: 'listening', receive needs 'ready'
    Socket.close(s);
}
""",
    "ignore bind failure": """
void oops() {
    sockaddr addr = new sockaddr { host = "h"; port = 1; };
    tracked(S) sock s = Socket.socket('INET, 'STREAM, 0);
    Socket.bind_checked(s, addr);   // status unchecked: key S is gone
    Socket.listen(s, 4);            // error
    Socket.close(s);
}
""",
    "leak the socket": """
void oops() {
    tracked(S) sock s = Socket.socket('INET, 'STREAM, 0);
}                                   // error: key S held at exit
""",
}


def main() -> None:
    print("Socket protocol checking (paper section 2.3)\n")

    for title, source in MISTAKES.items():
        report = check_source(source)
        assert not report.ok, f"expected rejection: {title}"
        first = report.errors[0]
        print(f"[rejected] {title}")
        print(f"           {first.code.value}: {first.message[:70]}")
    print()

    report = check_source(ECHO)
    assert report.ok, report.render()
    print("[accepted] full echo server/client — running it:")
    ctx, _ = load_context(ECHO)
    host = create_host()
    interp = make_interpreter(ctx, host)
    result = interp.call("run_echo")
    sent, echoed = divmod(result, 100)
    print(f"           server received {sent} bytes, "
          f"client got {echoed} back")
    host.assert_no_leaks()
    print("           leak audit: clean")


if __name__ == "__main__":
    main()
