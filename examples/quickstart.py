#!/usr/bin/env python3
"""Quickstart: checking resource protocols with the Vault reproduction.

Reproduces the paper's Figure 2 live: one correct region program and
the two classic mistakes — a dangling reference and a memory leak —
each caught at *compile time* by the key checker, then shows that the
correct program also runs (and that the erased program carries zero
protocol machinery).

Run:  python examples/quickstart.py
"""

from repro import check_source, load_context, parse
from repro.core import check_program
from repro.lower import compile_to_python, load_compiled
from repro.stdlib.hostimpl import create_host, make_interpreter

COMMON = "struct point { int x; int y; }\n"

OKAY = COMMON + """
int okay() {
    tracked(R) region rgn = Region.create();   // mints key R
    R:point pt = new(rgn) point {x=1; y=2;};   // pt guarded by R
    pt.x++;                                    // ok: R is held
    int result = pt.x + pt.y;
    Region.delete(rgn);                        // consumes key R
    return result;
}
"""

DANGLING = COMMON + """
void dangling() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    Region.delete(rgn);
    pt.x++;          // error: key R no longer in the held-key set
}
"""

LEAKY = COMMON + """
void leaky() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
}                    // error: key R still held at exit -> leak
"""


def show(title: str, source: str) -> None:
    print(f"--- {title} " + "-" * (60 - len(title)))
    report = check_source(source)
    if report.ok:
        print("checker: OK — all protocols verified")
    else:
        print(report.render(with_source=False))
    print()


def main() -> None:
    print("Vault reproduction quickstart (DeLine & Fahndrich, PLDI 2001)\n")

    show("okay (Figure 2, accepted)", OKAY)
    show("dangling (Figure 2, rejected)", DANGLING)
    show("leaky (Figure 2, rejected)", LEAKY)

    # The accepted program actually runs, against the region substrate.
    ctx, _ = load_context(OKAY)
    host = create_host()
    interp = make_interpreter(ctx, host)
    print("interpreted okay() ->", interp.call("okay"))
    host.assert_no_leaks()
    print("run-time leak audit: clean")

    # And it compiles to plain Python with every key erased.
    code = compile_to_python(parse(OKAY))
    module = load_compiled(code, create_host())
    print("compiled    okay() ->", module["okay"]())
    assert "key" not in code.lower().replace("# keys and type guards", "")
    print("\ncompiled output contains no key machinery — zero-cost checking")


if __name__ == "__main__":
    main()
