#!/usr/bin/env python3
"""The Windows 2000 floppy-driver case study (paper §4), end to end.

1. statically checks the Vault floppy driver against the kernel
   interface (IRP ownership, completion routines, events, spin locks,
   IRQLs);
2. boots it on the simulated kernel and drives real I/O through the
   whole stack — including the Figure 7 regain-ownership idiom on the
   PnP path;
3. shows the checker rejecting classic driver bugs the paper calls
   "very difficult to reproduce at run time".

Run:  python examples/driver_demo.py
"""

from repro import check_source
from repro.drivers import FloppyHarness, check_driver
from repro.kernel import (IOCTL_EJECT, IOCTL_GET_GEOMETRY, IOCTL_INSERT,
                          STATUS_NO_MEDIA, STATUS_SUCCESS)

DRIVER_BUGS = {
    "IRP dropped on a code path": """
DSTATUS<I> BadRead(tracked(D) DEVICE_OBJECT dev, tracked(I) IRP irp)
        [D, -I, IRQL @ (lvl <= DISPATCH_LEVEL)] {
    int len = IrpTransferLength(irp);
    if (len <= 0) {
        return IoCompleteRequest(irp, STATUS_INVALID_PARAMETER());
    }
    IoCopyCurrentIrpStackLocationToNext(irp);
    DSTATUS<I2> st = IoCallDriver(IoGetLowerDevice(dev), irp);
    return IoCompleteRequest(irp, STATUS_SUCCESS());   // IRP already gone!
}
""",
    "IRP touched after completion": """
DSTATUS<I> BadTouch(DEVICE_OBJECT dev, tracked(I) IRP irp)
        [-I, IRQL @ (lvl <= DISPATCH_LEVEL)] {
    DSTATUS<I> st = IoCompleteRequest(irp, STATUS_SUCCESS());
    IrpSetInformation(irp, 512);                       // use after release
    return st;
}
""",
    "spin lock never released": """
struct counters { int n; }
void BadLock() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counters c = new tracked counters { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    c.n++;
}                                                      // lock leak
""",
    "paged data touched at DISPATCH_LEVEL": """
struct config { int a; }
void BadPaged(paged<config> cfg) [IRQL @ DISPATCH_LEVEL] {
    int v = cfg.a;        // page fault here deadlocks the machine
}
""",
}


def main() -> None:
    print("Floppy driver case study (paper section 4)\n")

    # 1. The real driver checks clean.
    report = check_driver()
    assert report.ok, report.render()
    print("[check] floppy.vlt: all kernel protocols verified statically")

    # 2. Boot it and push I/O through the stack.
    harness = FloppyHarness()
    harness.boot()
    print("[boot ] DriverEntry ran: FDO created, dispatch table "
          "registered, stack attached")

    harness.open()
    payload = b"PLDI 2001: Enforcing High-Level Protocols"
    write_irp = harness.write(0, payload)
    assert write_irp.status == STATUS_SUCCESS
    read_irp, data = harness.read(0, len(payload))
    assert data == payload
    print(f"[io   ] wrote+read {len(payload)} bytes through "
          f"FDO -> PDO -> floppy ({harness.device.reads} device reads)")

    geometry = harness.ioctl(IOCTL_GET_GEOMETRY)
    print(f"[ioctl] geometry: {geometry.information} sectors")

    harness.ioctl(IOCTL_EJECT)
    no_media, _ = harness.read(0, 16)
    assert no_media.status == STATUS_NO_MEDIA
    print("[ioctl] eject honoured: read correctly failed with "
          "STATUS_NO_MEDIA")
    harness.ioctl(IOCTL_INSERT)

    pnp = harness.pnp()
    assert pnp.status == STATUS_SUCCESS
    print("[pnp  ] Figure 7 idiom executed: completion routine + event "
          "regained IRP ownership, then completed")

    print(f"[stats] driver counted {harness.stats_total()} operations "
          f"(under its spin lock)")
    harness.close()
    assert harness.audit() == []
    print("[audit] no leaked IRPs, regions, sockets or files\n")

    # 3. The classic bugs are compile-time errors.
    for title, source in DRIVER_BUGS.items():
        bug_report = check_source(source)
        assert not bug_report.ok, f"expected rejection: {title}"
        first = bug_report.errors[0]
        print(f"[rejected] {title}")
        print(f"           {first.code.value}: {first.message[:72]}")


if __name__ == "__main__":
    main()
