#!/usr/bin/env python3
"""Using the library as a protocol lint: static vs. testing, measured.

Runs the seeded-fault (mutation) study on the corpus programs: every
mutant is judged by the Vault checker, by a plain (guard-erased)
checker, and by actually running a test workload on the substrate
simulators.  The output is the paper's argument in one table — the
plain type system is protocol-blind, testing only sees executed paths,
the Vault checker is exhaustive and compile-time.

Run:  python examples/protocol_lint.py
"""

from repro.analysis import CORPUS, format_table, run_study


def main() -> None:
    print("Seeded-fault detection: Vault checker vs plain checker vs "
          "testing\n")

    rows = []
    totals = {"n": 0, "vault": 0, "plain": 0, "dyn": 0, "mon": 0,
              "benign": 0}
    for name, program in sorted(CORPUS.items()):
        summary = run_study(program.source, runner=program.runner,
                            monitor_runner=program.monitor_runner)
        rows.append([
            name,
            str(summary.total),
            f"{summary.vault_detected} ({summary.rate('vault'):.0%})",
            f"{summary.plain_detected} ({summary.rate('plain'):.0%})",
            f"{summary.dynamic_detected} ({summary.rate('dynamic'):.0%})",
            f"{summary.monitor_detected} ({summary.rate('monitor'):.0%})",
            str(summary.benign),
        ])
        totals["n"] += summary.total
        totals["vault"] += summary.vault_detected
        totals["plain"] += summary.plain_detected
        totals["dyn"] += summary.dynamic_detected
        totals["mon"] += summary.monitor_detected
        totals["benign"] += summary.benign

    rows.append([
        "TOTAL", str(totals["n"]),
        f"{totals['vault']} ({totals['vault'] / totals['n']:.0%})",
        f"{totals['plain']} ({totals['plain'] / totals['n']:.0%})",
        f"{totals['dyn']} ({totals['dyn'] / totals['n']:.0%})",
        f"{totals['mon']} ({totals['mon'] / totals['n']:.0%})",
        str(totals["benign"]),
    ])
    print(format_table(
        ["program", "mutants", "vault (static)", "plain checker",
         "testing (dynamic)", "key monitor", "benign"],
        rows))

    print(
        "\nReading the table: the Vault checker flags protocol mutants at"
        "\ncompile time; the plain checker only sees ordinary type errors"
        "\n(protocols are inexpressible once guards are erased); dynamic"
        "\ntesting and the run-time key monitor need the faulty path to"
        "\nactually execute (and the monitor pays per-call bookkeeping)."
    )


if __name__ == "__main__":
    main()
