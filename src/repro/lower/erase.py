"""Key erasure — the front half of the paper's compilation model.

"Keys are purely compile-time entities that have no impact on run-time
representations or execution time" (§2.1).  The paper's compiler
translates checked Vault into plain C; :func:`erase_program` performs
the corresponding source-to-source step on our AST:

* ``tracked(K) T`` / ``tracked T``       →  ``T``
* guarded types ``K@st : T``             →  ``T``
* effect clauses                         →  removed
* key/state parameters of declarations   →  removed (with matching
  arguments dropped at every use site)
* constructor key attachments ``{K}``    →  removed
* ``stateset`` / ``key`` declarations    →  removed

The erased program parses and runs identically (keys never influenced
run-time behaviour) but carries none of the protocol annotations — it
is the "C version" used for the case study's size comparison and as
input to the plain-checker baseline.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..syntax import ast


class _ParamTable:
    """Which ``<...>`` positions of each named type survive erasure."""

    def __init__(self) -> None:
        #: type name -> list of param kinds ("type" | "key" | "state")
        self.kinds: Dict[str, List[str]] = {}

    def collect(self, programs: Sequence[ast.Program]) -> None:
        def walk(decls: List[ast.Decl]) -> None:
            for decl in decls:
                if isinstance(decl, (ast.InterfaceDecl, ast.ModuleDecl)):
                    walk(decl.decls)
                elif isinstance(decl, (ast.TypeAliasDecl, ast.VariantDecl,
                                       ast.StructDecl)):
                    self.kinds[decl.name] = [p.kind for p in decl.params]
        for prog in programs:
            walk(prog.decls)

    def keep_mask(self, name: str, argc: int) -> List[bool]:
        kinds = self.kinds.get(name)
        if kinds is None or len(kinds) != argc:
            return [True] * argc
        return [k == "type" for k in kinds]


class Eraser:
    """Erases Vault's protocol annotations from an AST."""

    def __init__(self, table: Optional[_ParamTable] = None):
        self.table = table or _ParamTable()

    # -- programs / declarations --------------------------------------------

    def erase_programs(self, programs: Sequence[ast.Program]
                       ) -> List[ast.Program]:
        self.table.collect(programs)
        return [self.erase_program(p, collected=True) for p in programs]

    def erase_program(self, program: ast.Program,
                      collected: bool = False) -> ast.Program:
        if not collected:
            self.table.collect([program])
        decls = []
        for decl in program.decls:
            erased = self.erase_decl(decl)
            if erased is not None:
                decls.append(erased)
        return ast.Program(program.span, decls, program.filename)

    def erase_decl(self, decl: ast.Decl) -> Optional[ast.Decl]:
        if isinstance(decl, (ast.StateSetDecl, ast.KeyDecl)):
            return None
        if isinstance(decl, ast.InterfaceDecl):
            inner = [d for d in (self.erase_decl(x) for x in decl.decls)
                     if d is not None]
            return ast.InterfaceDecl(decl.span, decl.name, inner)
        if isinstance(decl, ast.ModuleDecl):
            inner = [d for d in (self.erase_decl(x) for x in decl.decls)
                     if d is not None]
            return ast.ModuleDecl(decl.span, decl.name, decl.interface,
                                  inner, decl.is_extern)
        if isinstance(decl, ast.TypeAliasDecl):
            params = [p for p in decl.params if p.kind == "type"]
            rhs = self.erase_type(decl.rhs) if decl.rhs is not None else None
            return ast.TypeAliasDecl(decl.span, decl.name, params, rhs)
        if isinstance(decl, ast.VariantDecl):
            params = [p for p in decl.params if p.kind == "type"]
            ctors = [ast.CtorDecl(c.span, c.name,
                                  [self.erase_type(t) for t in c.args], [])
                     for c in decl.ctors]
            return ast.VariantDecl(decl.span, decl.name, params, ctors)
        if isinstance(decl, ast.StructDecl):
            params = [p for p in decl.params if p.kind == "type"]
            fields = [ast.StructField(f.span, self.erase_type(f.type),
                                      f.name)
                      for f in decl.fields]
            return ast.StructDecl(decl.span, decl.name, params, fields)
        if isinstance(decl, ast.FunDecl):
            return self.erase_fun_decl(decl)
        if isinstance(decl, ast.FunDef):
            return ast.FunDef(decl.span, self.erase_fun_decl(decl.decl),
                              self.erase_block(decl.body))
        raise TypeError(f"unknown decl {type(decl).__name__}")

    def erase_fun_decl(self, decl: ast.FunDecl) -> ast.FunDecl:
        params = [ast.Param(p.span, self.erase_type(p.type), p.name)
                  for p in decl.params]
        type_params = [p for p in decl.type_params if p.kind == "type"]
        return ast.FunDecl(decl.span, self.erase_type(decl.ret), decl.name,
                           params, None, type_params)

    # -- types -------------------------------------------------------------------

    def erase_type(self, ty: ast.Type) -> ast.Type:
        if isinstance(ty, ast.BaseType):
            return ty
        if isinstance(ty, ast.TrackedType):
            return self.erase_type(ty.inner)
        if isinstance(ty, ast.GuardedType):
            return self.erase_type(ty.inner)
        if isinstance(ty, ast.ArrayType):
            return ast.ArrayType(ty.span, self.erase_type(ty.elem))
        if isinstance(ty, ast.NamedType):
            mask = self.table.keep_mask(ty.name, len(ty.args))
            args = []
            for keep, arg in zip(mask, ty.args):
                if keep and arg.type is not None:
                    erased = self.erase_type(arg.type)
                    args.append(ast.TypeArg(arg.span, erased, arg.name))
            return ast.NamedType(ty.span, ty.name, args)
        if isinstance(ty, ast.FunType):
            params = [ast.Param(p.span, self.erase_type(p.type), p.name)
                      for p in ty.params]
            return ast.FunType(ty.span, self.erase_type(ty.ret), params,
                               None, ty.name)
        raise TypeError(f"unknown type {type(ty).__name__}")

    # -- statements -----------------------------------------------------------------

    def erase_block(self, block: ast.Block) -> ast.Block:
        return ast.Block(block.span,
                         [self.erase_stmt(s) for s in block.stmts])

    def erase_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            return self.erase_block(stmt)
        if isinstance(stmt, ast.VarDecl):
            init = self.erase_expr(stmt.init) if stmt.init else None
            return ast.VarDecl(stmt.span, self.erase_type(stmt.type),
                               stmt.name, init)
        if isinstance(stmt, ast.LocalFun):
            fd = stmt.fundef
            erased = ast.FunDef(fd.span, self.erase_fun_decl(fd.decl),
                                self.erase_block(fd.body))
            return ast.LocalFun(stmt.span, erased)
        if isinstance(stmt, ast.ExprStmt):
            return ast.ExprStmt(stmt.span, self.erase_expr(stmt.expr))
        if isinstance(stmt, ast.Assign):
            return ast.Assign(stmt.span, self.erase_expr(stmt.target),
                              stmt.op, self.erase_expr(stmt.value))
        if isinstance(stmt, ast.IncDec):
            return ast.IncDec(stmt.span, self.erase_expr(stmt.target),
                              stmt.op)
        if isinstance(stmt, ast.If):
            orelse = self.erase_stmt(stmt.orelse) if stmt.orelse else None
            return ast.If(stmt.span, self.erase_expr(stmt.cond),
                          self.erase_stmt(stmt.then), orelse)
        if isinstance(stmt, ast.While):
            return ast.While(stmt.span, self.erase_expr(stmt.cond),
                             self.erase_stmt(stmt.body))
        if isinstance(stmt, ast.Switch):
            cases = [ast.Case(c.span, c.pattern,
                              [self.erase_stmt(s) for s in c.body])
                     for c in stmt.cases]
            return ast.Switch(stmt.span, self.erase_expr(stmt.scrutinee),
                              cases)
        if isinstance(stmt, ast.Return):
            value = self.erase_expr(stmt.value) if stmt.value else None
            return ast.Return(stmt.span, value)
        if isinstance(stmt, ast.Free):
            return ast.Free(stmt.span, self.erase_expr(stmt.target))
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return stmt
        raise TypeError(f"unknown stmt {type(stmt).__name__}")

    # -- expressions -------------------------------------------------------------------

    def erase_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit,
                             ast.StringLit, ast.CharLit, ast.NullLit,
                             ast.Name)):
            return expr
        if isinstance(expr, ast.FieldAccess):
            return ast.FieldAccess(expr.span, self.erase_expr(expr.obj),
                                   expr.field)
        if isinstance(expr, ast.Index):
            return ast.Index(expr.span, self.erase_expr(expr.obj),
                             self.erase_expr(expr.index))
        if isinstance(expr, ast.Call):
            return ast.Call(expr.span, self.erase_expr(expr.fn),
                            [self.erase_expr(a) for a in expr.args])
        if isinstance(expr, ast.Unary):
            return ast.Unary(expr.span, expr.op,
                             self.erase_expr(expr.operand))
        if isinstance(expr, ast.Binary):
            return ast.Binary(expr.span, expr.op,
                              self.erase_expr(expr.left),
                              self.erase_expr(expr.right))
        if isinstance(expr, ast.CtorApp):
            return ast.CtorApp(expr.span, expr.name,
                               [self.erase_expr(a) for a in expr.args], [])
        if isinstance(expr, ast.New):
            inits = [ast.FieldInit(i.span, i.name, self.erase_expr(i.value))
                     for i in expr.inits]
            region = self.erase_expr(expr.region) if expr.region else None
            return ast.New(expr.span, self.erase_type(expr.type), inits,
                           False, region)
        if isinstance(expr, ast.ArrayLit):
            return ast.ArrayLit(expr.span,
                                [self.erase_expr(e) for e in expr.elems])
        raise TypeError(f"unknown expr {type(expr).__name__}")


def erase_program(program: ast.Program) -> ast.Program:
    """Erase one compilation unit's protocol annotations."""
    return Eraser().erase_program(program)


def erase_programs(programs: Sequence[ast.Program]) -> List[ast.Program]:
    """Erase several units sharing one declaration table (stdlib + user)."""
    return Eraser().erase_programs(programs)
