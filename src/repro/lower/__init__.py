"""The key-erasing backend: Vault -> plain Python (stands in for the
paper's Vault -> C compiler)."""

from .erase import Eraser, erase_program, erase_programs
from .pygen import PyGen, compile_to_python, load_compiled
from .shim import Rt

__all__ = ["Eraser", "PyGen", "Rt", "compile_to_python", "erase_program",
           "erase_programs", "load_compiled"]
