"""Runtime support for compiled (erased) Vault programs.

The paper compiles checked Vault into C and links it against the kernel
through a thin wrapper; :mod:`repro.lower.pygen` compiles checked Vault
into plain Python, and this module is that thin wrapper.  A compiled
module holds a single :class:`Rt` instance through which it reaches the
host substrates — exactly the services the interpreter uses, minus any
key machinery (keys were erased at compile time).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..diagnostics import Code, RuntimeProtocolError
from ..runtime.values import (NULL_VALUE, VOID_VALUE, VArray, VHandle,
                              VStruct, VVariant)


class Rt:
    """The compiled program's runtime services."""

    NULL = NULL_VALUE
    VOID = VOID_VALUE

    def __init__(self, host) -> None:
        self.host = host

    # -- host dispatch (extern functions) ------------------------------------

    def call(self, name: str, *args: Any) -> Any:
        fn = self.host.env.lookup(name)
        if fn is None:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL, f"no host implementation for '{name}'")
        return fn(self, *args)

    def call_value(self, fn: Any, args: List[Any]) -> Any:
        """Kernel substrates call back through this (dispatch routines,
        completion routines)."""
        if callable(fn):
            return fn(*args)
        raise RuntimeProtocolError(
            Code.RT_PROTOCOL, f"cannot call non-function value {fn!r}")

    def invoke(self, fn: Any, args: List[Any]) -> Any:
        return self.call_value(fn, args)

    # -- data ---------------------------------------------------------------------

    def new_struct(self, type_name: str, fields: Dict[str, Any],
                   region: Any = None) -> VStruct:
        struct = VStruct(type_name, fields)
        if region is not None:
            if isinstance(region, VHandle) and region.kind == "region":
                region.resource.allocate(struct)
                struct.region = region.resource
            else:
                raise RuntimeProtocolError(
                    Code.RT_PROTOCOL,
                    f"new(...) requires a region, got {region!r}")
        return struct

    def variant(self, ctor: str, args: List[Any]) -> VVariant:
        return VVariant(ctor, args)

    def ctor_of(self, value: Any) -> str:
        if isinstance(value, VVariant):
            return value.ctor
        raise RuntimeProtocolError(
            Code.RT_PROTOCOL, f"switch on non-variant value {value!r}")

    def variant_arg(self, value: VVariant, index: int) -> Any:
        return value.args[index]

    def array(self, elems: List[Any]) -> VArray:
        return VArray(elems)

    def _check_struct(self, obj: Any) -> VStruct:
        if isinstance(obj, VStruct):
            if obj.freed:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING,
                    f"access to freed {obj.type_name} object")
            if obj.region is not None and not obj.region.alive:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING,
                    f"access to {obj.type_name} object in deleted region "
                    f"'{obj.region.name}'")
            return obj
        raise RuntimeProtocolError(
            Code.RT_PROTOCOL, f"cannot access fields of {obj!r}")

    def get_field(self, obj: Any, name: str) -> Any:
        return self._check_struct(obj).fields[name]

    def set_field(self, obj: Any, name: str, value: Any) -> Any:
        self._check_struct(obj).fields[name] = value
        return value

    def index(self, obj: Any, idx: int) -> Any:
        if isinstance(obj, VArray):
            return obj.elems[idx]
        if isinstance(obj, str):
            return obj[idx]
        raise RuntimeProtocolError(Code.RT_PROTOCOL,
                                   f"cannot index {obj!r}")

    def set_index(self, obj: Any, idx: int, value: Any) -> Any:
        if isinstance(obj, VArray):
            obj.elems[idx] = value
            return value
        raise RuntimeProtocolError(Code.RT_PROTOCOL,
                                   f"cannot index {obj!r}")

    def free(self, obj: Any) -> None:
        if isinstance(obj, VStruct):
            if obj.freed:
                raise RuntimeProtocolError(
                    Code.RT_DOUBLE_FREE,
                    f"double free of {obj.type_name} object")
            obj.freed = True
            return
        raise RuntimeProtocolError(Code.RT_PROTOCOL,
                                   f"cannot free {obj!r}")

    @staticmethod
    def div(a: Any, b: Any) -> Any:
        if b == 0:
            raise RuntimeProtocolError(Code.RT_PROTOCOL, "division by zero")
        if isinstance(a, int) and isinstance(b, int):
            return int(a / b)
        return a / b

    @staticmethod
    def truthy(value: Any) -> bool:
        if isinstance(value, bool):
            return value
        raise RuntimeProtocolError(
            Code.RT_PROTOCOL, f"condition evaluated to non-bool {value!r}")
