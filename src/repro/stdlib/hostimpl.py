"""Host implementations backing the standard Vault interfaces.

Each extern function declared in ``vault/*.vlt`` is implemented here
against the substrate simulators — the region allocator (§2.2), the
socket network (§2.3), an in-memory file table (§2.1) and the kernel
simulator (§4).  :func:`create_host` builds a fresh, isolated
:class:`Host` whose :attr:`Host.env` plugs straight into the
interpreter.

The paper's Vault compiler links checked drivers against the real
kernel through a thin C wrapper; these bindings are that wrapper's
analogue.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..diagnostics import Code, RuntimeProtocolError
from ..kernel import (IRP_MJ_CLOSE, IRP_MJ_CREATE, IRP_MJ_DEVICE_CONTROL,
                      IRP_MJ_PNP, IRP_MJ_READ, IRP_MJ_WRITE, DeviceObject,
                      Irp, KernelEvent, KernelSim, OWNER_DRIVER, SpinLock,
                      STATUS_DEVICE_NOT_READY, STATUS_INVALID_DEVICE_REQUEST,
                      STATUS_INVALID_PARAMETER, STATUS_NO_MEDIA,
                      STATUS_PENDING, STATUS_SUCCESS)
from ..regions import RegionManager
from ..runtime.interp import HostEnv, Interpreter
from ..runtime.values import VOID_VALUE, VArray, VHandle, VStruct

_file_ids = itertools.count(1)


class SimFile:
    """An in-memory file for the §2.1 FILE examples."""

    def __init__(self, name: str):
        self.id = next(_file_ids)
        self.name = name
        self.data: List[int] = []
        self.pos = 0
        self.open = True

    def require_open(self, what: str) -> None:
        if not self.open:
            raise RuntimeProtocolError(
                Code.RT_DANGLING,
                f"{what} on closed file '{self.name}'")


class SimVector:
    """Backing store for the iterator scenario (Mota et al.)."""

    def __init__(self):
        self.items: List[int] = []


class SimIterator:
    """A live cursor over a :class:`SimVector`."""

    def __init__(self, ident: int, vector: SimVector):
        self.id = ident
        self.vector = vector
        self.pos = 0
        self.open = True


class SimChannel:
    """One endpoint of the session-typed negotiation channel.

    The "peer" is simulated: an offer is accepted when the requested
    amount is even (deterministic, so checked programs replay)."""

    def __init__(self, ident: int, endpoint: str):
        self.id = ident
        self.endpoint = endpoint
        self.pending = 0
        self.settled_total = 0
        self.open = True


class SimStack:
    """The state-dependent stack collection."""

    def __init__(self, ident: int):
        self.id = ident
        self.items: List[int] = []
        self.open = True


def _handle(kind: str):
    """Build an argument validator/extractor for VHandle arguments."""
    def extract(value: Any, what: str):
        if isinstance(value, VHandle) and value.kind == kind:
            return value.resource
        raise RuntimeProtocolError(
            Code.RT_PROTOCOL, f"{what} expects a {kind}, got {value!r}")
    return extract


_region = _handle("region")
_sock = _handle("sock")
_file = _handle("file")
_irp = _handle("irp")
_event = _handle("event")
_lock = _handle("lock")
_irql = _handle("irql")
_device = _handle("device")


class Host:
    """A bundle of substrate instances plus the extern-function table."""

    def __init__(self) -> None:
        from ..db import TxStore
        from ..gfx import GdiSystem
        from ..sockets import SocketNetwork
        self.regions = RegionManager()
        self.network = SocketNetwork()
        self.kernel = KernelSim()
        self.store = TxStore()
        self.gdi = GdiSystem()
        self.files: List[SimFile] = []
        self.iterators: List[SimIterator] = []
        self.channels: List[SimChannel] = []
        self.stacks: List[SimStack] = []
        self.env = HostEnv()
        self._register_regions()
        self._register_files()
        self._register_sockets()
        self._register_kernel()
        self._register_transactions()
        self._register_gdi()
        self._register_scenarios()

    # -- audits across every substrate -----------------------------------------

    def audit(self) -> List[str]:
        report = []
        report.extend(f"region {name}" for name in self.regions.audit())
        report.extend(f"socket {sid}" for sid in self.network.audit())
        report.extend(f"file {f.name}" for f in self.files if f.open)
        report.extend(f"transaction {tid}" for tid in self.store.audit())
        report.extend(f"gdi {name}" for name in self.gdi.audit())
        report.extend(self.kernel.audit())
        report.extend(f"iterator {i.id}" for i in self.iterators if i.open)
        report.extend(f"channel {c.id}" for c in self.channels if c.open)
        report.extend(f"stack {s.id}" for s in self.stacks if s.open)
        return report

    def assert_no_leaks(self) -> None:
        leaked = self.audit()
        if leaked:
            raise RuntimeProtocolError(
                Code.RT_LEAK, "leaked resource(s): " + "; ".join(leaked))

    # -- regions (§2.2) ------------------------------------------------------------

    def _register_regions(self) -> None:
        def create(interp):
            return VHandle("region", self.regions.create())

        def delete(interp, rgn):
            self.regions.delete(_region(rgn, "Region.delete"))
            return VOID_VALUE

        def size(interp, rgn):
            return _region(rgn, "Region.size").size

        self.env.register_all({
            "Region.create": create,
            "Region.delete": delete,
            "Region.size": size,
        })

    # -- files (§2.1) -----------------------------------------------------------------

    def _register_files(self) -> None:
        def fopen(interp, name):
            handle = SimFile(str(name))
            self.files.append(handle)
            return VHandle("file", handle)

        def fclose(interp, f):
            sim = _file(f, "fclose")
            if not sim.open:
                raise RuntimeProtocolError(
                    Code.RT_DOUBLE_FREE,
                    f"file '{sim.name}' closed twice")
            sim.open = False
            return VOID_VALUE

        def fgetb(interp, f):
            sim = _file(f, "fgetb")
            sim.require_open("fgetb")
            if sim.pos >= len(sim.data):
                return 0
            value = sim.data[sim.pos]
            sim.pos += 1
            return value

        def fputb(interp, f, b):
            sim = _file(f, "fputb")
            sim.require_open("fputb")
            sim.data.append(int(b) & 0xFF)
            return VOID_VALUE

        def flen(interp, f):
            sim = _file(f, "flen")
            sim.require_open("flen")
            return len(sim.data)

        self.env.register_all({
            "fopen": fopen, "fclose": fclose, "fgetb": fgetb,
            "fputb": fputb, "flen": flen,
        })

    # -- sockets (§2.3) --------------------------------------------------------------------

    def _register_sockets(self) -> None:
        net = self.network

        def vsocket(interp, domain, style, protocol):
            return VHandle("sock", net.socket(domain.ctor, style.ctor))

        def addr_of(value: Any):
            if isinstance(value, VStruct) and value.type_name == "sockaddr":
                return str(value.fields.get("host")), \
                    int(value.fields.get("port"))
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL, f"expected a sockaddr, got {value!r}")

        def bind(interp, s, a):
            host, port = addr_of(a)
            net.bind(_sock(s, "Socket.bind"), host, port)
            return VOID_VALUE

        def bind_checked(interp, s, a):
            from ..runtime.values import VVariant
            host, port = addr_of(a)
            err = net.bind_checked(_sock(s, "Socket.bind_checked"),
                                   host, port)
            if err is None:
                return VVariant("Ok", [])
            return VVariant("Error", [err])

        def listen(interp, s, backlog):
            net.listen(_sock(s, "Socket.listen"), int(backlog))
            return VOID_VALUE

        def accept(interp, s, a):
            return VHandle("sock", net.accept(_sock(s, "Socket.accept")))

        def receive(interp, s, buf):
            sock = _sock(s, "Socket.receive")
            data = net.receive(sock)
            if isinstance(buf, VArray):
                buf.elems[:len(data)] = list(data)
            return len(data)

        def send(interp, s, buf):
            sock = _sock(s, "Socket.send")
            payload = bytes(int(b) & 0xFF for b in buf.elems) \
                if isinstance(buf, VArray) else b""
            net.send(sock, payload)
            return VOID_VALUE

        def connect(interp, s, a):
            host, port = addr_of(a)
            net.connect(_sock(s, "Socket.connect"), host, port)
            return VOID_VALUE

        def close(interp, s):
            net.close(_sock(s, "Socket.close"))
            return VOID_VALUE

        self.env.register_all({
            "Socket.socket": vsocket, "Socket.bind": bind,
            "Socket.bind_checked": bind_checked, "Socket.listen": listen,
            "Socket.accept": accept, "Socket.receive": receive,
            "Socket.send": send, "Socket.connect": connect,
            "Socket.close": close,
        })

    # -- transactions (§1's database-transaction resource class) -----------------

    def _register_transactions(self) -> None:
        store = self.store
        _txn = _handle("txn")

        def begin(interp):
            return VHandle("txn", store.begin())

        def put(interp, t, key, value):
            store.put(_txn(t, "Tx.put"), str(key), int(value))
            return VOID_VALUE

        def get(interp, t, key):
            return store.get(_txn(t, "Tx.get"), str(key))

        def remove(interp, t, key):
            store.delete(_txn(t, "Tx.remove"), str(key))
            return VOID_VALUE

        def commit(interp, t):
            store.commit(_txn(t, "Tx.commit"))
            return VOID_VALUE

        def abort(interp, t):
            store.abort(_txn(t, "Tx.abort"))
            return VOID_VALUE

        self.env.register_all({
            "Tx.begin": begin, "Tx.put": put, "Tx.get": get,
            "Tx.remove": remove, "Tx.commit": commit, "Tx.abort": abort,
        })

    # -- graphics (§6's "graphic interfaces" domain) -------------------------------

    def _register_gdi(self) -> None:
        gdi = self.gdi
        _dc = _handle("dc")
        _pen = _handle("pen")

        def get_dc(interp, window):
            return VHandle("dc", gdi.get_dc(int(window)))

        def create_pen(interp, color):
            return VHandle("pen", gdi.create_pen(int(color)))

        def select_pen(interp, d, p):
            gdi.select_pen(_dc(d, "Gdi.select_pen"),
                           _pen(p, "Gdi.select_pen"))
            return VOID_VALUE

        def deselect_pen(interp, d, p):
            gdi.deselect_pen(_dc(d, "Gdi.deselect_pen"),
                             _pen(p, "Gdi.deselect_pen"))
            return VOID_VALUE

        def draw_line(interp, d, x0, y0, x1, y1):
            gdi.draw_line(_dc(d, "Gdi.draw_line"), int(x0), int(y0),
                          int(x1), int(y1))
            return VOID_VALUE

        def release_dc(interp, d):
            gdi.release_dc(_dc(d, "Gdi.release_dc"))
            return VOID_VALUE

        def delete_pen(interp, p):
            gdi.delete_pen(_pen(p, "Gdi.delete_pen"))
            return VOID_VALUE

        self.env.register_all({
            "Gdi.get_dc": get_dc, "Gdi.create_pen": create_pen,
            "Gdi.select_pen": select_pen, "Gdi.deselect_pen": deselect_pen,
            "Gdi.draw_line": draw_line, "Gdi.release_dc": release_dc,
            "Gdi.delete_pen": delete_pen,
        })

    # -- protocol scenario suite (docs/PROTOCOLS.md) -------------------------------

    def _register_scenarios(self) -> None:
        from ..runtime.values import VVariant
        _iter = _handle("iter")
        _vec = _handle("vec")
        _chan = _handle("chan")
        _stack = _handle("stack")
        ids = itertools.count(1)

        # iterator.vlt — Iter ------------------------------------------------
        def vec_new(interp):
            return VHandle("vec", SimVector())

        def vec_push(interp, v, value):
            _vec(v, "Iter.vec_push").items.append(int(value))
            return VOID_VALUE

        def vec_len(interp, v):
            return len(_vec(v, "Iter.vec_len").items)

        def start(interp, v):
            cursor = SimIterator(next(ids), _vec(v, "Iter.start"))
            self.iterators.append(cursor)
            return VHandle("iter", cursor)

        def has_next(interp, it):
            cursor = _iter(it, "Iter.has_next")
            if not cursor.open:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING, "Iter.has_next on stopped iterator")
            if cursor.pos < len(cursor.vector.items):
                return VVariant("Next", [])
            return VVariant("End", [])

        def nxt(interp, it):
            cursor = _iter(it, "Iter.next")
            if not cursor.open:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING, "Iter.next on stopped iterator")
            if cursor.pos >= len(cursor.vector.items):
                raise RuntimeProtocolError(
                    Code.RT_PROTOCOL, "Iter.next past the end")
            value = cursor.vector.items[cursor.pos]
            cursor.pos += 1
            return value

        def stop(interp, it):
            cursor = _iter(it, "Iter.stop")
            if not cursor.open:
                raise RuntimeProtocolError(
                    Code.RT_DOUBLE_FREE, "Iter.stop on stopped iterator")
            cursor.open = False
            return VOID_VALUE

        self.env.register_all({
            "Iter.vec_new": vec_new, "Iter.vec_push": vec_push,
            "Iter.vec_len": vec_len, "Iter.start": start,
            "Iter.has_next": has_next, "Iter.next": nxt,
            "Iter.stop": stop,
        })

        # channel.vlt — Chan -------------------------------------------------
        def dial(interp, endpoint):
            chan = SimChannel(next(ids), str(endpoint))
            self.channels.append(chan)
            return VHandle("chan", chan)

        def request(interp, c, amount):
            chan = _chan(c, "Chan.request")
            chan.pending = int(amount)
            return VOID_VALUE

        def propose(interp, c):
            chan = _chan(c, "Chan.propose")
            if not chan.open:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING, "Chan.propose on closed channel")
            if chan.pending % 2 == 0:       # deterministic peer
                return VVariant("Deal", [chan.pending])
            return VVariant("NoDeal", [])

        def settle(interp, c):
            chan = _chan(c, "Chan.settle")
            chan.settled_total += chan.pending
            chan.pending = 0
            return VOID_VALUE

        def hangup(interp, c):
            chan = _chan(c, "Chan.hangup")
            if not chan.open:
                raise RuntimeProtocolError(
                    Code.RT_DOUBLE_FREE, "Chan.hangup on closed channel")
            chan.open = False
            return VOID_VALUE

        self.env.register_all({
            "Chan.dial": dial, "Chan.request": request,
            "Chan.propose": propose, "Chan.settle": settle,
            "Chan.hangup": hangup,
        })

        # stack.vlt — Stack --------------------------------------------------
        def stack_new(interp):
            stk = SimStack(next(ids))
            self.stacks.append(stk)
            return VHandle("stack", stk)

        def push(interp, s, value):
            stk = _stack(s, "Stack.push")
            if not stk.open:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING, "Stack.push on destroyed stack")
            stk.items.append(int(value))
            return VOID_VALUE

        def pop(interp, s):
            stk = _stack(s, "Stack.pop")
            if not stk.items:
                raise RuntimeProtocolError(
                    Code.RT_PROTOCOL, "Stack.pop on empty stack")
            value = stk.items.pop()
            if stk.items:
                return VVariant("More", [value])
            return VVariant("Last", [value])

        def destroy(interp, s):
            stk = _stack(s, "Stack.destroy")
            if not stk.open:
                raise RuntimeProtocolError(
                    Code.RT_DOUBLE_FREE, "Stack.destroy twice")
            if stk.items:
                raise RuntimeProtocolError(
                    Code.RT_PROTOCOL, "Stack.destroy on non-empty stack")
            stk.open = False
            return VOID_VALUE

        self.env.register_all({
            "Stack.stack_new": stack_new, "Stack.push_first": push,
            "Stack.push": push, "Stack.pop": pop, "Stack.destroy": destroy,
        })

    # -- kernel (§4) -------------------------------------------------------------------------

    def _register_kernel(self) -> None:
        kernel = self.kernel

        # IRP ownership -------------------------------------------------------
        def io_complete_request(interp, irp, status):
            return kernel.io_complete_request(
                interp, _irp(irp, "IoCompleteRequest"), int(status))

        def io_call_driver(interp, dev, irp):
            return kernel.io_call_driver(
                interp, _device(dev, "IoCallDriver"),
                _irp(irp, "IoCallDriver"))

        def io_mark_pending(interp, irp):
            return kernel.io_mark_pending(_irp(irp, "IoMarkIrpPending"))

        def io_allocate_irp(interp, stack_size):
            irp = Irp(IRP_MJ_PNP)
            irp.give_to(OWNER_DRIVER)
            kernel.live_irps[irp.id] = irp
            return VHandle("irp", irp)

        def io_build_ioctl(interp, code):
            irp = Irp(IRP_MJ_DEVICE_CONTROL, ioctl=int(code))
            irp.give_to(OWNER_DRIVER)
            kernel.live_irps[irp.id] = irp
            return VHandle("irp", irp)

        def io_free_irp(interp, irp):
            packet = _irp(irp, "IoFreeIrp")
            packet.require_owner(OWNER_DRIVER, "IoFreeIrp")
            kernel.live_irps.pop(packet.id, None)
            packet.give_to("freed")
            return VOID_VALUE

        def _owned(irp, what):
            packet = _irp(irp, what)
            packet.require_owner(OWNER_DRIVER, what)
            return packet

        def io_set_completion(interp, irp, routine):
            packet = _owned(irp, "IoSetCompletionRoutine")
            ctx = DeviceObject("completion-context")
            packet.completion_routines.append((routine, ctx))
            return VOID_VALUE

        accessors = {
            "IrpMajorFunction": lambda p: p.major,
            "IrpMinorFunction": lambda p: p.minor,
            "IrpTransferLength": lambda p: p.length,
            "IrpTransferOffset": lambda p: p.offset,
            "IrpIoctlCode": lambda p: p.ioctl,
        }

        def make_accessor(name, getter):
            def accessor(interp, irp):
                return getter(_owned(irp, name))
            return accessor

        def irp_set_information(interp, irp, info):
            _owned(irp, "IrpSetInformation").information = int(info)
            return VOID_VALUE

        def irp_system_buffer(interp, irp):
            return VArray(_owned(irp, "IrpSystemBuffer").buffer)

        def io_copy_next(interp, irp):
            _owned(irp,
                   "IoCopyCurrentIrpStackLocationToNext"
                   ).next_location_prepared = True
            return VOID_VALUE

        def io_skip_next(interp, irp):
            _owned(irp,
                   "IoSkipCurrentIrpStackLocation"
                   ).next_location_prepared = True
            return VOID_VALUE

        # Device queues (pending-IRP lists, §4.1) -------------------------------
        def ke_create_queue(interp):
            return VHandle("queue", [])

        def ke_insert_queue(interp, q, irp):
            queue = _handle("queue")(q, "KeInsertDeviceQueue")
            packet = _irp(irp, "KeInsertDeviceQueue")
            packet.require_owner(OWNER_DRIVER, "KeInsertDeviceQueue")
            queue.append(packet)
            return VOID_VALUE

        def ke_queue_depth(interp, q):
            return len(_handle("queue")(q, "KeQueueDepth"))

        def ke_remove_queue(interp, q):
            from ..runtime.values import VVariant
            queue = _handle("queue")(q, "KeRemoveDeviceQueue")
            if not queue:
                return VVariant("QueueEmpty", [])
            packet = queue.pop(0)
            return VVariant("Dequeued", [VHandle("irp", packet)])

        # Thread coordination --------------------------------------------------
        def ke_init_event(interp, obj):
            return VHandle("event", KernelEvent())

        def ke_signal_event(interp, ev):
            _event(ev, "KeSignalEvent").signal()
            return VOID_VALUE

        def ke_wait_event(interp, ev):
            event = _event(ev, "KeWaitForEvent")
            guard = 100_000
            while not event.signaled:
                if not kernel.work:
                    raise RuntimeProtocolError(
                        Code.RT_DEADLOCK,
                        f"KeWaitForEvent('{event.name}') with no pending "
                        f"work: nothing can ever signal it")
                kernel.tick(interp)
                guard -= 1
                if guard <= 0:
                    raise RuntimeProtocolError(
                        Code.RT_DEADLOCK,
                        f"KeWaitForEvent('{event.name}') never satisfied")
            event.consume()
            return VOID_VALUE

        def ke_init_spin_lock(interp, obj):
            return VHandle("lock", SpinLock())

        def ke_acquire_spin_lock(interp, lock):
            previous = _lock(lock, "KeAcquireSpinLock").acquire(kernel.irql)
            return VHandle("irql", previous)

        def ke_release_spin_lock(interp, lock, old):
            _lock(lock, "KeReleaseSpinLock").release(
                kernel.irql, _irql(old, "KeReleaseSpinLock"))
            return VOID_VALUE

        # IRQL ---------------------------------------------------------------------
        def ke_set_priority(interp, thread, priority):
            kernel.irql.require_exactly("PASSIVE_LEVEL",
                                        "KeSetPriorityThread")
            return int(priority)

        def ke_release_semaphore(interp, sem, priority, adjust):
            kernel.irql.require("DISPATCH_LEVEL", "KeReleaseSemaphore")
            return 0

        def ke_raise_to_dpc(interp):
            return VHandle("irql", kernel.irql.raise_to("DISPATCH_LEVEL"))

        def ke_lower(interp, old):
            kernel.irql.lower_to(_irql(old, "KeLowerIrql"))
            return VOID_VALUE

        # Devices / registration -----------------------------------------------------
        def io_create_device(interp, name, dd):
            return VHandle("device", kernel.create_fdo(str(name), dd))

        def io_register_dispatch(interp, dev, major, fn):
            _device(dev, "IoRegisterDispatch").dispatch[int(major)] = fn
            return VOID_VALUE

        def io_attach(interp, fdo, lower):
            top = _device(fdo, "IoAttachDeviceToDeviceStack")
            top.attach(_device(lower, "IoAttachDeviceToDeviceStack"))
            return fdo

        def io_get_lower(interp, dev):
            device = _device(dev, "IoGetLowerDevice")
            if device.lower is None:
                raise RuntimeProtocolError(
                    Code.RT_PROTOCOL,
                    f"device '{device.name}' has no lower device")
            return VHandle("device", device.lower)

        table: Dict[str, Any] = {
            "IoCompleteRequest": io_complete_request,
            "IoCallDriver": io_call_driver,
            "IoMarkIrpPending": io_mark_pending,
            "IoAllocateIrp": io_allocate_irp,
            "IoBuildDeviceIoControlRequest": io_build_ioctl,
            "IoFreeIrp": io_free_irp,
            "IoSetCompletionRoutine": io_set_completion,
            "IrpSetInformation": irp_set_information,
            "IrpSystemBuffer": irp_system_buffer,
            "IoCopyCurrentIrpStackLocationToNext": io_copy_next,
            "IoSkipCurrentIrpStackLocation": io_skip_next,
            "KeCreateDeviceQueue": ke_create_queue,
            "KeInsertDeviceQueue": ke_insert_queue,
            "KeQueueDepth": ke_queue_depth,
            "KeRemoveDeviceQueue": ke_remove_queue,
            "KeInitializeEvent": ke_init_event,
            "KeSignalEvent": ke_signal_event,
            "KeWaitForEvent": ke_wait_event,
            "KeInitializeSpinLock": ke_init_spin_lock,
            "KeAcquireSpinLock": ke_acquire_spin_lock,
            "KeReleaseSpinLock": ke_release_spin_lock,
            "KeSetPriorityThread": ke_set_priority,
            "KeReleaseSemaphore": ke_release_semaphore,
            "KeRaiseIrqlToDpcLevel": ke_raise_to_dpc,
            "KeLowerIrql": ke_lower,
            "IoCreateDevice": io_create_device,
            "IoRegisterDispatch": io_register_dispatch,
            "IoAttachDeviceToDeviceStack": io_attach,
            "IoGetLowerDevice": io_get_lower,
        }
        for name, getter in accessors.items():
            table[name] = make_accessor(name, getter)

        constants = {
            "IRP_MJ_CREATE": IRP_MJ_CREATE, "IRP_MJ_CLOSE": IRP_MJ_CLOSE,
            "IRP_MJ_READ": IRP_MJ_READ, "IRP_MJ_WRITE": IRP_MJ_WRITE,
            "IRP_MJ_DEVICE_CONTROL": IRP_MJ_DEVICE_CONTROL,
            "IRP_MJ_PNP": IRP_MJ_PNP,
            "STATUS_SUCCESS": STATUS_SUCCESS,
            "STATUS_PENDING": STATUS_PENDING,
            "STATUS_INVALID_DEVICE_REQUEST": STATUS_INVALID_DEVICE_REQUEST,
            "STATUS_NO_MEDIA": STATUS_NO_MEDIA,
            "STATUS_DEVICE_NOT_READY": STATUS_DEVICE_NOT_READY,
            "STATUS_INVALID_PARAMETER": STATUS_INVALID_PARAMETER,
        }

        def make_constant(value):
            def constant(interp):
                return value
            return constant

        for name, value in constants.items():
            table[name] = make_constant(value)

        self.env.register_all(table)


def create_host() -> Host:
    """A fresh host with isolated substrate instances."""
    return Host()


def make_interpreter(ctx, host: Optional[Host] = None) -> Interpreter:
    """Convenience: an interpreter wired to a (fresh) host."""
    host = host or create_host()
    interp = Interpreter(ctx, host.env)
    interp.vault_host = host
    return interp
