"""The standard Vault interface library and its host implementations."""

from .loader import (STDLIB_UNITS, available_units, stdlib_context,
                     stdlib_path, stdlib_programs, stdlib_source)

__all__ = [
    "STDLIB_UNITS",
    "available_units",
    "stdlib_context",
    "stdlib_path",
    "stdlib_programs",
    "stdlib_source",
]
