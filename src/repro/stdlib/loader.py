"""Loading of the standard Vault interface library.

The ``vault/`` directory holds the interfaces the paper develops:
``region.vlt`` (§2.2), ``socket.vlt`` (§2.3), ``file.vlt`` (the FILE
examples of §2.1) and ``ntkernel.vlt`` (the Windows 2000 kernel/driver
interface of §4).  :func:`stdlib_programs` parses whichever of them a
caller requests, defaulting to all.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Tuple

from ..syntax import ast, parse_program

_VAULT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "vault")

#: Load order matters only for readability; names are global either way.
STDLIB_UNITS = ("region", "file", "socket", "ntkernel", "transactions",
                "gdi", "iterator", "channel", "stack")


def stdlib_path(unit: str) -> str:
    return os.path.join(_VAULT_DIR, f"{unit}.vlt")


def available_units() -> List[str]:
    return sorted(
        name[:-4] for name in os.listdir(_VAULT_DIR) if name.endswith(".vlt"))


@lru_cache(maxsize=None)
def _load_unit(unit: str) -> ast.Program:
    path = stdlib_path(unit)
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read(), filename=f"<stdlib:{unit}>")


def stdlib_programs(units: Optional[Sequence[str]] = None) -> List[ast.Program]:
    """Parsed stdlib compilation units (cached)."""
    chosen: Iterable[str] = units if units is not None else [
        u for u in STDLIB_UNITS if os.path.exists(stdlib_path(u))]
    return [_load_unit(u) for u in chosen]


def stdlib_source(unit: str) -> str:
    with open(stdlib_path(unit), "r", encoding="utf-8") as handle:
        return handle.read()


@lru_cache(maxsize=None)
def _base_context(units: Tuple[str, ...]):
    # Imported here: repro.core pulls in the elaborator, which this
    # module must not import at load time (loader is imported by the
    # stdlib package before core is fully initialised in some paths).
    from ..core import build_context
    from ..diagnostics import Reporter
    reporter = Reporter(None, "<stdlib>")
    ctx = build_context([_load_unit(u) for u in units], reporter)
    return ctx, tuple(reporter.diagnostics)


def base_context_cache_info():
    """Hit/miss statistics for the process-wide base-context cache
    (the pipeline's telemetry reads this to attribute stdlib-layer
    hits without re-deriving the cache key)."""
    return _base_context.cache_info()


def stdlib_context(units: Optional[Sequence[str]] = None):
    """A fully elaborated context for the requested stdlib units, plus
    any diagnostics its elaboration produced (normally none).

    Built once per process per unit tuple; callers must treat the
    result as immutable and layer their own program on top with
    ``build_context(..., base=ctx)``.
    """
    chosen: Tuple[str, ...] = tuple(units) if units is not None else tuple(
        u for u in STDLIB_UNITS if os.path.exists(stdlib_path(u)))
    return _base_context(chosen)
