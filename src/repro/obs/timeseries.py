"""A fixed-interval time-series aggregator over the metrics registry.

The check daemon's :class:`~repro.obs.metrics.MetricsRegistry` is
cumulative: counters only grow, histograms only accumulate.  For a
long-lived service that is the wrong shape to answer "what is the
request rate *now*" or "what was p95 latency over the last minute" —
so the daemon's selector loop feeds the registry through a
:class:`TimeSeriesRing` once per ``interval`` seconds, and each tick
derives the *windowed* view:

* counters become **per-second rates** (value deltas over the elapsed
  interval; only counters that moved are recorded, so idle intervals
  stay tiny);
* histograms become **p50/p95/p99 snapshots** of the observations made
  *during the interval* (bucket-count deltas fed through the same
  bucket interpolation as :meth:`Histogram.quantile`), plus the
  interval's observation count and rate;
* gauges are carried at their sampled value.

Memory is bounded by construction: the ring is a ``deque(maxlen=
capacity)`` of plain-data samples, so a daemon up for a month holds
exactly as much history as one up for a minute.  Like the tracer, the
ring is **fork-safe**: samples are attributed to the creating process,
and a sample attempt from a forked child (which inherited the parent's
baseline) resets the ring instead of double-reporting the inherited
counts.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from .metrics import bucket_quantile

#: default seconds between samples (the daemon's ``--sample-interval``).
DEFAULT_INTERVAL = 5.0

#: default retained samples (10 minutes of history at the default
#: interval) — the window the ``telemetry`` wire op serves.
DEFAULT_CAPACITY = 120


class TimeSeriesRing:
    """Bounded history of rate/quantile samples over one registry.

    ``maybe_sample(registry)`` is the selector-loop entry point: it is
    a cheap no-op until ``interval`` has elapsed since the last sample,
    then takes one.  ``sample(registry)`` forces a sample regardless
    (tests and shutdown flushes).  ``describe()`` is the plain-data
    view the ``telemetry`` wire op returns.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY):
        self.interval = max(0.0, float(interval))
        self.capacity = max(1, int(capacity))
        self._samples: Deque[Dict[str, object]] = deque(maxlen=self.capacity)
        self._prev: Optional[Dict[str, dict]] = None
        self._prev_time: float = 0.0
        self._pid = os.getpid()

    def __len__(self) -> int:
        return len(self._samples)

    def _reset(self) -> None:
        self._samples.clear()
        self._prev = None
        self._prev_time = 0.0
        self._pid = os.getpid()

    def maybe_sample(self, registry,
                     now: Optional[float] = None) -> Optional[dict]:
        """Sample iff the interval has elapsed; the sampled dict, or
        ``None`` when it is not yet time."""
        if now is None:
            now = time.monotonic()
        if self._prev is not None and now - self._prev_time < self.interval:
            return None
        return self.sample(registry, now)

    def sample(self, registry, now: Optional[float] = None) -> dict:
        """Take one sample now (establishes the baseline on first call,
        which records an empty delta)."""
        if now is None:
            now = time.monotonic()
        if os.getpid() != self._pid:
            self._reset()
        snapshot = registry.snapshot()
        dt = now - self._prev_time if self._prev is not None else 0.0
        prev = self._prev if self._prev is not None else {}
        rates: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        quantiles: Dict[str, dict] = {}
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                delta = data["value"] - prev.get(name, {}).get("value", 0)
                if delta:
                    rates[name] = delta / dt if dt > 0 else 0.0
            elif kind == "gauge":
                gauges[name] = data["value"]
            elif kind == "histogram":
                before = prev.get(name, {})
                delta_count = data["count"] - before.get("count", 0)
                if delta_count <= 0:
                    continue
                old = before.get("bucket_counts")
                buckets = list(data["bucket_counts"])
                if old is not None and len(old) == len(buckets):
                    buckets = [b - a for a, b in zip(old, buckets)]
                quantiles[name] = {
                    "count": delta_count,
                    "rate": delta_count / dt if dt > 0 else 0.0,
                    "p50": bucket_quantile(data["bounds"], buckets, 0.50),
                    "p95": bucket_quantile(data["bounds"], buckets, 0.95),
                    "p99": bucket_quantile(data["bounds"], buckets, 0.99),
                }
        sample = {"time": time.time(), "dt": dt, "rates": rates,
                  "gauges": gauges, "quantiles": quantiles}
        self._samples.append(sample)
        self._prev = snapshot
        self._prev_time = now
        return sample

    def window(self) -> List[dict]:
        """The retained samples, oldest first (plain JSON-safe data)."""
        return list(self._samples)

    def describe(self) -> dict:
        """The ``telemetry`` wire-op view: config plus the window."""
        return {"interval": self.interval, "capacity": self.capacity,
                "samples": self.window()}
