"""A structured event log — the pipeline's and runtime monitor's bus.

Anything that used to be a bare ``print(..., file=sys.stderr)`` —
worker crashes above all — becomes an :class:`Event`: a kind, a
human-readable message, and a dict of structured fields (child pid,
batch function names, tracebacks) that stay queryable after the run.
The runtime :class:`~repro.runtime.monitor.KeyMonitor` publishes its
key mints/transitions/leaks on the same bus, so one event stream holds
both the static checker's operational record and the dynamic monitor's
protocol record — the paper's static-vs-dynamic cost comparison read
off a single log.

Events are plain picklable data; pool workers ship theirs back to the
parent in the result frames they already send.  Subscribers (callbacks
taking one :class:`Event`) see events as they are emitted.

The resilience layer (PR 4) publishes its whole recovery state
machine here, one kind per transition:

* ``worker_crash`` / ``worker_timeout`` — a pool worker failed
  (fields: pid, batch functions, traceback / deadline);
* ``worker_respawn`` — a replacement worker was forked;
* ``batch_retry`` / ``batch_bisect`` — a failed batch was retried
  as-is, or split in half to isolate the offender;
* ``poison_function`` / ``poison_recovered`` — a single function was
  isolated as the cause (reported as a ``V0500`` diagnostic) or
  exonerated by a clean parent-side re-check;
* ``serial_fallback`` — the pool was beyond saving (fields: reused /
  rechecked counts — completed batch results are not thrown away);
* ``cache_corrupt`` / ``cache_incompatible`` / ``cache_write_failed``
  — summary-cache persistence degraded (fields: path, error,
  quarantined location);
* ``fault_injected`` — the deterministic chaos harness
  (:mod:`repro.pipeline.faults`) acted out an injected fault.

The check daemon (PR 5, :mod:`repro.server`) publishes its lifecycle
on the same bus:

* ``server_start`` / ``server_stop`` — the daemon came up on / left
  its socket (fields: path, pid, idle_timeout);
* ``server_idle_exit`` — the idle timeout elapsed with no requests;
* ``client_error`` — a client was dropped after a protocol violation
  (malformed frame, oversized header).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: cap on retained records; the oldest half is dropped on overflow so
#: a long-lived session cannot grow without bound.
_MAX_RECORDS = 8192


@dataclass
class Event:
    """One structured record."""

    kind: str
    message: str
    fields: Dict[str, object] = field(default_factory=dict)
    ts: float = 0.0
    pid: int = 0

    def render(self) -> str:
        extras = " ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items())
                          if k != "traceback")
        return f"[{self.kind}] {self.message}" + (f" ({extras})" if extras
                                                  else "")


class EventLog:
    """An append-only event record with subscribers."""

    def __init__(self) -> None:
        self.records: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []
        #: subscriber callbacks that raised (swallowed — a broken
        #: audit sink must never take the emitting pipeline down).
        self.subscriber_errors = 0

    def emit(self, kind: str, message: str = "", **fields) -> Event:
        event = Event(kind, message, fields, ts=time.time(), pid=os.getpid())
        self._record(event)
        return event

    def _record(self, event: Event) -> None:
        if len(self.records) >= _MAX_RECORDS:
            del self.records[:_MAX_RECORDS // 2]
        self.records.append(event)
        for subscriber in self._subscribers:
            try:
                subscriber(event)
            except Exception:                    # noqa: BLE001
                self.subscriber_errors += 1

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.append(callback)

    def by_kind(self, kind: str) -> List[Event]:
        return [e for e in self.records if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Retained records tallied by kind (chaos tests and ``vaultc
        stats`` read recovery activity off this)."""
        out: Dict[str, int] = {}
        for event in self.records:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # -- cross-process hand-off ----------------------------------------------

    def drain(self) -> List[Event]:
        """Take (and clear) the records — the worker side of the pool
        protocol."""
        records, self.records = self.records, []
        return records

    def absorb(self, records: List[Event]) -> None:
        """Merge events recorded by another process (subscribers fire
        for each, same as a local emit)."""
        for event in records:
            self._record(event)


class JsonlEventWriter:
    """An :class:`EventLog` subscriber appending events to a
    size-rotated JSONL audit file.

    One JSON object per line (``ts``, ``pid``, ``kind``, ``message``,
    ``fields``; non-JSON field values degrade to ``repr``).  When the
    file grows past ``max_bytes`` it rotates shift-style
    (``log`` → ``log.1`` → … → ``log.<backups>``, oldest dropped), so
    a daemon's audit trail is bounded on disk however long it runs.
    Write failures are swallowed — combined with the event log's
    subscriber isolation, a full disk degrades the audit trail, never
    the daemon.
    """

    def __init__(self, path: str, max_bytes: int = 4 << 20,
                 backups: int = 2):
        self.path = path
        self.max_bytes = max(1024, int(max_bytes))
        self.backups = max(0, int(backups))
        self._handle = None
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._open()

    def _open(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")

    def _rotate(self) -> None:
        self.close()
        if self.backups:
            for i in range(self.backups, 1, -1):
                older = f"{self.path}.{i - 1}"
                if os.path.exists(older):
                    os.replace(older, f"{self.path}.{i}")
            os.replace(self.path, f"{self.path}.1")
        else:
            os.unlink(self.path)
        self._open()

    def __call__(self, event: Event) -> None:
        if self._handle is None:
            return
        line = json.dumps(
            {"ts": event.ts, "pid": event.pid, "kind": event.kind,
             "message": event.message, "fields": event.fields},
            separators=(",", ":"), sort_keys=True, default=repr)
        self._handle.write(line + "\n")
        self._handle.flush()
        if self._handle.tell() >= self.max_bytes:
            self._rotate()

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


def open_event_log(path: Optional[str], events: EventLog,
                   max_bytes: int = 4 << 20) -> Optional[JsonlEventWriter]:
    """Attach a :class:`JsonlEventWriter` to ``events`` (``None`` path
    means no audit log; the returned writer wants ``close()``)."""
    if not path:
        return None
    writer = JsonlEventWriter(path, max_bytes=max_bytes)
    events.subscribe(writer)
    return writer
