"""A zero-dependency metrics registry: counters, gauges, histograms.

The checking pipeline increments these at every decision worth
auditing after the fact — cache hits and misses for all four cache
layers, scheduler verdicts (break-even fallbacks, LPT batch skew),
worker crashes and serial fallbacks, and diagnostic-code frequencies.
The registry is deliberately small:

* metrics are named with dotted paths (``cache.context.hits``) and
  created on first use;
* histograms have **fixed bucket boundaries** chosen at creation, so
  two registries with the same metric merge exactly (bucket counts
  add) — which is how pool workers ship their deltas to the parent;
* a disabled registry is the shared :data:`NULL_METRICS` singleton:
  every operation is a no-op on a shared null metric and
  ``snapshot()`` is empty, so disabled instrumentation adds no keys
  and costs an attribute lookup per guarded callsite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

#: default boundaries for latency histograms, in seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: default boundaries for ratio histograms (batch skew and friends).
RATIO_BUCKETS: Tuple[float, ...] = (1.05, 1.1, 1.25, 1.5, 2.0, 5.0)


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


def bucket_quantile(bounds: Sequence[float],
                    bucket_counts: Sequence[int], q: float) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket distribution.

    Prometheus ``histogram_quantile`` semantics: observations are
    assumed uniform inside their bucket, so the estimate interpolates
    linearly between the bucket's lower and upper bound; a quantile
    landing in the +Inf overflow bucket is clamped to the highest
    finite bound.  An empty distribution estimates 0.0.  Increasing
    ``q`` over the same buckets is monotone non-decreasing.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q!r} outside [0, 1]")
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(bounds, bucket_counts):
        cumulative += count
        if count and cumulative >= target:
            fraction = 1.0 - (cumulative - target) / count
            return lower + (bound - lower) * fraction
        lower = bound
    return bounds[-1] if bounds else 0.0


class Histogram:
    """Counts observations into fixed buckets (``le`` semantics, plus
    an implicit +Inf overflow bucket)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, bounds: Sequence[float]):
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile (see :func:`bucket_quantile`)."""
        return bucket_quantile(self.bounds, self.bucket_counts, q)


class MetricsRegistry:
    """Named metrics, created on first use; see the module docstring."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds)

    # -- export / merge ------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A plain-data view of every metric (JSON- and
        pickle-friendly; the worker pool ships these across the fork
        boundary)."""
        out: Dict[str, dict] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                assert isinstance(metric, Histogram)
                out[name] = {"type": "histogram", "count": metric.count,
                             "sum": metric.sum,
                             "bounds": list(metric.bounds),
                             "bucket_counts": list(metric.bucket_counts)}
        return out

    def drain(self) -> Dict[str, dict]:
        """Snapshot and reset — the worker side of the delta protocol."""
        snap = self.snapshot()
        self._metrics.clear()
        return snap

    def merge(self, snapshot: Optional[Dict[str, dict]]) -> None:
        """Fold another registry's snapshot into this one: counters
        and histogram buckets add, gauges take the incoming value."""
        if not snapshot:
            return
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name, data["bounds"])
                if hist.bounds != tuple(data["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket boundaries differ")
                hist.count += data["count"]
                hist.sum += data["sum"]
                for i, n in enumerate(data["bucket_counts"]):
                    hist.bucket_counts[i] += n
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    # -- rendering -----------------------------------------------------------

    def render_rows(self) -> List[Tuple[str, str]]:
        rows: List[Tuple[str, str]] = []
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                rows.append((name, str(metric.value)))
            elif isinstance(metric, Gauge):
                rows.append((name, f"{metric.value:g}"))
            else:
                assert isinstance(metric, Histogram)
                mean = metric.sum / metric.count if metric.count else 0.0
                rows.append((name, f"count={metric.count} "
                                   f"sum={metric.sum:.6g} mean={mean:.6g} "
                                   f"p50={metric.quantile(0.5):.6g} "
                                   f"p95={metric.quantile(0.95):.6g} "
                                   f"p99={metric.quantile(0.99):.6g}"))
        return rows

    def render(self) -> str:
        rows = self.render_rows()
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in rows)


class _NullMetric:
    __slots__ = ()
    value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """The disabled registry: no-op metrics, empty snapshots."""

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, dict]:
        return {}

    def drain(self) -> Dict[str, dict]:
        return {}

    def merge(self, snapshot: Optional[Dict[str, dict]]) -> None:
        pass

    def render_rows(self) -> List[Tuple[str, str]]:
        return []

    def render(self) -> str:
        return "(metrics disabled)"


NULL_METRICS = NullMetrics()
