"""A span-based tracer exporting Chrome trace-event JSON.

The checker's phases (lex → parse → elaborate → check), per-function
flow checks, scheduler decisions and worker-pool round-trips are
wrapped in **spans**; a finished trace loads directly into
``chrome://tracing`` or https://ui.perfetto.dev.  Design constraints:

* **zero overhead when disabled** — callsites hold a
  :data:`NULL_TRACER` singleton whose ``span``/``instant`` are no-ops
  returning a shared null context manager, and hot paths may guard on
  ``tracer.enabled`` (a plain attribute) before building span
  arguments;
* **fork-safe timestamps** — events are stamped with
  ``time.perf_counter()`` (CLOCK_MONOTONIC on the platforms the worker
  pool exists on), so spans recorded in forked pool workers line up
  with the parent's timeline without any clock hand-off;
* **one track per process** — each event carries the recording
  process's pid, which the trace viewers render as separate tracks;
  workers :meth:`~Tracer.drain` their events into the result frames
  they already send (see :mod:`repro.pipeline.workers`) and the parent
  :meth:`~Tracer.absorb`\\ s them.

The module also owns the *active tracer*: instrumented code deep in
the pipeline (the parser's lex/parse phases, for instance) fetches the
tracer installed by the enclosing :class:`~repro.pipeline.CheckSession`
via :func:`current_tracer` instead of threading it through every
signature.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: event fields every exporter consumer relies on (the trace-smoke
#: schema check validates these).
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid")


class _NullSpan:
    """The shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; emits a complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        now = time.perf_counter()
        self._tracer._complete(self.name, self._start, now, self.args)
        return False


class Tracer:
    """Records trace events for one process.

    ``span(name, **args)`` is a context manager timing one operation;
    ``instant(name, **args)`` marks a point in time.  ``export(path)``
    writes the Chrome trace-event JSON object format.
    """

    enabled = True

    def __init__(self, process_name: str = "vaultc",
                 pid: Optional[int] = None):
        self.process_name = process_name
        self.pid = pid if pid is not None else os.getpid()
        self.events: List[dict] = []

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **args) -> _Span:
        return _Span(self, name, args or None)

    def instant(self, name: str, **args) -> None:
        event = {"name": name, "ph": "i", "s": "p",
                 "ts": time.perf_counter() * 1e6,
                 "pid": self.pid, "tid": 0}
        if args:
            event["args"] = args
        self._append(event)

    def _complete(self, name: str, start: float, end: float,
                  args: Optional[dict]) -> None:
        event = {"name": name, "ph": "X",
                 "ts": start * 1e6, "dur": (end - start) * 1e6,
                 "pid": self.pid, "tid": 0}
        if args:
            event["args"] = args
        self._append(event)

    def _append(self, event: dict) -> None:
        if not self.events:
            self.events.append({"name": "process_name", "ph": "M", "ts": 0,
                                "pid": self.pid, "tid": 0,
                                "args": {"name": self.process_name}})
        self.events.append(event)

    # -- cross-process hand-off ----------------------------------------------

    def drain(self) -> List[dict]:
        """Take (and clear) the recorded events — the worker side of
        the pool protocol ships these back in its result frames."""
        events, self.events = self.events, []
        return events

    def absorb(self, events: List[dict]) -> None:
        """Merge events recorded by another process (its pid keeps its
        spans on a separate track)."""
        if events:
            if not self.events:
                self._append(events[0])
                events = events[1:]
            self.events.extend(events)

    # -- reporting -----------------------------------------------------------

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per span name, summed over all tracks."""
        totals: Dict[str, float] = {}
        for event in self.events:
            if event.get("ph") == "X":
                name = event["name"]
                totals[name] = totals.get(name, 0.0) \
                    + event.get("dur", 0.0) / 1e6
        return totals

    def to_chrome(self) -> dict:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def export(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    events: tuple = ()

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        pass

    def drain(self) -> List[dict]:
        return []

    def absorb(self, events: List[dict]) -> None:
        pass

    def phase_totals(self) -> Dict[str, float]:
        return {}

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def export(self, path: str) -> None:
        raise RuntimeError("cannot export a trace: tracing is disabled")


NULL_TRACER = NullTracer()


class TraceRing:
    """A bounded on-disk ring of Chrome-trace JSON files.

    The daemon's slow-request capture writes one file per offending
    request (``slow-<millis>-<seq>.json``); after every write the
    oldest files beyond ``keep`` are pruned, so the ring's disk
    footprint is bounded no matter how long the daemon lives.  Writes
    are atomic (tmp + rename) so a reader never sees a torn trace.
    """

    def __init__(self, directory: str, keep: int = 32,
                 prefix: str = "slow-"):
        self.directory = directory
        self.keep = max(1, int(keep))
        self.prefix = prefix
        self._seq = 0

    def paths(self) -> List[str]:
        """Retained trace files, oldest first (names sort by write
        time: a millisecond stamp plus a per-process sequence)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [os.path.join(self.directory, name) for name in sorted(names)
                if name.startswith(self.prefix) and name.endswith(".json")]

    def write(self, payload: dict) -> str:
        """Write one trace object into the ring; the new file's path."""
        os.makedirs(self.directory, exist_ok=True)
        name = (f"{self.prefix}{int(time.time() * 1000):013d}"
                f"-{self._seq:04d}.json")
        self._seq += 1
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
        self._prune()
        return path

    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[:max(0, len(paths) - self.keep)]:
            try:
                os.unlink(stale)
            except OSError:
                pass

#: the tracer instrumented library code reports to; installed by the
#: session (or any caller) via :func:`activate`.
_ACTIVE: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    return _ACTIVE


@contextmanager
def activate(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Install ``tracer`` as the process's active tracer for the
    duration of the block (restores the previous one on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def validate_chrome_trace(payload: object) -> List[str]:
    """Schema-check a Chrome trace object; returns the violations.

    Used by the trace-smoke gate and the CLI tests: every event must
    carry :data:`REQUIRED_EVENT_KEYS`, phases must be known, and
    complete events need a non-negative duration.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["top level must be an object with a 'traceEvents' list"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {i}: missing required key {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
        ts = event.get("ts")
        if "ts" in event and (isinstance(ts, bool)
                              or not isinstance(ts, (int, float))):
            problems.append(f"event {i}: ts must be numeric, "
                            f"got {type(ts).__name__}")
        if ph == "X":
            dur = event.get("dur", 0)
            if isinstance(dur, bool) or not isinstance(dur, (int, float)):
                problems.append(f"event {i}: dur must be numeric, "
                                f"got {type(dur).__name__}")
            elif dur < 0:
                problems.append(f"event {i}: negative duration")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {i}: pid must be an integer")
    return problems
