"""Prometheus text-exposition rendering for the metrics registry.

Turns a :meth:`MetricsRegistry.snapshot` into the Prometheus text
format (version 0.0.4): ``# TYPE`` comments, ``_total``-suffixed
counters, plain gauges, and histograms as **cumulative** ``_bucket``
series with ``le`` labels plus ``_sum``/``_count`` — the one wire
format every metrics scraper already speaks, produced with zero
dependencies.  Dotted registry names are mapped to the Prometheus
grammar (``server.check_seconds`` → ``vaultc_server_check_seconds``).

Two consumers:

* ``vaultc serve --prom-file PATH`` rewrites a textfile atomically on
  every sample tick (:func:`write_textfile`: tmp + fsync + rename, so
  a scraper — e.g. node_exporter's textfile collector — never reads a
  torn file);
* :func:`validate_exposition` is the line-by-line checker the
  ``obs-smoke`` gate and the tests run over the rendered text (name
  grammar, float values, cumulative bucket monotonicity, ``+Inf`` ==
  ``_count``).
"""

from __future__ import annotations

import os
import re
import tempfile
from typing import Dict, List, Optional

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)\Z")


def metric_name(name: str, prefix: str = "vaultc") -> str:
    """A registry name as a legal Prometheus metric name."""
    flat = _SANITIZE.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _fmt(value: float) -> str:
    """Floats in the shortest round-trippable form; ints stay ints."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"non-numeric sample value {value!r}")
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_exposition(snapshot: Dict[str, dict], prefix: str = "vaultc",
                      extra_gauges: Optional[Dict[str, float]] = None
                      ) -> str:
    """A registry snapshot as Prometheus exposition text.

    ``extra_gauges`` maps *already-final* metric names (no prefixing)
    to values — the daemon uses it for uptime/queue-depth/session
    gauges that live outside the registry.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        if kind == "counter":
            flat = metric_name(name, prefix) + "_total"
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_fmt(data['value'])}")
        elif kind == "gauge":
            flat = metric_name(name, prefix)
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_fmt(data['value'])}")
        elif kind == "histogram":
            flat = metric_name(name, prefix)
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in zip(data["bounds"],
                                    data["bucket_counts"]):
                cumulative += count
                lines.append(f'{flat}_bucket{{le="{_fmt(float(bound))}"}} '
                             f"{cumulative}")
            lines.append(f'{flat}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{flat}_sum {_fmt(data['sum'])}")
            lines.append(f"{flat}_count {data['count']}")
    for name in sorted(extra_gauges or {}):
        if not _NAME_OK.match(name):
            raise ValueError(f"bad extra gauge name {name!r}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(extra_gauges[name])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_textfile(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (tmp + fsync + rename
    in the destination directory, so readers never see a torn file)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".prom-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _parse_value(text: str) -> Optional[float]:
    try:
        return float(text)
    except ValueError:
        return None


def validate_exposition(text: str) -> List[str]:
    """Line-by-line schema check of exposition text; the violations.

    Checks the sample-line grammar, that every value parses as a
    float, that ``# TYPE`` lines are well-formed, and that each
    histogram's ``_bucket`` series is cumulative (non-decreasing, with
    the ``+Inf`` bucket equal to ``_count``).
    """
    problems: List[str] = []
    buckets: Dict[str, List[float]] = {}
    inf_bucket: Dict[str, float] = {}
    counts: Dict[str, float] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or not _NAME_OK.match(parts[2]) \
                        or parts[3] not in ("counter", "gauge",
                                            "histogram", "summary",
                                            "untyped"):
                    problems.append(f"line {i}: malformed TYPE comment")
            elif len(parts) >= 2 and parts[1] == "HELP":
                pass
            else:
                problems.append(f"line {i}: unknown comment form")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {i}: not a valid sample line")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(f"line {i}: non-float value "
                            f"{match.group('value')!r}")
            continue
        name = match.group("name")
        labels = match.group("labels") or ""
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            if le is None:
                problems.append(f"line {i}: _bucket sample without an "
                                f"le label")
            elif le.group(1) == "+Inf":
                inf_bucket[name[:-len("_bucket")]] = value
            else:
                buckets.setdefault(name[:-len("_bucket")], []).append(value)
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = value
    for hist in sorted(set(buckets) | set(inf_bucket)):
        series = buckets.get(hist, [])
        if any(b > a for a, b in zip(series[1:], series)):
            problems.append(f"{hist}: bucket counts are not cumulative")
        total = inf_bucket.get(hist)
        if total is not None:
            if series and series[-1] > total:
                problems.append(f"{hist}: finite buckets exceed +Inf")
            if hist in counts and counts[hist] != total:
                problems.append(f"{hist}: +Inf bucket != _count")
    return problems
