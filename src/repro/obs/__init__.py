"""Unified observability for the checking pipeline and runtime monitor.

Three primitives, bundled by :class:`Telemetry`:

* :mod:`repro.obs.trace` — a span tracer exporting Chrome trace-event
  JSON (``chrome://tracing`` / Perfetto), with one track per process
  so pool workers show up beside the main checker;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms for cache layers, scheduler decisions, worker health and
  diagnostic-code frequencies;
* :mod:`repro.obs.events` — a structured event log (the bus worker
  crashes and runtime key transitions are published on), with an
  optional size-rotated JSONL audit sink (:class:`JsonlEventWriter`).

Two service-grade derivatives feed off the registry for the check
daemon (PR 8): :mod:`repro.obs.timeseries` turns cumulative counters
and histograms into a bounded ring of per-interval rate/quantile
samples, and :mod:`repro.obs.expo` renders snapshots as Prometheus
text exposition (plus the atomic textfile writer behind ``vaultc
serve --prom-file``).  :class:`repro.obs.trace.TraceRing` is the
bounded on-disk ring the daemon's slow-request capture writes
Chrome-trace JSON into.

``Telemetry()`` with no arguments is the **disabled** configuration:
the tracer and metrics are shared null singletons whose operations are
no-ops, so instrumented code costs an attribute check per callsite and
records nothing.  The event log is always live — it only sees rare
events (crashes, leaks), never per-statement traffic.

See ``docs/OBSERVABILITY.md`` for the end-to-end workflow.
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import Event, EventLog, JsonlEventWriter, open_event_log
from .expo import render_exposition, validate_exposition, write_textfile
from .metrics import (LATENCY_BUCKETS, RATIO_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry, NULL_METRICS, NullMetrics,
                      bucket_quantile)
from .timeseries import TimeSeriesRing
from .trace import (NULL_TRACER, NullTracer, TraceRing, Tracer, activate,
                    current_tracer, validate_chrome_trace)


class Telemetry:
    """One session's observability bundle.

    ``trace=True`` records spans; ``metrics=True`` records counters
    and histograms; both default off (the null singletons).  The
    session also parks its compatibility surfaces here: ``profile``
    is the dict behind ``CheckSession.last_profile`` and ``stats`` the
    :class:`~repro.pipeline.session.SessionStats` behind
    ``CheckSession.stats``.
    """

    def __init__(self, trace: bool = False, metrics: bool = False,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None):
        self.tracer = tracer if tracer is not None else (
            Tracer() if trace else NULL_TRACER)
        self.metrics = registry if registry is not None else (
            MetricsRegistry() if metrics else NULL_METRICS)
        self.events = events if events is not None else EventLog()
        #: phase timings / scheduler verdict of the most recent check.
        self.profile: Dict[str, object] = {}
        #: the owning session's SessionStats (set by CheckSession).
        self.stats = None

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def snapshot(self) -> Dict[str, object]:
        """Everything queryable about the session, as plain data."""
        out: Dict[str, object] = {
            "profile": dict(self.profile),
            "metrics": self.metrics.snapshot(),
            "events": [{"kind": e.kind, "message": e.message,
                        "fields": dict(e.fields), "ts": e.ts, "pid": e.pid}
                       for e in self.events.records],
        }
        if self.stats is not None:
            out["stats"] = {
                name: value for name, value in vars(self.stats).items()
                if isinstance(value, (int, float))}
        return out


__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonlEventWriter",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RATIO_BUCKETS",
    "Telemetry",
    "TimeSeriesRing",
    "TraceRing",
    "Tracer",
    "activate",
    "bucket_quantile",
    "current_tracer",
    "open_event_log",
    "render_exposition",
    "validate_chrome_trace",
    "validate_exposition",
    "write_textfile",
]
