"""The tiered, content-addressed shared summary store.

:class:`SharedStore` is the sccache/Bazel move for protocol checking:
function summaries (and whole-unit replay records) are already keyed
by stable content fingerprints, so nothing about them is private to
the session that computed them.  This module shares them across
sessions, processes and machines through a stack of tiers::

    L1  CheckSession._summaries / fn_results   (in-process, private)
    L2  MemoryTier    daemon-wide dict — every warm session in one
                      ``vaultc serve`` process cross-warms the others
    L3  CASTier       crash-safe on-disk object store, sharded by key
                      prefix (repro.cache.cas)
    L4  RemoteTier    a check daemon reached over the frame protocol's
                      ``cache_get``/``cache_put`` ops (repro.cache.remote)

Lookups fall through L2→L4 (L1 lives in the session) and **promote**
hits back into every faster tier; writes go straight through every
tier.  Both sides are *batched*: the session collects all its misses
for one check and issues one ``fetch``, so a remote tier costs one
round trip per check, never one per function.

Two object kinds share the store namespace, distinguished by a key
suffix (the key body is always a 64-hex SHA-256, so the CAS shards
stay uniform):

* ``<digest>-s`` — one function's summary entries, keyed by
  :func:`summary_store_key` (the pipeline's function fingerprint
  salted with the diagnostic-relevant session options);
* ``<digest>-u`` — one unit's complete diagnostic stream, keyed by
  :func:`unit_store_key` over the source bytes, filename and options.
  This is what lets a *second cold session on identical code* run at
  warm speed: it replays the pinned byte stream without parsing.

Every blob travels in a checksummed envelope (:func:`encode_blob`):
a magic line, the hex SHA-256 of the body, then the pickled body —
the summary cache's v3 discipline.  :func:`check_blob` verifies the
envelope *without unpickling*, which is what the daemon does with
client uploads; corruption anywhere becomes a discard/quarantine,
never a wrong replay.

Trust model: the store carries pickles, so every tier is in the same
trust domain as the on-disk summary cache — your own disk, your own
per-user daemon socket.  Hostile peers are out of scope exactly as
they are for ``--cache DIR``.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import Telemetry
from ..pipeline.fingerprint import cache_checksum

#: bump when the envelope or the pickled record shapes change
#: incompatibly; old blobs then simply miss (their keys embed it too).
STORE_SCHEMA = 1

_MAGIC = b"vaultc-blob1\n"
_HEX_LEN = 64

#: keys are "<64 hex>-<kind>"; anything else is rejected before it can
#: reach a file path (the daemon builds CAS paths from client keys).
KEY_KINDS = ("s", "u")


class StoreError(Exception):
    """A blob failed to decode or a tier failed structurally."""


def valid_key(key: object) -> bool:
    """Whether ``key`` is a well-formed store key (and therefore safe
    to use as a CAS file name)."""
    if not isinstance(key, str) or len(key) != _HEX_LEN + 2:
        return False
    body, sep, kind = key[:_HEX_LEN], key[_HEX_LEN], key[_HEX_LEN + 1:]
    if sep != "-" or kind not in KEY_KINDS:
        return False
    return all(c in "0123456789abcdef" for c in body)


def encode_blob(obj: object) -> bytes:
    """Wrap ``obj`` in the checksummed wire/disk envelope."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _MAGIC + cache_checksum(body).encode("ascii") + b"\n" + body


def check_blob(blob: bytes) -> bytes:
    """Verify the envelope and return the body bytes **without
    unpickling** (integrity check safe on untrusted bytes)."""
    if not blob.startswith(_MAGIC):
        raise StoreError("bad blob magic")
    start = len(_MAGIC)
    digest = blob[start:start + _HEX_LEN]
    if blob[start + _HEX_LEN:start + _HEX_LEN + 1] != b"\n":
        raise StoreError("malformed blob envelope")
    body = blob[start + _HEX_LEN + 1:]
    if cache_checksum(body).encode("ascii") != digest:
        raise StoreError("blob checksum mismatch (torn write or bit rot)")
    return body


def decode_blob(blob: bytes) -> object:
    """Verify and unpickle one blob (:class:`StoreError` on anything
    short of a clean round trip)."""
    body = check_blob(blob)
    try:
        return pickle.loads(body)
    except Exception as exc:                         # noqa: BLE001
        raise StoreError(f"blob body failed to unpickle: "
                         f"{type(exc).__name__}: {exc}") from None


# -- keys ---------------------------------------------------------------------

def summary_store_key(fingerprint: str, options_salt: str) -> str:
    """Store key for one function summary.  The pipeline fingerprint
    is content-addressed over the function and its visible
    declarations; the salt adds the session options that change
    diagnostics without changing content (``join_abstraction``,
    ``max_loop_iterations``) plus the schema version."""
    return cache_checksum(
        f"summary\x00{STORE_SCHEMA}\x00{fingerprint}\x00{options_salt}"
        .encode()) + "-s"


def unit_store_key(source: str, filename: str, options_salt: str) -> str:
    """Store key for one unit's complete diagnostic stream."""
    import hashlib
    h = hashlib.sha256()
    h.update(f"unit\x00{STORE_SCHEMA}\x00{filename}\x00{options_salt}\x00"
             .encode("utf-8", "surrogateescape"))
    h.update(source.encode("utf-8", "surrogateescape"))
    return h.hexdigest() + "-u"


def options_salt(stdlib: bool, units: Optional[Sequence[str]],
                 join_abstraction: bool, max_loop_iterations: int) -> str:
    """The diagnostic-relevant session options, rendered stably."""
    units_part = ",".join(units) if units is not None else "<all>"
    return (f"stdlib={stdlib!r};units={units_part};"
            f"join={join_abstraction!r};loops={max_loop_iterations}")


# -- tiers --------------------------------------------------------------------

class Tier:
    """One storage backend.  Tiers move opaque (already enveloped)
    blobs; all decoding, verification and accounting happens in
    :class:`SharedStore`."""

    #: short name used in metrics (``cache.shared.<name>.*``) and docs.
    name = "tier"

    def get_many(self, keys: Sequence[str]) -> Dict[str, bytes]:
        raise NotImplementedError

    def put_many(self, blobs: Dict[str, bytes]) -> None:
        raise NotImplementedError

    def discard(self, key: str) -> None:
        """Drop one (corrupt) object; best-effort."""

    def stats_snapshot(self) -> Dict[str, object]:
        return {}

    def close(self) -> None:
        """Release transport resources (storage itself stays)."""


class MemoryTier(Tier):
    """The daemon-wide shared tier (L2): a bounded LRU blob dict.

    Every :class:`~repro.pipeline.CheckSession` the daemon hosts reads
    and writes this one object, so a summary computed for one editor's
    session replays for the CI session that asks next.  Bounded by
    entry count and total bytes; least-recently-used blobs fall out
    first."""

    name = "memory"

    def __init__(self, max_entries: int = 65536,
                 max_bytes: int = 256 << 20):
        import threading
        from collections import OrderedDict
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0
        self._blobs: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._blobs)

    def get_many(self, keys: Sequence[str]) -> Dict[str, bytes]:
        out: Dict[str, bytes] = {}
        with self._lock:
            for key in keys:
                blob = self._blobs.get(key)
                if blob is not None:
                    self._blobs.move_to_end(key)
                    out[key] = blob
        return out

    def put_many(self, blobs: Dict[str, bytes]) -> None:
        with self._lock:
            for key, blob in blobs.items():
                old = self._blobs.pop(key, None)
                if old is not None:
                    self._bytes -= len(old)
                self._blobs[key] = blob
                self._bytes += len(blob)
            while self._blobs and (len(self._blobs) > self.max_entries
                                   or self._bytes > self.max_bytes):
                _key, old = self._blobs.popitem(last=False)
                self._bytes -= len(old)
                self.evictions += 1

    def discard(self, key: str) -> None:
        with self._lock:
            old = self._blobs.pop(key, None)
            if old is not None:
                self._bytes -= len(old)

    def stats_snapshot(self) -> Dict[str, object]:
        return {"entries": len(self._blobs), "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes, "evictions": self.evictions}


class _TierCounts:
    """Store-side traffic counters for one tier (always on — plain
    ints; the telemetry registry mirrors them when enabled)."""

    __slots__ = ("hits", "misses", "puts", "errors", "corrupt")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0
        self.corrupt = 0

    def snapshot(self) -> Dict[str, int]:
        total = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "errors": self.errors,
                "corrupt": self.corrupt,
                "hit_rate": (self.hits / total) if total else None}


class SharedStore:
    """The tier orchestrator: batched fall-through reads with
    write-back promotion, write-through puts, and per-tier telemetry.

    Construct with the tier stack fastest-first.  All failure modes
    degrade to a cache miss: a tier that raises is counted
    (``cache.shared.<tier>.errors``), reported once on the event bus
    (``shared_cache_error``), and skipped; a blob that fails its
    checksum is discarded from the tier that served it
    (``shared_cache_corrupt``) and treated as absent.
    """

    def __init__(self, tiers: Sequence[Tier],
                 telemetry: Optional[Telemetry] = None):
        self.tiers: Tuple[Tier, ...] = tuple(tiers)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.counts: Dict[str, _TierCounts] = {
            tier.name: _TierCounts() for tier in self.tiers}
        self._reported_errors: Dict[str, int] = {}
        if self.telemetry.metrics.enabled:
            for tier in self.tiers:
                for leaf in ("hits", "misses", "puts", "evictions",
                             "errors", "corrupt"):
                    self.telemetry.metrics.counter(
                        f"cache.shared.{tier.name}.{leaf}")

    # -- raw blob plane (what the daemon's wire ops use) ---------------------

    def get_blobs(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Checked blobs for every key any tier holds; hits from slow
        tiers are promoted into every faster tier."""
        missing: List[str] = list(dict.fromkeys(keys))
        found: Dict[str, bytes] = {}
        metrics = self.telemetry.metrics
        for idx, tier in enumerate(self.tiers):
            if not missing:
                break
            counts = self.counts[tier.name]
            started = time.perf_counter()
            try:
                got = tier.get_many(missing)
            except Exception as exc:                 # noqa: BLE001
                self._tier_error(tier, "get", exc)
                got = {}
            self._observe_latency(tier, time.perf_counter() - started)
            good: Dict[str, bytes] = {}
            for key, blob in got.items():
                try:
                    check_blob(blob)
                except StoreError as exc:
                    self._corrupt(tier, key, exc)
                    continue
                good[key] = blob
            counts.hits += len(good)
            counts.misses += len(missing) - len(good)
            if metrics.enabled:
                metrics.counter(f"cache.shared.{tier.name}.hits").inc(
                    len(good))
                metrics.counter(f"cache.shared.{tier.name}.misses").inc(
                    len(missing) - len(good))
            if good:
                found.update(good)
                missing = [k for k in missing if k not in good]
                for upper in self.tiers[:idx]:
                    try:
                        upper.put_many(good)
                    except Exception as exc:         # noqa: BLE001
                        self._tier_error(upper, "promote", exc)
        return found

    def put_blobs(self, blobs: Dict[str, bytes]) -> int:
        """Write pre-enveloped blobs through every tier; returns the
        number accepted (invalid envelopes are rejected up front)."""
        accepted: Dict[str, bytes] = {}
        for key, blob in blobs.items():
            if not valid_key(key):
                continue
            try:
                check_blob(blob)
            except StoreError:
                continue
            accepted[key] = blob
        if not accepted:
            return 0
        metrics = self.telemetry.metrics
        for tier in self.tiers:
            started = time.perf_counter()
            try:
                tier.put_many(accepted)
            except Exception as exc:                 # noqa: BLE001
                self._tier_error(tier, "put", exc)
                continue
            self._observe_latency(tier, time.perf_counter() - started)
            self.counts[tier.name].puts += len(accepted)
            if metrics.enabled:
                metrics.counter(f"cache.shared.{tier.name}.puts").inc(
                    len(accepted))
        return len(accepted)

    # -- object plane (what sessions use) ------------------------------------

    def fetch(self, keys: Iterable[str]) -> Dict[str, object]:
        """Decoded objects for every key the store can serve."""
        out: Dict[str, object] = {}
        for key, blob in self.get_blobs(keys).items():
            try:
                out[key] = decode_blob(blob)
            except StoreError as exc:
                # Envelope verified but the body would not unpickle
                # (schema skew): drop it everywhere it may live.
                for tier in self.tiers:
                    self._corrupt(tier, key, exc, quiet=True)
        return out

    def store(self, objects: Dict[str, object]) -> int:
        return self.put_blobs({key: encode_blob(obj)
                               for key, obj in objects.items()})

    # -- maintenance ---------------------------------------------------------

    def gc(self) -> Dict[str, object]:
        """Run every tier's collector (currently only the CAS tier has
        one); returns per-tier reports."""
        out: Dict[str, object] = {}
        for tier in self.tiers:
            collect = getattr(tier, "gc", None)
            if collect is not None:
                out[tier.name] = collect(force=True)
        return out

    def stats_snapshot(self) -> Dict[str, object]:
        """Per-tier traffic and occupancy, fastest tier first (the
        daemon ``stats`` op and ``vaultc cache stats`` surface)."""
        tiers = []
        for tier in self.tiers:
            snap = self.counts[tier.name].snapshot()
            snap["tier"] = tier.name
            snap.update(tier.stats_snapshot())
            tiers.append(snap)
        return {"schema": STORE_SCHEMA, "tiers": tiers}

    def close(self) -> None:
        for tier in self.tiers:
            try:
                tier.close()
            except Exception:                        # noqa: BLE001
                pass

    # -- internals -----------------------------------------------------------

    def _observe_latency(self, tier: Tier, seconds: float) -> None:
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.histogram(
                f"cache.shared.{tier.name}.latency").observe(seconds)

    def _tier_error(self, tier: Tier, op: str, exc: BaseException) -> None:
        counts = self.counts[tier.name]
        counts.errors += 1
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter(
                f"cache.shared.{tier.name}.errors").inc()
        # Report the first few failures per tier, then go quiet — a
        # dead remote tier must not flood the event log per check.
        reported = self._reported_errors.get(tier.name, 0)
        if reported < 3:
            self._reported_errors[tier.name] = reported + 1
            self.telemetry.events.emit(
                "shared_cache_error",
                f"shared-cache tier '{tier.name}' failed during "
                f"{op}: {exc}",
                tier=tier.name, op=op,
                error=f"{type(exc).__name__}: {exc}")

    def _corrupt(self, tier: Tier, key: str, exc: BaseException,
                 quiet: bool = False) -> None:
        self.counts[tier.name].corrupt += 1
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter(
                f"cache.shared.{tier.name}.corrupt").inc()
        try:
            tier.discard(key)
        except Exception:                            # noqa: BLE001
            pass
        if not quiet:
            self.telemetry.events.emit(
                "shared_cache_corrupt",
                f"shared-cache tier '{tier.name}' served a corrupt "
                f"blob for {key[:16]}…; discarded",
                tier=tier.name, key=key,
                error=f"{type(exc).__name__}: {exc}")
