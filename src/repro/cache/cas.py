"""The on-disk content-addressed store tier (L3).

Layout: ``<root>/<key[:2]>/<key>`` — one file per blob, sharded by the
first two hex digits of the key so no directory grows past ~1/256 of
the store.  Writes follow the summary cache's v3 crash-safety
discipline: a unique temp file (``.tmp.<pid>.<seq>``), ``fsync``, then
an atomic ``os.replace`` — a concurrent writer or a crash mid-write
can never leave a torn object under a final name, and the envelope
checksum (:func:`repro.cache.store.check_blob`) catches anything the
filesystem does behind our back.

Concurrency model: many processes share one store directory with no
locks.  Puts are last-write-wins (both writers hold byte-identical
content for the same key, so the race is harmless); GC may delete an
object another process is about to read, which that process observes
as an ordinary miss.

Eviction: the tier tracks an approximate byte total (one full scan at
first use, then incremental accounting of its own writes).  When the
estimate passes ``max_bytes``, a collection rescans and deletes
oldest-first (by mtime — reads freshen mtime, making this LRU) down to
``GC_TARGET_RATIO`` of the budget, so collections amortize instead of
thrashing at the boundary.

Corrupt objects are moved to ``<root>/corrupt/`` with a unique suffix
(bounded retention, newest :data:`CORRUPT_KEEP` kept) — same
post-mortem discipline as the session's ``summaries.pkl`` quarantine.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .store import Tier, valid_key

#: default size budget for one store directory.
DEFAULT_MAX_BYTES = 512 << 20

#: a collection shrinks the store to this fraction of ``max_bytes``.
GC_TARGET_RATIO = 0.8

#: quarantined corrupt blobs kept for post-mortems (newest first).
CORRUPT_KEEP = 8

_SHARD_LEN = 2


class CASTier(Tier):
    """A crash-safe, size-bounded CAS directory shared by any number
    of processes."""

    name = "cas"

    def __init__(self, root: str, max_bytes: int = DEFAULT_MAX_BYTES,
                 fsync: bool = True, fault_plan=None):
        self.root = root
        self.max_bytes = max_bytes
        self.fsync = fsync
        self.evictions = 0
        self.quarantines = 0
        self.io_errors = 0
        self._seq = 0
        #: chaos harness (tests only): a :class:`~repro.pipeline.faults.
        #: FaultPlan` whose ``enospc`` budget makes object writes fail
        #: as a full disk would — the store must degrade to misses.
        self.fault_plan = fault_plan
        #: approximate store size; ``None`` until the first full scan.
        self._bytes: Optional[int] = None

    # -- paths ----------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:_SHARD_LEN], key)

    # -- tier interface -------------------------------------------------------

    def get_many(self, keys: Sequence[str]) -> Dict[str, bytes]:
        out: Dict[str, bytes] = {}
        now = time.time()
        for key in keys:
            if not valid_key(key):
                continue
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    out[key] = handle.read()
            except FileNotFoundError:
                continue
            except OSError:
                self.io_errors += 1
                continue
            try:
                # Freshen mtime so the GC's oldest-first order is LRU,
                # not FIFO.  Best-effort: a read-only store still reads.
                os.utime(path, (now, now))
            except OSError:
                pass
        return out

    def put_many(self, blobs: Dict[str, bytes]) -> None:
        self._ensure_scanned()
        os.makedirs(self.root, exist_ok=True)
        written = 0
        for key, blob in blobs.items():
            if not valid_key(key):
                continue
            shard = os.path.join(self.root, key[:_SHARD_LEN])
            path = os.path.join(shard, key)
            self._seq += 1
            tmp = f"{path}.tmp.{os.getpid()}.{self._seq}"
            try:
                if self.fault_plan is not None \
                        and self.fault_plan.take_enospc():
                    import errno
                    raise OSError(errno.ENOSPC,
                                  "injected ENOSPC (chaos harness)")
                os.makedirs(shard, exist_ok=True)
                with open(tmp, "wb") as handle:
                    handle.write(blob)
                    if self.fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
                os.replace(tmp, path)
            except OSError:
                self.io_errors += 1
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                continue
            written += len(blob)
        if self._bytes is not None:
            self._bytes += written
            if self._bytes > self.max_bytes:
                self.gc()

    def discard(self, key: str) -> None:
        """Quarantine one (corrupt) object out of the store."""
        if not valid_key(key):
            return
        path = self._path(key)
        qdir = os.path.join(self.root, "corrupt")
        self._seq += 1
        target = os.path.join(qdir,
                              f"{key}.corrupt.{os.getpid()}.{self._seq}")
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, target)
            self.quarantines += 1
        except OSError:
            # Fall back to plain deletion; the goal is that the bad
            # blob never gets served again.
            try:
                os.unlink(path)
                self.quarantines += 1
            except OSError:
                pass
            return
        _prune_quarantine(qdir, CORRUPT_KEEP)

    # -- size accounting and GC ----------------------------------------------

    def _ensure_scanned(self) -> None:
        if self._bytes is None:
            self._bytes = sum(size for _p, _m, size in self._objects())

    def _objects(self) -> List[Tuple[str, float, int]]:
        """Every stored object as ``(path, mtime, size)``."""
        out: List[Tuple[str, float, int]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return out
        for shard in shards:
            if len(shard) != _SHARD_LEN:
                continue                  # corrupt/, stray files
            shard_path = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_path)
            except OSError:
                continue
            for name in names:
                if not valid_key(name):
                    continue              # temp files, junk
                path = os.path.join(shard_path, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                out.append((path, st.st_mtime, st.st_size))
        return out

    def gc(self, force: bool = False,
           max_bytes: Optional[int] = None) -> Dict[str, object]:
        """Collect down to ``GC_TARGET_RATIO`` of the byte budget,
        deleting least-recently-used objects first.  ``force`` runs
        even when the estimate is under budget (the CLI's ``cache gc``)
        and also sweeps leftover temp files from crashed writers."""
        budget = self.max_bytes if max_bytes is None else max_bytes
        objects = self._objects()
        total = sum(size for _p, _m, size in objects)
        deleted = 0
        freed = 0
        if force:
            freed += self._sweep_tmp()
        if total > budget * GC_TARGET_RATIO and (force or
                                                 total > budget):
            target = int(budget * GC_TARGET_RATIO)
            for path, _mtime, size in sorted(objects, key=lambda o: o[1]):
                if total <= target:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                freed += size
                deleted += 1
                self.evictions += 1
        self._bytes = total
        return {"scanned": len(objects), "deleted": deleted,
                "bytes_freed": freed, "bytes_remaining": total,
                "max_bytes": budget}

    def _sweep_tmp(self) -> int:
        """Remove temp files older than an hour (crashed writers)."""
        freed = 0
        cutoff = time.time() - 3600.0
        try:
            shards = os.listdir(self.root)
        except OSError:
            return 0
        for shard in shards:
            if len(shard) != _SHARD_LEN:
                continue
            shard_path = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_path)
            except OSError:
                continue
            for name in names:
                if ".tmp." not in name:
                    continue
                path = os.path.join(shard_path, name)
                try:
                    st = os.stat(path)
                    if st.st_mtime < cutoff:
                        os.unlink(path)
                        freed += st.st_size
                except OSError:
                    continue
        return freed

    def stats_snapshot(self) -> Dict[str, object]:
        self._ensure_scanned()
        return {"root": self.root, "bytes": self._bytes,
                "max_bytes": self.max_bytes, "evictions": self.evictions,
                "quarantines": self.quarantines,
                "io_errors": self.io_errors}


def _prune_quarantine(qdir: str, keep: int) -> None:
    """Bound the corrupt/ directory to the ``keep`` newest files."""
    try:
        names = os.listdir(qdir)
    except OSError:
        return
    stamped: List[Tuple[float, str]] = []
    for name in names:
        path = os.path.join(qdir, name)
        try:
            stamped.append((os.stat(path).st_mtime, path))
        except OSError:
            continue
    stamped.sort(reverse=True)
    for _mtime, path in stamped[keep:]:
        try:
            os.unlink(path)
        except OSError:
            pass
