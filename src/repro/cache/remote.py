"""The remote store tier (L4): a check daemon as a cache server.

Blobs travel over the existing length-prefixed frame protocol
(:mod:`repro.server.protocol`) as two new ops::

    {"op": "cache_get", "keys": [...]}          -> {"ok": true, "blobs": {...}}
    {"op": "cache_put", "blobs": {key: b64}}    -> {"ok": true, "stored": N}

Blob bytes are base64 inside the JSON payload — the protocol stays
one-object-per-frame JSON, and the daemon verifies each envelope's
checksum **without unpickling** before storing (the same reason the
frame protocol itself is JSON: a hostile peer can at worst store junk
that fails its checksum on the way out, never execute anything).

Failure containment: the tier holds one lazily-opened connection.  Any
transport error closes it, surfaces one :class:`StoreError` to the
orchestrator (which counts and reports it), and opens a backoff window
(:data:`RETRY_SECONDS`) during which every call is a silent miss — a
dead daemon costs one failed round trip, not one per check.

Batching discipline: the session batches all of a check's misses into
one ``fetch``, so this tier sees one ``cache_get`` and at most one
``cache_put`` per checked unit.  Replies are bounded by the frame
limit; keys the daemon had to drop to fit are ordinary misses.
"""

from __future__ import annotations

import base64
import time
from typing import Dict, Optional, Sequence

from .store import StoreError, Tier

#: seconds of silent misses after a transport failure before the tier
#: tries the daemon again.
RETRY_SECONDS = 30.0


class RemoteTier(Tier):
    """A daemon socket as a blob store."""

    name = "remote"

    def __init__(self, socket_path: Optional[str] = "auto",
                 retry_seconds: float = RETRY_SECONDS):
        self.socket_path = socket_path or "auto"
        self.retry_seconds = retry_seconds
        self._client = None
        self._retry_at = 0.0
        #: breaker bookkeeping, surfaced by :meth:`stats_snapshot` (and
        #: from there the ``telemetry`` op and ``vaultc cache stats``)
        #: so an open breaker reads as "backing off", not silent misses.
        self.failures = 0
        self.last_error: Optional[str] = None

    # -- connection management ------------------------------------------------

    def _connect(self):
        if self._client is not None:
            return self._client
        from ..server.client import DaemonClient, DaemonUnavailable
        try:
            self._client = DaemonClient(self.socket_path)
        except DaemonUnavailable as exc:
            self._fail(str(exc))
            raise StoreError(str(exc)) from None
        return self._client

    def _fail(self, error: Optional[str] = None) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
        self.failures += 1
        if error is not None:
            self.last_error = error
        self._retry_at = time.monotonic() + self.retry_seconds

    def _request(self, payload: dict) -> dict:
        from ..server.client import DaemonUnavailable
        client = self._connect()
        try:
            reply = client.request(payload)
        except DaemonUnavailable as exc:
            self._fail(str(exc))
            raise StoreError(str(exc)) from None
        if not reply.get("ok"):
            # The daemon answered but refused (old daemon without the
            # cache ops, bad request): treat as a dead tier and back
            # off the same way.
            message = (f"daemon rejected {payload.get('op')}: "
                       f"{reply.get('error', 'unknown error')}")
            self._fail(message)
            raise StoreError(message)
        return reply

    @property
    def broken(self) -> bool:
        return time.monotonic() < self._retry_at

    # -- tier interface -------------------------------------------------------

    def get_many(self, keys: Sequence[str]) -> Dict[str, bytes]:
        if self.broken or not keys:
            return {}
        reply = self._request({"op": "cache_get", "keys": list(keys)})
        blobs = reply.get("blobs")
        if not isinstance(blobs, dict):
            return {}
        out: Dict[str, bytes] = {}
        for key, encoded in blobs.items():
            try:
                out[key] = base64.b64decode(encoded, validate=True)
            except (TypeError, ValueError):
                continue             # orchestrator treats as a miss
        return out

    def put_many(self, blobs: Dict[str, bytes]) -> None:
        if self.broken or not blobs:
            return
        encoded = {key: base64.b64encode(blob).decode("ascii")
                   for key, blob in blobs.items()}
        self._request({"op": "cache_put", "blobs": encoded})

    def stats_snapshot(self) -> Dict[str, object]:
        """Connection and breaker state.  ``breaker_open`` with a
        positive ``retry_in_seconds`` means every lookup is currently a
        silent L4 miss; ``failures``/``last_error`` say why."""
        retry_in = max(0.0, self._retry_at - time.monotonic())
        return {"socket": self.socket_path,
                "connected": self._client is not None,
                "backing_off": self.broken,
                "breaker_open": self.broken,
                "retry_in_seconds": round(retry_in, 3),
                "retry_seconds": self.retry_seconds,
                "failures": self.failures,
                "last_error": self.last_error}

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
