"""Tiered, content-addressed sharing of check results across sessions.

See :mod:`repro.cache.store` for the architecture.  The package's
public surface:

* :class:`SharedStore` — the tier orchestrator a
  :class:`~repro.pipeline.CheckSession` plugs in via ``shared_store=``;
* :class:`MemoryTier` / :class:`CASTier` / :class:`RemoteTier` — the
  L2/L3/L4 backends;
* :func:`open_store` — build a store from a CLI/daemon spec string
  (``DIR`` for an on-disk CAS, ``daemon`` or ``daemon:SOCKET`` for a
  remote daemon tier);
* key/envelope helpers for the daemon's wire ops and tests.
"""

from __future__ import annotations

from typing import Optional

from ..obs import Telemetry
from .cas import CASTier, DEFAULT_MAX_BYTES
from .remote import RemoteTier
from .store import (KEY_KINDS, MemoryTier, STORE_SCHEMA, SharedStore,
                    StoreError, Tier, check_blob, decode_blob, encode_blob,
                    options_salt, summary_store_key, unit_store_key,
                    valid_key)


def is_remote_spec(spec: Optional[str]) -> bool:
    """Whether a ``--shared-cache`` spec names a daemon, not a dir."""
    return bool(spec) and (spec == "daemon" or spec.startswith("daemon:"))


def open_store(spec: Optional[str],
               telemetry: Optional[Telemetry] = None,
               memory_tier: Optional[MemoryTier] = None,
               max_bytes: int = DEFAULT_MAX_BYTES) -> SharedStore:
    """A :class:`SharedStore` for a CLI spec string.

    ``spec`` is a directory path (CAS tier), ``daemon``/``daemon:SOCK``
    (remote tier through a check daemon), or ``None``/empty (no backing
    tier).  ``memory_tier`` prepends a shared in-memory tier — the
    daemon passes its process-wide one here.
    """
    tiers = []
    if memory_tier is not None:
        tiers.append(memory_tier)
    if is_remote_spec(spec):
        sock = spec.partition(":")[2] or "auto"
        tiers.append(RemoteTier(sock))
    elif spec:
        tiers.append(CASTier(spec, max_bytes=max_bytes))
    return SharedStore(tiers, telemetry)


__all__ = [
    "CASTier",
    "DEFAULT_MAX_BYTES",
    "KEY_KINDS",
    "MemoryTier",
    "RemoteTier",
    "STORE_SCHEMA",
    "SharedStore",
    "StoreError",
    "Tier",
    "check_blob",
    "decode_blob",
    "encode_blob",
    "is_remote_spec",
    "open_store",
    "options_salt",
    "summary_store_key",
    "unit_store_key",
    "valid_key",
]
