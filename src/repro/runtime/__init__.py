"""Execution of Vault programs: interpreter, values, dynamic monitoring."""

from .interp import HostEnv, InterpError, Interpreter
from .monitor import KeyMonitor, MonitoredInterpreter, make_monitored
from .values import (NULL_VALUE, VOID_VALUE, VArray, VClosure, VHandle,
                     VNull, VStruct, VVariant, VVoid, truthy)

__all__ = [
    "HostEnv", "InterpError", "Interpreter", "KeyMonitor",
    "MonitoredInterpreter", "NULL_VALUE", "VOID_VALUE", "VArray",
    "VClosure", "VHandle", "VNull", "VStruct", "VVariant", "VVoid",
    "make_monitored", "truthy",
]
