"""A dynamic key monitor — run-time enforcement of Vault's protocols.

The paper argues for *static* enforcement; the natural alternative a
practitioner would reach for is to enforce the same rules dynamically
(reference monitors, debug builds, typestate assertions).  This module
implements that alternative faithfully so the trade-off is measurable:

* every tracked resource created at run time gets a **runtime key**
  with a current state;
* every call to a function with an effect clause checks the clause's
  precondition against the live key table and applies its transitions
  (consume / produce / fresh / state changes), exactly mirroring the
  static checker's transfer function — but only on the executed path;
* :meth:`KeyMonitor.audit` reports keys still held (leaks) at the end
  of a run.

Violations raise :class:`~repro.diagnostics.RuntimeProtocolError` with
the corresponding ``RT_*`` code.  Compared to the static checker the
monitor is *late* (the fault must execute) and *costly* (every call
pays bookkeeping) — the two costs the paper's approach eliminates.

The monitor publishes its lifecycle on an :class:`~repro.obs.EventLog`
(``key_mint`` / ``key_transition`` / ``key_consume`` / ``key_leak``);
pass the same bus a :class:`~repro.pipeline.CheckSession`'s telemetry
uses and the static checker's operational record and the dynamic
monitor's protocol record land in one queryable stream.  Each key
remembers the Vault function executing when it was minted, so a leak
report names the function that created the leaked resource.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core import (AnyState, AtMostState, CoreEffect, ExactState,
                    ProgramContext, Signature, StateReq, CPacked, CTracked,
                    strip_guards)
from ..core.keys import DEFAULT_STATE
from ..diagnostics import Code, RuntimeProtocolError
from ..obs import EventLog
from .interp import Interpreter
from .values import VHandle, VStruct

_rt_key_ids = itertools.count(1)


@dataclass
class RuntimeKey:
    """One live resource's run-time key."""

    id: int
    label: str
    state: str
    #: the Vault function executing when the key was minted (leak
    #: reports attribute the leaked resource to its creator).
    origin: Optional[str] = None

    def __repr__(self) -> str:
        return f"rtkey{self.id}:{self.label}@{self.state}"

    def describe(self) -> str:
        if self.origin:
            return f"{self!r} (created in {self.origin})"
        return repr(self)


class KeyMonitor:
    """The run-time held-key table."""

    def __init__(self, statespace,
                 events: Optional[EventLog] = None) -> None:
        self.statespace = statespace
        self.held: Dict[int, RuntimeKey] = {}
        #: id(resource) -> RuntimeKey (alive or not)
        self._by_resource: Dict[int, RuntimeKey] = {}
        self.violations: List[str] = []
        self.checks = 0
        #: the shared observability bus key lifecycle events go to.
        self.events = events if events is not None else EventLog()
        #: stack of Vault function names currently executing (the
        #: monitored interpreter pushes/pops around defined calls).
        self._fn_stack: List[str] = []
        #: keys consumed by a call but carried inside its keyed-variant
        #: result (``'Next {I@avail}``): id(variant value) -> (value,
        #: [RuntimeKey, ...]).  The value itself is kept as a strong
        #: reference so the id cannot be recycled before the switch.
        self._captured: Dict[int, Tuple[Any, List[RuntimeKey]]] = {}

    # -- execution context --------------------------------------------------

    @property
    def current_function(self) -> Optional[str]:
        return self._fn_stack[-1] if self._fn_stack else None

    def enter_function(self, name: str) -> None:
        self._fn_stack.append(name)

    def exit_function(self) -> None:
        if self._fn_stack:
            self._fn_stack.pop()

    # -- key lifecycle ------------------------------------------------------

    def mint(self, resource: Any, label: str,
             state: str = DEFAULT_STATE) -> RuntimeKey:
        key = RuntimeKey(next(_rt_key_ids), label, state,
                         origin=self.current_function)
        self.held[key.id] = key
        self._by_resource[id(resource)] = key
        self.events.emit("key_mint", f"minted {key!r}", key_id=key.id,
                         label=label, state=state, origin=key.origin)
        return key

    def key_of(self, resource: Any) -> Optional[RuntimeKey]:
        return self._by_resource.get(id(resource))

    def _fail(self, code: Code, message: str) -> None:
        self.violations.append(message)
        raise RuntimeProtocolError(code, message)

    def require(self, resource: Any, req: StateReq, what: str) -> RuntimeKey:
        self.checks += 1
        key = self.key_of(resource)
        if key is None:
            self._fail(Code.RT_PROTOCOL,
                       f"{what}: value has no runtime key (not a tracked "
                       f"resource)")
        if key.id not in self.held:
            self._fail(Code.RT_DANGLING,
                       f"{what}: key {key!r} is not held (released or "
                       f"transferred)")
        if not self._satisfies(key.state, req):
            self._fail(Code.RT_PROTOCOL,
                       f"{what}: key {key!r} does not satisfy {req!r}")
        return key

    def _satisfies(self, state: str, req: StateReq) -> bool:
        if isinstance(req, AnyState):
            return True
        if isinstance(req, ExactState):
            want = req.state
            if not isinstance(want, str):
                return True   # symbolic: dynamically unconstrained
            return state == want
        if isinstance(req, AtMostState):
            return self.statespace.leq(state, req.bound)
        return True

    def consume(self, key: RuntimeKey, what: str) -> None:
        if key.id not in self.held:
            self._fail(Code.RT_DOUBLE_FREE,
                       f"{what}: key {key!r} consumed twice")
        del self.held[key.id]
        self.events.emit("key_consume", f"{what} consumed {key!r}",
                         key_id=key.id, label=key.label, by=what,
                         origin=key.origin)

    def produce(self, resource: Any, label: str, state: str,
                what: str) -> None:
        self.checks += 1
        key = self.key_of(resource)
        if key is None:
            key = self.mint(resource, label, state)
            return
        if key.id in self.held:
            self._fail(Code.RT_PROTOCOL,
                       f"{what}: key {key!r} produced while already held "
                       f"(double acquire)")
        previous = key.state
        key.state = state
        self.held[key.id] = key
        self.events.emit("key_transition",
                         f"{what} re-produced {key!r}",
                         key_id=key.id, label=key.label,
                         from_state=previous, to_state=state, by=what,
                         origin=key.origin)

    def capture(self, value: Any, key: RuntimeKey) -> None:
        """Record that ``key`` (already consumed from the held table)
        travels inside the keyed-variant ``value``; matching the value
        in a ``switch`` restores it (:meth:`take_captured`)."""
        self._captured.setdefault(id(value), (value, []))[1].append(key)

    def take_captured(self, value: Any) -> List[RuntimeKey]:
        """Pop (and return) the keys captured inside ``value``."""
        entry = self._captured.pop(id(value), None)
        return entry[1] if entry is not None else []

    def restore(self, key: RuntimeKey, state: Optional[str],
                what: str) -> None:
        """Re-admit a captured key to the held table — the dynamic
        analogue of the checker's switch rule (§3.3): matching a
        key-capturing constructor restores the key at the state the
        constructor declares (``None`` keeps its prior state, the
        any-state capture ``{K}``)."""
        if key.id in self.held:
            self._fail(Code.RT_PROTOCOL,
                       f"{what}: key {key!r} restored while already held")
        previous = key.state
        if state is not None:
            key.state = state
        self.held[key.id] = key
        self.events.emit("key_transition",
                         f"{what} restored {key!r}",
                         key_id=key.id, label=key.label,
                         from_state=previous, to_state=key.state, by=what,
                         origin=key.origin)

    def set_state(self, key: RuntimeKey, state: str) -> None:
        if state != key.state:
            self.events.emit("key_transition",
                             f"{key.label} {key.state} -> {state}",
                             key_id=key.id, label=key.label,
                             from_state=key.state, to_state=state,
                             origin=key.origin)
        key.state = state

    # -- audits ---------------------------------------------------------------

    def audit(self) -> List[str]:
        """Keys still held — each with the function that created it;
        every call publishes one ``key_leak`` event per leaked key."""
        leaked = list(self.held.values())
        for key in leaked:
            self.events.emit("key_leak", f"leaked {key.describe()}",
                             key_id=key.id, label=key.label,
                             state=key.state, origin=key.origin)
        return [key.describe() for key in leaked]

    def assert_no_leaks(self) -> None:
        leaked = self.audit()
        if leaked:
            raise RuntimeProtocolError(
                Code.RT_LEAK,
                "runtime keys still held at end of run: "
                + ", ".join(leaked))


def _static_state(req: Optional[StateReq]) -> str:
    if isinstance(req, ExactState) and isinstance(req.state, str):
        return req.state
    return DEFAULT_STATE


class MonitoredInterpreter(Interpreter):
    """An interpreter that enforces effect clauses dynamically.

    Uses the program's elaborated signatures (the same ones the static
    checker consumes) as run-time contracts: before each call the
    effect's preconditions are checked against the key table, after it
    the transitions are applied.
    """

    def __init__(self, ctx: ProgramContext, host=None,
                 events: Optional[EventLog] = None, **kwargs):
        super().__init__(ctx, host, **kwargs)
        self.monitor = KeyMonitor(ctx.statespace, events=events)

    def _call_def(self, fundef, args, captured):
        # Track which Vault function is executing so minted keys can
        # name their creator (leak attribution).
        self.monitor.enter_function(fundef.decl.name)
        try:
            return super()._call_def(fundef, args, captured)
        finally:
            self.monitor.exit_function()

    # The interpreter resolves calls in several places; the narrow
    # waist is host/extern dispatch plus defined-function calls, both
    # of which funnel through _eval_call and call().

    def _signature_for(self, name: str,
                       module: Optional[str] = None) -> Optional[Signature]:
        return self.ctx.function(name, module)

    def _eval_call(self, expr, env):
        from ..syntax import ast
        sig = None
        fn = expr.fn
        if isinstance(fn, ast.Name) and fn.ident not in env:
            sig = self._signature_for(fn.ident)
        elif isinstance(fn, ast.FieldAccess) and \
                isinstance(fn.obj, ast.Name) and fn.obj.ident not in env:
            sig = self._signature_for(fn.field, fn.obj.ident)
        if sig is None or not sig.effect.items:
            result = super()._eval_call(expr, env)
            self._maybe_mint_tracked(sig, result)
            return result

        args = [self._eval(a, env) for a in expr.args]
        keys = self._resolve_effect_keys(sig, args)

        # Preconditions.
        for item, resource in keys:
            if item.mode in ("keep", "consume"):
                key = self.monitor.require(resource, item.pre,
                                           sig.qualified_name)
        # Execute.
        result = self._dispatch_call(expr, args, env)
        if self._is_defined(expr.fn):
            # A Vault-defined callee's *body* just ran under the
            # monitor, performing every consume/produce/transition its
            # effect clause declares; applying the clause again here
            # would double-account (a body's ``fclose`` would read as
            # consuming the key twice).  The clause is still enforced:
            # preconditions above, and the static checker guarantees
            # the body realises the declared postcondition.
            return result
        # Postconditions / transitions.
        from .values import VVariant
        for item, resource in keys:
            key = self.monitor.key_of(resource)
            if item.mode == "consume" and key is not None:
                self.monitor.consume(key, sig.qualified_name)
                # A consumed key may travel on inside a keyed-variant
                # result (``tracked status<S> bind_checked(...)
                # [-S@raw]``): matching the result restores it.
                if isinstance(result, VVariant) and \
                        self._variant_captures(result.ctor):
                    self.monitor.capture(result, key)
            elif item.mode == "produce":
                self.monitor.produce(resource, sig.name,
                                     _static_state(item.post),
                                     sig.qualified_name)
            elif item.mode == "keep" and item.post is not None and \
                    key is not None:
                self.monitor.set_state(key, _static_state(item.post))
        self._maybe_mint_tracked(sig, result)
        return result

    def _is_defined(self, fn) -> bool:
        """Is the callee a Vault-defined function (its body runs under
        this monitor), as opposed to a host/extern primitive?"""
        from ..syntax import ast
        if isinstance(fn, ast.Name):
            return fn.ident in self.ctx.fun_defs
        if isinstance(fn, ast.FieldAccess) and isinstance(fn.obj, ast.Name):
            return f"{fn.obj.ident}.{fn.field}" in self.ctx.fun_defs
        return False

    def _variant_captures(self, ctor_name: str) -> bool:
        vname = self.ctx.ctor_index.get(ctor_name)
        vinfo = self.ctx.variants.get(vname) if vname else None
        return vinfo is not None and \
            any(c.key_attach for c in vinfo.ctors)

    def _on_switch_value(self, value) -> None:
        """Matching a key-capturing constructor restores the captured
        keys at the states the constructor declares (§3.3)."""
        pending = self.monitor.take_captured(value)
        if not pending:
            return
        vname = self.ctx.ctor_index.get(value.ctor)
        vinfo = self.ctx.variants.get(vname) if vname else None
        cinfo = vinfo.ctor(value.ctor) if vinfo is not None else None
        if cinfo is None or not cinfo.key_attach:
            # The matched constructor does not carry the key on: it
            # stays consumed on this path (mirrors the checker).
            return
        for key, (_kname, req) in zip(pending, cinfo.key_attach):
            state = req.state if isinstance(req, ExactState) and \
                isinstance(req.state, str) else None
            self.monitor.restore(key, state, f"switch '{value.ctor}")

    def _dispatch_call(self, expr, args, env):
        from ..syntax import ast
        fn = expr.fn
        if isinstance(fn, ast.Name):
            fundef = self.ctx.fun_defs.get(fn.ident)
            if fundef is not None:
                return self._call_def(fundef, args, captured={})
            host_fn = self.host.lookup(fn.ident)
            if host_fn is not None:
                return host_fn(self, *args)
        if isinstance(fn, ast.FieldAccess) and isinstance(fn.obj, ast.Name):
            qual = f"{fn.obj.ident}.{fn.field}"
            fundef = self.ctx.fun_defs.get(qual)
            if fundef is not None:
                return self._call_def(fundef, args, captured={})
            host_fn = self.host.lookup(qual)
            if host_fn is not None:
                return host_fn(self, *args)
        callee = self._eval(fn, env)
        return self.call_value(callee, args)

    def _resolve_effect_keys(self, sig: Signature, args
                             ) -> List[Tuple[Any, Any]]:
        """Pair each effect item with the argument resource whose
        tracked parameter binds the item's key variable."""
        by_var: Dict[str, Any] = {}
        for param, value in zip(sig.params, args):
            ptype = strip_guards(param.type)
            if isinstance(ptype, CTracked) and \
                    not isinstance(ptype.key, str):
                name = getattr(ptype.key, "name", None)
                if name is not None and name not in by_var:
                    by_var[name] = value
            # Key arguments of named types (KEVENT<K>, KSPIN_LOCK<K>):
            # the handle itself stands for the key's resource.
            from ..core import CNamed
            if isinstance(ptype, CNamed):
                for arg in ptype.args:
                    if arg.kind == "key":
                        name = getattr(arg.key, "name", None)
                        if name is not None and name not in by_var:
                            by_var[name] = value
        pairs = []
        for item in sig.effect.items:
            key_name = item.key if isinstance(item.key, str) else None
            if key_name is None:
                continue
            if key_name in by_var:
                pairs.append((item, by_var[key_name]))
            # Global keys and fresh keys are handled elsewhere / minted
            # on result values.
        return pairs

    def _maybe_mint_tracked(self, sig: Optional[Signature],
                            result: Any) -> None:
        if sig is None:
            return
        ret = strip_guards(sig.ret)
        fresh = any(item.mode == "fresh" for item in sig.effect.items)
        if isinstance(ret, (CTracked, CPacked)) and \
                (fresh or isinstance(ret, CPacked)):
            if isinstance(result, (VHandle, VStruct)):
                state = DEFAULT_STATE
                if isinstance(ret, CPacked):
                    # Anonymous tracked results carry their initial
                    # state in the type (``tracked(@raw) sock``,
                    # ``tracked(@active) txn``).
                    state = _static_state(ret.state)
                for item in sig.effect.items:
                    if item.mode == "fresh":
                        state = _static_state(item.post)
                self.monitor.mint(result, sig.name, state)

    def _eval_new(self, expr, env):
        result = super()._eval_new(expr, env)
        if expr.tracked:
            self.monitor.mint(result, expr.type.name)
        return result

    def _free(self, value, span):
        key = self.monitor.key_of(value)
        if key is not None:
            self.monitor.consume(key, "free")
        super()._free(value, span)


def make_monitored(ctx: ProgramContext, host=None,
                   events: Optional[EventLog] = None
                   ) -> MonitoredInterpreter:
    """A monitored interpreter wired to a (fresh) host; ``events``
    lets the caller share one observability bus (e.g. a check
    session's) between the static and dynamic sides."""
    from ..stdlib.hostimpl import create_host
    host = host or create_host()
    interp = MonitoredInterpreter(ctx, host.env, events=events)
    interp.vault_host = host
    return interp
