"""A tree-walking interpreter for Vault programs.

Runs programs *after* (or without) static checking; keys and guards are
erased, matching the paper's compilation model.  Extern functions and
extern-module members dispatch to host implementations registered in a
:class:`HostEnv` (see :mod:`repro.stdlib.hostimpl`), which back the
paper's substrates: the region allocator (§2.2), the socket simulator
(§2.3) and the Windows 2000 kernel simulator (§4).

Because the substrates enforce their own protocols at run time (a real
OS crashes or deadlocks on misuse; our simulators raise
:class:`~repro.diagnostics.RuntimeProtocolError` deterministically),
running an *unchecked* program under this interpreter is exactly the
"testing" baseline the paper contrasts with static checking: a
violation is only observed if the faulty path actually executes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..diagnostics import Code, RuntimeProtocolError, Span
from ..syntax import ast
from ..core.program import ProgramContext
from .values import (NULL_VALUE, VOID_VALUE, VArray, VClosure, VHandle,
                     VNull, VStruct, VVariant, VVoid, truthy)


class HostEnv:
    """Registry of host implementations for extern functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, Callable] = {}

    def register(self, qualified_name: str, fn: Callable) -> None:
        self._functions[qualified_name] = fn

    def register_all(self, mapping: Dict[str, Callable]) -> None:
        self._functions.update(mapping)

    def lookup(self, qualified_name: str) -> Optional[Callable]:
        return self._functions.get(qualified_name)


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class InterpError(RuntimeProtocolError):
    """An execution error that is not a protocol violation (bad input,
    missing host function, ...)."""

    def __init__(self, message: str, span: Optional[Span] = None):
        super().__init__(Code.RT_PROTOCOL, message, span)


MAX_STEPS_DEFAULT = 5_000_000


class Interpreter:
    """Executes function bodies from a :class:`ProgramContext`."""

    def __init__(self, ctx: ProgramContext, host: Optional[HostEnv] = None,
                 max_steps: int = MAX_STEPS_DEFAULT):
        self.ctx = ctx
        self.host = host or HostEnv()
        self.max_steps = max_steps
        self.steps = 0

    # -- public API ---------------------------------------------------------

    def call(self, qualified_name: str, args: Optional[List[Any]] = None
             ) -> Any:
        """Call a defined or extern function by (qualified) name."""
        args = args or []
        fundef = self.ctx.fun_defs.get(qualified_name)
        if fundef is not None:
            return self._call_def(fundef, args, captured={})
        host_fn = self.host.lookup(qualified_name)
        if host_fn is not None:
            return host_fn(self, *args)
        raise InterpError(f"no implementation for '{qualified_name}'")

    def call_value(self, fn: Any, args: List[Any]) -> Any:
        """Call a function value (closure or host callable)."""
        if isinstance(fn, VClosure):
            return self._call_def(fn.fundef, args, captured=fn.captured)
        if callable(fn):
            return fn(self, *args)
        raise InterpError(f"cannot call non-function value {fn!r}")

    # -- machinery -----------------------------------------------------------

    def _tick(self, span: Span) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("step budget exhausted (infinite loop?)", span)

    def _call_def(self, fundef: ast.FunDef, args: List[Any],
                  captured: Dict[str, Any]) -> Any:
        decl = fundef.decl
        if len(args) != len(decl.params):
            raise InterpError(
                f"'{decl.name}' expects {len(decl.params)} argument(s), "
                f"got {len(args)}", fundef.span)
        env: Dict[str, Any] = dict(captured)
        for param, value in zip(decl.params, args):
            if param.name:
                env[param.name] = value
        try:
            self._exec_block(fundef.body, env)
        except _Return as ret:
            return ret.value
        return VOID_VALUE

    # -- statements -------------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Dict[str, Any]) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Dict[str, Any]) -> None:
        self._tick(stmt.span)
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            env[stmt.name] = (self._eval(stmt.init, env)
                              if stmt.init is not None else NULL_VALUE)
        elif isinstance(stmt, ast.LocalFun):
            env[stmt.fundef.decl.name] = VClosure(
                stmt.fundef.decl.name, stmt.fundef, captured=env)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.IncDec):
            delta = 1 if stmt.op == "++" else -1
            current = self._eval(stmt.target, env)
            self._assign_to(stmt.target, current + delta, env)
        elif isinstance(stmt, ast.If):
            if truthy(self._eval(stmt.cond, env)):
                self._exec_stmt(stmt.then, env)
            elif stmt.orelse is not None:
                self._exec_stmt(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            while truthy(self._eval(stmt.cond, env)):
                self._tick(stmt.span)
                try:
                    self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, ast.Return):
            value = (self._eval(stmt.value, env)
                     if stmt.value is not None else VOID_VALUE)
            raise _Return(value)
        elif isinstance(stmt, ast.Free):
            target = self._eval(stmt.target, env)
            self._free(target, stmt.span)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        else:
            raise InterpError(f"unknown statement {type(stmt).__name__}",
                              stmt.span)

    def _exec_assign(self, stmt: ast.Assign, env: Dict[str, Any]) -> None:
        value = self._eval(stmt.value, env)
        if stmt.op == "+=":
            value = self._eval(stmt.target, env) + value
        elif stmt.op == "-=":
            value = self._eval(stmt.target, env) - value
        self._assign_to(stmt.target, value, env)

    def _assign_to(self, target: ast.Expr, value: Any,
                   env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.ident] = value
            return
        if isinstance(target, ast.FieldAccess):
            obj = self._eval(target.obj, env)
            obj = self._deref_struct(obj, target.span)
            obj.fields[target.field] = value
            return
        if isinstance(target, ast.Index):
            obj = self._eval(target.obj, env)
            idx = self._eval(target.index, env)
            if isinstance(obj, VArray):
                obj.elems[idx] = value
                return
            raise InterpError(f"cannot index {obj!r}", target.span)
        raise InterpError("bad assignment target", target.span)

    def _exec_switch(self, stmt: ast.Switch, env: Dict[str, Any]) -> None:
        value = self._eval(stmt.scrutinee, env)
        if not isinstance(value, VVariant):
            raise InterpError(f"switch on non-variant value {value!r}",
                              stmt.span)
        self._on_switch_value(value)
        default_case: Optional[ast.Case] = None
        for case in stmt.cases:
            if case.pattern.ctor is None:
                default_case = case
                continue
            if case.pattern.ctor == value.ctor:
                for binder, arg in zip(case.pattern.binders, value.args):
                    if binder is not None:
                        env[binder] = arg
                for s in case.body:
                    self._exec_stmt(s, env)
                return
        if default_case is not None:
            for s in default_case.body:
                self._exec_stmt(s, env)
            return
        raise InterpError(
            f"switch did not match constructor '{value.ctor}'", stmt.span)

    def _on_switch_value(self, value: "VVariant") -> None:
        """Hook invoked with every switch scrutinee before matching.
        The dynamic key monitor overrides this to restore keys a
        key-capturing variant carried out of the call that built it."""

    def _free(self, value: Any, span: Span) -> None:
        if isinstance(value, VStruct):
            if value.freed:
                raise RuntimeProtocolError(
                    Code.RT_DOUBLE_FREE,
                    f"double free of {value.type_name} object", span)
            value.freed = True
            return
        if isinstance(value, VHandle):
            release = self.host.lookup(f"$free:{value.kind}")
            if release is not None:
                release(self, value)
                return
        raise InterpError(f"cannot free {value!r}", span)

    # -- expressions -------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Dict[str, Any]) -> Any:
        self._tick(expr.span)
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.CharLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return NULL_VALUE
        if isinstance(expr, ast.Name):
            if expr.ident in env:
                return env[expr.ident]
            # A bare reference to a top-level function.
            if self.ctx.fun_defs.get(expr.ident) is not None:
                fundef = self.ctx.fun_defs[expr.ident]
                return VClosure(expr.ident, fundef, captured={})
            raise InterpError(f"undefined variable '{expr.ident}'", expr.span)
        if isinstance(expr, ast.FieldAccess):
            obj = self._eval(expr.obj, env)
            struct = self._deref_struct(obj, expr.span)
            if expr.field not in struct.fields:
                raise InterpError(
                    f"no field '{expr.field}' on {struct.type_name}",
                    expr.span)
            return struct.fields[expr.field]
        if isinstance(expr, ast.Index):
            obj = self._eval(expr.obj, env)
            idx = self._eval(expr.index, env)
            if isinstance(obj, VArray):
                if not 0 <= idx < len(obj.elems):
                    raise InterpError(
                        f"index {idx} out of bounds (length "
                        f"{len(obj.elems)})", expr.span)
                return obj.elems[idx]
            if isinstance(obj, str):
                return obj[idx]
            raise InterpError(f"cannot index {obj!r}", expr.span)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, env)
            if expr.op == "!":
                return not truthy(operand)
            return -operand
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.CtorApp):
            args = [self._eval(a, env) for a in expr.args]
            return VVariant(expr.name, args)
        if isinstance(expr, ast.New):
            return self._eval_new(expr, env)
        if isinstance(expr, ast.ArrayLit):
            return VArray([self._eval(e, env) for e in expr.elems])
        raise InterpError(f"unknown expression {type(expr).__name__}",
                          expr.span)

    def _deref_struct(self, obj: Any, span: Span) -> VStruct:
        if isinstance(obj, VStruct):
            if obj.freed:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING,
                    f"access to freed {obj.type_name} object", span)
            if obj.region is not None and not obj.region.alive:
                raise RuntimeProtocolError(
                    Code.RT_DANGLING,
                    f"access to {obj.type_name} object in deleted region "
                    f"'{obj.region.name}'", span)
            return obj
        if isinstance(obj, VHandle):
            accessor = self.host.lookup(f"$struct:{obj.kind}")
            if accessor is not None:
                return accessor(self, obj)
        raise InterpError(f"cannot access fields of {obj!r}", span)

    def _eval_binary(self, expr: ast.Binary, env: Dict[str, Any]) -> Any:
        op = expr.op
        if op == "&&":
            return truthy(self._eval(expr.left, env)) and \
                truthy(self._eval(expr.right, env))
        if op == "||":
            return truthy(self._eval(expr.left, env)) or \
                truthy(self._eval(expr.right, env))
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpError("division by zero", expr.span)
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)   # C-style truncation toward zero
            return left / right
        if op == "%":
            if right == 0:
                raise InterpError("modulo by zero", expr.span)
            return left % right
        if op == "==":
            return self._values_equal(left, right)
        if op == "!=":
            return not self._values_equal(left, right)
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        raise InterpError(f"unknown operator '{op}'", expr.span)

    @staticmethod
    def _values_equal(left: Any, right: Any) -> bool:
        if isinstance(left, VNull) or isinstance(right, VNull):
            return isinstance(left, VNull) and isinstance(right, VNull)
        if isinstance(left, VVariant) and isinstance(right, VVariant):
            return (left.ctor == right.ctor
                    and len(left.args) == len(right.args)
                    and all(Interpreter._values_equal(a, b)
                            for a, b in zip(left.args, right.args)))
        return left == right

    def _eval_call(self, expr: ast.Call, env: Dict[str, Any]) -> Any:
        args = [self._eval(a, env) for a in expr.args]
        fn = expr.fn
        if isinstance(fn, ast.Name):
            if fn.ident in env:
                return self.call_value(env[fn.ident], args)
            fundef = self.ctx.fun_defs.get(fn.ident)
            if fundef is not None:
                return self._call_def(fundef, args, captured={})
            host_fn = self.host.lookup(fn.ident)
            if host_fn is not None:
                return host_fn(self, *args)
            raise InterpError(f"undefined function '{fn.ident}'", expr.span)
        if isinstance(fn, ast.FieldAccess) and isinstance(fn.obj, ast.Name):
            qual = f"{fn.obj.ident}.{fn.field}"
            fundef = self.ctx.fun_defs.get(qual)
            if fundef is not None:
                return self._call_def(fundef, args, captured={})
            host_fn = self.host.lookup(qual)
            if host_fn is not None:
                return host_fn(self, *args)
            raise InterpError(f"no implementation for '{qual}'", expr.span)
        callee = self._eval(fn, env)
        return self.call_value(callee, args)

    def _eval_new(self, expr: ast.New, env: Dict[str, Any]) -> Any:
        assert isinstance(expr.type, ast.NamedType)
        sinfo = self.ctx.struct(expr.type.name)
        fields: Dict[str, Any] = {}
        if sinfo is not None:
            for fname, _ftype in sinfo.fields:
                fields[fname] = NULL_VALUE
        for init in expr.inits:
            fields[init.name] = self._eval(init.value, env)
        struct = VStruct(expr.type.name, fields)
        if expr.region is not None:
            region_handle = self._eval(expr.region, env)
            if isinstance(region_handle, VHandle) and \
                    region_handle.kind == "region":
                region = region_handle.resource
                region.allocate(struct)
                struct.region = region
            else:
                raise InterpError(
                    f"new(...) requires a region, got {region_handle!r}",
                    expr.span)
        return struct
