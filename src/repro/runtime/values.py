"""Run-time values for the Vault interpreter.

Keys and guards have *no run-time representation* (paper §2.1) — the
interpreter executes the erased program.  Base types map to Python
natives; structs, variants, arrays, closures and host resources get
small wrapper classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class VVoid:
    """The unit value returned by void functions."""

    _instance: Optional["VVoid"] = None

    def __new__(cls) -> "VVoid":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"


VOID_VALUE = VVoid()


class VNull:
    _instance: Optional["VNull"] = None

    def __new__(cls) -> "VNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"


NULL_VALUE = VNull()


@dataclass
class VStruct:
    """A struct instance.  ``region`` is set for region-allocated
    objects so the allocator can invalidate them on region deletion."""

    type_name: str
    fields: Dict[str, Any]
    region: Optional[Any] = None
    freed: bool = False

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"{self.type_name}{{{inner}}}"


@dataclass
class VVariant:
    """A variant value: constructor name plus argument values."""

    ctor: str
    args: List[Any] = field(default_factory=list)

    def __repr__(self) -> str:
        if self.args:
            return f"'{self.ctor}({', '.join(map(repr, self.args))})"
        return f"'{self.ctor}"


@dataclass
class VArray:
    elems: List[Any]

    def __repr__(self) -> str:
        return f"[{', '.join(map(repr, self.elems))}]"


@dataclass
class VClosure:
    """A function value: a (possibly nested) definition plus the
    environment frames it captured."""

    name: str
    fundef: Any                     # ast.FunDef
    captured: Dict[str, Any]

    def __repr__(self) -> str:
        return f"<fn {self.name}>"


@dataclass
class VHandle:
    """A handle to a host resource (region, socket, file, IRP, event,
    lock, device...).  ``kind`` names the resource family; ``resource``
    is the substrate object."""

    kind: str
    resource: Any

    def __repr__(self) -> str:
        return f"<{self.kind} {self.resource!r}>"


def truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise TypeError(f"condition evaluated to non-bool {value!r}")
