"""Size and overhead metrics for the case-study comparison.

The paper reports the floppy driver at 4900 lines of C versus 5200
lines of Vault — roughly 6% annotation overhead.  We measure the same
quantity on our driver by comparing the annotated source against its
key-erased rendering, in lines, tokens and characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..lower import erase_program
from ..syntax import parse_program, pretty, tokenize
from ..syntax.tokens import T


def count_lines(source: str) -> int:
    """Non-blank, non-comment-only source lines."""
    count = 0
    in_block = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("//") or not line:
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block = True
            continue
        count += 1
    return count


def count_tokens(source: str) -> int:
    return sum(1 for tok in tokenize(source) if tok.kind is not T.EOF)


@dataclass
class SizeComparison:
    """Annotated-vs-erased size of one program."""

    vault_lines: int
    erased_lines: int
    vault_tokens: int
    erased_tokens: int
    vault_chars: int
    erased_chars: int

    @property
    def line_overhead(self) -> float:
        return self.vault_lines / max(self.erased_lines, 1) - 1.0

    @property
    def token_overhead(self) -> float:
        return self.vault_tokens / max(self.erased_tokens, 1) - 1.0

    @property
    def char_overhead(self) -> float:
        return self.vault_chars / max(self.erased_chars, 1) - 1.0

    def rows(self) -> List[Tuple[str, int, int, float]]:
        return [
            ("lines", self.vault_lines, self.erased_lines,
             self.line_overhead),
            ("tokens", self.vault_tokens, self.erased_tokens,
             self.token_overhead),
            ("characters", self.vault_chars, self.erased_chars,
             self.char_overhead),
        ]


def compare_sizes(vault_source: str) -> SizeComparison:
    """Measure a Vault source against its own erased rendering.

    Both sides are pretty-printed from ASTs so formatting is identical
    and only the annotations differ — the fairest analogue of the
    paper's C-vs-Vault line counts.
    """
    program = parse_program(vault_source)
    erased = erase_program(program)
    vault_text = pretty(program)
    erased_text = pretty(erased)
    return SizeComparison(
        vault_lines=count_lines(vault_text),
        erased_lines=count_lines(erased_text),
        vault_tokens=count_tokens(vault_text),
        erased_tokens=count_tokens(erased_text),
        vault_chars=len(vault_text),
        erased_chars=len(erased_text),
    )


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """A plain fixed-width table (benchmarks print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])
