"""Program corpus: the paper's example programs plus a synthetic
program generator for checker-scaling experiments.

Every corpus entry carries a correct Vault source, the entry-point
function a dynamic workload calls, and a runner that executes the
program against fresh substrates and audits for leaks — the "testing"
oracle of the mutation study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..api import load_context
from ..diagnostics import RuntimeProtocolError, VaultError
from ..stdlib.hostimpl import create_host, make_interpreter


@dataclass
class CorpusProgram:
    name: str
    source: str
    entry: str
    description: str

    def runner(self, source: str) -> Optional[str]:
        """Execute one (possibly mutated) version of this program;
        returns an error-code string if the run misbehaved."""
        ctx, reporter = load_context(source, filename=f"<{self.name}>")
        if not reporter.ok:
            return "parse-error"
        host = create_host()
        interp = make_interpreter(ctx, host)
        try:
            interp.call(self.entry)
        except RuntimeProtocolError as err:
            return err.code.value
        except VaultError:
            return "crash"
        leaks = host.audit()
        if leaks:
            return "leak"
        return None

    def monitor_runner(self, source: str) -> Optional[str]:
        """Like :meth:`runner`, but under the dynamic key monitor —
        run-time enforcement of the effect clauses themselves."""
        from ..runtime.monitor import make_monitored
        ctx, reporter = load_context(source, filename=f"<{self.name}>")
        if not reporter.ok:
            return "parse-error"
        monitored = make_monitored(ctx)
        try:
            monitored.call(self.entry)
        except RuntimeProtocolError as err:
            return err.code.value
        except VaultError:
            return "crash"
        if monitored.monitor.audit():
            return "leak"
        if monitored.vault_host.audit():
            return "leak"
        return None


REGION_PIPELINE = CorpusProgram(
    name="region_pipeline",
    description="a multi-stage region-per-phase pipeline (paper §6's "
                "compiler-front-end pattern)",
    entry="main",
    source='''
struct item { int value; int weight; }
struct summary { int total; int count; }

int phase_one(tracked(R) region rgn) [R] {
    R:item a = new(rgn) item { value = 3; weight = 2; };
    R:item b = new(rgn) item { value = 5; weight = 1; };
    a.value++;
    return a.value * a.weight + b.value * b.weight;
}

int phase_two(int seed) {
    tracked(R) region scratch = Region.create();
    R:summary s = new(scratch) summary { total = 0; count = 0; };
    int i = 0;
    while (i < 4) {
        s.total += seed + i;
        s.count++;
        i++;
    }
    int result = s.total * 10 + s.count;
    Region.delete(scratch);
    return result;
}

int main() {
    tracked(R) region rgn = Region.create();
    int first = phase_one(rgn);
    Region.delete(rgn);
    int second = phase_two(first);
    return first + second;
}
''')


SOCKET_SERVER = CorpusProgram(
    name="socket_server",
    description="the §2.3 connection-oriented server with a client",
    entry="main",
    source='''
int serve_one(tracked(S) sock srv, sockaddr addr) [S@listening] {
    tracked(N) sock conn = Socket.accept(srv, addr);
    byte[] buf = [0, 0, 0, 0, 0, 0, 0, 0];
    int n = Socket.receive(conn, buf);
    Socket.send(conn, buf);
    Socket.close(conn);
    return n;
}

int main() {
    sockaddr addr = new sockaddr { host = "loopback"; port = 7777; };
    tracked(S) sock srv = Socket.socket('INET, 'STREAM, 0);
    Socket.bind(srv, addr);
    Socket.listen(srv, 4);

    tracked(C) sock client = Socket.socket('INET, 'STREAM, 0);
    Socket.connect(client, addr);
    byte[] hello = [104, 101, 108, 108, 111];
    Socket.send(client, hello);

    int n = serve_one(srv, addr);

    byte[] back = [0, 0, 0, 0, 0, 0, 0, 0];
    int m = Socket.receive(client, back);
    Socket.close(client);
    Socket.close(srv);
    return n + m;
}
''')


FILE_COPY = CorpusProgram(
    name="file_copy",
    description="the §2.1 FILE protocol: open, transfer, close",
    entry="main",
    source='''
void transfer(tracked(A) FILE src, tracked(B) FILE dst, int n) [A, B] {
    int i = 0;
    while (i < n) {
        byte b = fgetb(src);
        fputb(dst, b);
        i++;
    }
}

int main() {
    tracked(A) FILE src = fopen("input.dat");
    fputb(src, 10);
    fputb(src, 20);
    fputb(src, 30);
    tracked(B) FILE dst = fopen("output.dat");
    transfer(src, dst, 3);
    int copied = flen(dst);
    fclose(src);
    fclose(dst);
    return copied;
}
''')


LOCKED_COUNTER = CorpusProgram(
    name="locked_counter",
    description="§4.2 spin-lock discipline around shared counters",
    entry="main",
    source='''
struct counters { int hits; int misses; }

void record(KSPIN_LOCK<K> lock, K:counters shared, bool hit)
        [IRQL @ (lvl <= DISPATCH_LEVEL)] {
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    if (hit) {
        shared.hits++;
    } else {
        shared.misses++;
    }
    KeReleaseSpinLock(lock, saved);
}

int main() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counters shared = new tracked counters { hits = 0; misses = 0; };
    K:counters view = shared;
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(shared);
    record(lock, view, true);
    record(lock, view, true);
    record(lock, view, false);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    int total = view.hits * 10 + view.misses;
    KeReleaseSpinLock(lock, saved);
    return total;
}
''')


BANK_TRANSFER = CorpusProgram(
    name="bank_transfer",
    description="transactional transfer with commit/abort discipline "
                "(the introduction's database-transaction protocol)",
    entry="main",
    source='''
int transfer(int amount) {
    tracked(T) txn t = Tx.begin();
    int from_balance = Tx.get(t, "alice");
    int to_balance = Tx.get(t, "bob");
    if (from_balance < amount) {
        Tx.abort(t);
        return 0;
    }
    Tx.put(t, "alice", from_balance - amount);
    Tx.put(t, "bob", to_balance + amount);
    Tx.commit(t);
    return 1;
}

int main() {
    tracked(S) txn seed = Tx.begin();
    Tx.put(seed, "alice", 100);
    Tx.put(seed, "bob", 5);
    Tx.commit(seed);

    int ok_small = transfer(30);
    int ok_big = transfer(500);

    tracked(C) txn check = Tx.begin();
    int alice = Tx.get(check, "alice");
    int bob = Tx.get(check, "bob");
    Tx.commit(check);
    return alice * 1000 + bob * 10 + ok_small + ok_big;
}
''')


CHART_DRAWING = CorpusProgram(
    name="chart_drawing",
    description="GDI device-context/pen discipline (§6's graphics "
                "domain): select before draw, deselect before release",
    entry="main",
    source='''
void polyline(tracked(D) dc canvas, int n) [D@armed] {
    int i = 0;
    while (i < n) {
        Gdi.draw_line(canvas, i * 10, 0, i * 10 + 10, i * i);
        i++;
    }
}

int main() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    tracked(P) pen axis_pen = Gdi.create_pen(0);
    Gdi.select_pen(canvas, axis_pen);
    Gdi.draw_line(canvas, 0, 0, 100, 0);
    Gdi.draw_line(canvas, 0, 0, 0, 100);
    Gdi.deselect_pen(canvas, axis_pen);

    tracked(Q) pen data_pen = Gdi.create_pen(0xFF0000);
    Gdi.select_pen(canvas, data_pen);
    polyline(canvas, 5);
    Gdi.deselect_pen(canvas, data_pen);

    Gdi.release_dc(canvas);
    Gdi.delete_pen(axis_pen);
    Gdi.delete_pen(data_pen);
    return 0;
}
''')


CORPUS: Dict[str, CorpusProgram] = {
    p.name: p
    for p in (REGION_PIPELINE, SOCKET_SERVER, FILE_COPY, LOCKED_COUNTER,
              BANK_TRANSFER, CHART_DRAWING)
}


# ---------------------------------------------------------------------------
# Synthetic program generator (checker scaling, property tests)
# ---------------------------------------------------------------------------

def synthesize_program(n_functions: int, seed: int = 0,
                       error_rate: float = 0.0) -> str:
    """A well-typed program with ``n_functions`` region-protocol
    functions; with ``error_rate`` > 0, some functions get a seeded
    protocol bug (leak, dangling access or double delete)."""
    rng = random.Random(seed)
    lines: List[str] = ["struct cell { int value; int extra; }", ""]
    for i in range(n_functions):
        bug = rng.random() < error_rate
        kind = rng.choice(["leak", "dangle", "double"]) if bug else "ok"
        lines.extend(_synth_function(i, rng, kind))
        lines.append("")
    return "\n".join(lines)


def _synth_function(index: int, rng: random.Random, kind: str) -> List[str]:
    body: List[str] = [
        f"int worker_{index}(int input) {{",
        "    tracked(R) region rgn = Region.create();",
        "    R:cell c = new(rgn) cell { value = input; extra = 0; };",
    ]
    for j in range(rng.randint(1, 4)):
        body.append(f"    c.value += {rng.randint(1, 9)};")
    if rng.random() < 0.5:
        body.extend([
            "    if (c.value > 10) {",
            "        c.extra = c.value * 2;",
            "    } else {",
            "        c.extra = c.value - 1;",
            "    }",
        ])
    body.append("    int result = c.value + c.extra;")
    if kind == "leak":
        pass                                   # forgot Region.delete
    elif kind == "dangle":
        body.append("    Region.delete(rgn);")
        body.append("    result = result + c.value;")
    elif kind == "double":
        body.append("    Region.delete(rgn);")
        body.append("    Region.delete(rgn);")
    else:
        body.append("    Region.delete(rgn);")
    body.append("    return result;")
    body.append("}")
    return body
