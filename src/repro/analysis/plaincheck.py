"""The plain-checker baseline: a guard-free type checker.

The paper's thesis is that an ordinary ("safe but protocol-blind")
type system cannot catch resource-management errors — that is exactly
what Java-style safety gives you.  We make the baseline concrete by
erasing every protocol annotation (keys, guards, effects, statesets)
from both the program *and* the standard interfaces, then running the
very same checker.  What remains is a conventional C-like type checker:
it still catches type mismatches, arity errors and unknown names, but
no protocol violation can be expressed, so none can be reported.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core import build_context, check_program
from ..diagnostics import Code, Reporter
from ..lower.erase import Eraser
from ..stdlib import stdlib_programs
from ..syntax import ast, parse_program

#: Codes a plain checker could never produce (keys do not exist there).
PROTOCOL_CODES = {
    Code.KEY_NOT_HELD, Code.KEY_WRONG_STATE, Code.KEY_LEAKED,
    Code.KEY_CONSUMED_MISSING, Code.KEY_DUPLICATED, Code.JOIN_MISMATCH,
    Code.LOOP_NO_INVARIANT, Code.POSTCONDITION_MISMATCH,
    Code.STATE_BOUND_VIOLATION, Code.ANONYMOUS_KEY, Code.TRACKED_COPY,
    Code.KEY_ESCAPES_SCOPE,
}


def plain_check(source: str, filename: str = "<input>",
                units: Optional[Sequence[str]] = None,
                extra: Sequence[ast.Program] = ()) -> Reporter:
    """Type-check the *erased* program against the *erased* interfaces."""
    reporter = Reporter(source, filename)
    programs: List[ast.Program] = list(stdlib_programs(units))
    programs.extend(extra)
    programs.append(parse_program(source, filename))
    erased = Eraser().erase_programs(programs)
    ctx = build_context(erased, reporter)
    if reporter.ok:
        check_program(ctx, reporter)
    # By construction nothing protocol-related can appear; assert it.
    assert not any(d.code in PROTOCOL_CODES for d in reporter.errors), \
        "erased program produced a protocol diagnostic"
    return reporter


def is_protocol_error(code: Code) -> bool:
    return code in PROTOCOL_CODES
