"""Seeded-fault (mutation) study: static checking vs. testing.

The paper's claim is qualitative: "Vault's type checker catches at
compile time many of the errors that are difficult to reproduce at run
time."  This harness makes it measurable.  We seed protocol-shaped bugs
into correct programs with three mutation operators—

* **drop**  — delete a call statement (forgotten release / protocol
  step: Figure 2's ``leaky``, §2.3's skipped ``bind``);
* **dup**   — duplicate a call statement (double free / double release
  / double acquire);
* **swap**  — exchange two adjacent statements (use-after-release,
  out-of-order protocol steps: Figure 2's ``dangling``);

—and then ask three oracles about each mutant:

1. the **Vault checker** (our reproduction of the paper's system);
2. the **plain checker** (annotations erased — Java-style type safety);
3. the **dynamic baseline** (run a test workload under the substrate
   simulators and watch for run-time protocol errors and leak audits —
   i.e. "testing", which only sees executed paths).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..api import check_source
from ..diagnostics import Code, Reporter, RuntimeProtocolError, VaultError
from ..syntax import ast, parse_program, pretty
from .plaincheck import PROTOCOL_CODES, plain_check

OPERATORS = ("drop", "dup", "swap")

#: Operators for driver-style code, where the protocol step is usually
#: the *returned* call: "pend" rewrites ``return IoCompleteRequest(irp,
#: ...)`` / ``return IoCallDriver(..., irp)`` into ``return
#: IoMarkIrpPending(irp)`` — the classic forgotten-completion bug
#: (§4.1: requests "neither completed, passed on, nor pended" onto a
#: queue silently hang the system).
DRIVER_OPERATORS = ("drop", "dup", "swap", "pend")

_PENDABLE = ("IoCompleteRequest", "IoCallDriver")

#: Statement kinds worth mutating: calls and frees are where protocol
#: steps live.
_MUTABLE = (ast.ExprStmt, ast.Free)


@dataclass
class Mutant:
    """One seeded fault."""

    name: str
    operator: str
    function: str
    position: int
    source: str
    description: str


@dataclass
class DetectionResult:
    mutant: Mutant
    vault_detected: bool
    vault_codes: List[str]
    plain_detected: bool
    dynamic_detected: bool
    dynamic_error: Optional[str]
    monitor_detected: bool = False
    monitor_error: Optional[str] = None

    @property
    def any_detected(self) -> bool:
        return (self.vault_detected or self.plain_detected
                or self.dynamic_detected or self.monitor_detected)


def _stmt_lists(block: ast.Block) -> List[List[ast.Stmt]]:
    """Every statement list in a function body (nested blocks too)."""
    lists = [block.stmts]
    for stmt in block.stmts:
        if isinstance(stmt, ast.Block):
            lists.extend(_stmt_lists(stmt))
        elif isinstance(stmt, ast.If):
            if isinstance(stmt.then, ast.Block):
                lists.extend(_stmt_lists(stmt.then))
            if isinstance(stmt.orelse, ast.Block):
                lists.extend(_stmt_lists(stmt.orelse))
        elif isinstance(stmt, ast.While):
            if isinstance(stmt.body, ast.Block):
                lists.extend(_stmt_lists(stmt.body))
        elif isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                lists.append(case.body)
    return lists


def _pendable_return(stmt: ast.Stmt) -> bool:
    """Is this ``return IoCompleteRequest(...)``/``IoCallDriver(...)``
    with an IRP argument the "pend" operator can rewrite?"""
    if not isinstance(stmt, ast.Return) or \
            not isinstance(stmt.value, ast.Call):
        return False
    fn = stmt.value.fn
    if not (isinstance(fn, ast.Name) and fn.ident in _PENDABLE):
        return False
    return any(isinstance(a, ast.Name) for a in stmt.value.args)


def _pended_return(stmt: ast.Stmt) -> ast.Return:
    assert isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call)
    # The IRP is the last bare-name argument (status codes are calls or
    # literals; device objects come first in IoCallDriver).
    irp_arg = [a for a in stmt.value.args if isinstance(a, ast.Name)][-1]
    call = ast.Call(stmt.span, ast.Name(stmt.span, "IoMarkIrpPending"),
                    [irp_arg])
    return ast.Return(stmt.span, call)


def _describe(stmt: ast.Stmt) -> str:
    text = pretty(stmt).strip()
    return text if len(text) <= 60 else text[:57] + "..."


def generate_mutants(source: str,
                     operators: Sequence[str] = OPERATORS,
                     functions: Optional[Sequence[str]] = None
                     ) -> List[Mutant]:
    """All mutants of ``source`` under the chosen operators.

    Each mutant re-parses the pristine source and applies exactly one
    edit, so mutants are independent.
    """
    pristine = parse_program(source)
    mutants: List[Mutant] = []

    def fun_defs(prog: ast.Program) -> List[ast.FunDef]:
        out = []
        for decl in prog.decls:
            if isinstance(decl, ast.FunDef):
                out.append(decl)
            elif isinstance(decl, ast.ModuleDecl):
                out.extend(d for d in decl.decls
                           if isinstance(d, ast.FunDef))
        return out

    # Enumerate edit sites on the pristine AST, then re-parse and edit
    # a fresh copy for each mutant.
    sites: List[Tuple[str, int, int, str, str]] = []
    for fi, fundef in enumerate(fun_defs(pristine)):
        if functions is not None and fundef.decl.name not in functions:
            continue
        for li, stmts in enumerate(_stmt_lists(fundef.body)):
            for si, stmt in enumerate(stmts):
                if "drop" in operators and isinstance(stmt, _MUTABLE):
                    sites.append(("drop", fi, li, f"{si}",
                                  f"drop `{_describe(stmt)}`"))
                if "dup" in operators and isinstance(stmt, _MUTABLE):
                    sites.append(("dup", fi, li, f"{si}",
                                  f"duplicate `{_describe(stmt)}`"))
                if "swap" in operators and si + 1 < len(stmts):
                    nxt = stmts[si + 1]
                    if isinstance(stmt, _MUTABLE) or isinstance(nxt, _MUTABLE):
                        sites.append(("swap", fi, li, f"{si}",
                                      f"swap `{_describe(stmt)}` with "
                                      f"`{_describe(nxt)}`"))
                if "pend" in operators and _pendable_return(stmt):
                    sites.append(("pend", fi, li, f"{si}",
                                  f"pend instead of `{_describe(stmt)}`"))

    for count, (op, fi, li, si_s, desc) in enumerate(sites):
        si = int(si_s)
        prog = parse_program(source)
        target = fun_defs(prog)[fi]
        stmts = _stmt_lists(target.body)[li]
        if op == "drop":
            del stmts[si]
        elif op == "dup":
            stmts.insert(si, stmts[si])
        elif op == "pend":
            stmts[si] = _pended_return(stmts[si])
        else:
            stmts[si], stmts[si + 1] = stmts[si + 1], stmts[si]
        mutants.append(Mutant(
            name=f"{target.decl.name}:{op}:{count}",
            operator=op,
            function=target.decl.name,
            position=si,
            source=pretty(prog),
            description=desc,
        ))
    return mutants


#: A dynamic runner executes a mutated program's workload and returns
#: None on clean execution or the error-code string observed.
DynamicRunner = Callable[[str], Optional[str]]


def _run_dynamic(runner: DynamicRunner, source: str) -> Optional[str]:
    try:
        return runner(source)
    except RuntimeProtocolError as err:
        return err.code.value
    except VaultError:
        return "crash"


def evaluate_mutant(mutant: Mutant,
                    runner: Optional[DynamicRunner] = None,
                    monitor_runner: Optional[DynamicRunner] = None,
                    units: Optional[Sequence[str]] = None
                    ) -> DetectionResult:
    """Run the oracles on one mutant: the Vault checker, the plain
    checker, a dynamic test run, and (optionally) the dynamic key
    monitor."""
    vault_report = check_source(mutant.source, units=units)
    vault_detected = not vault_report.ok
    vault_codes = [c.value for c in vault_report.codes()]

    try:
        plain_report = plain_check(mutant.source, units=units)
        plain_detected = not plain_report.ok
    except VaultError:
        plain_detected = True

    dynamic_error = _run_dynamic(runner, mutant.source) \
        if runner is not None else None
    monitor_error = _run_dynamic(monitor_runner, mutant.source) \
        if monitor_runner is not None else None

    return DetectionResult(mutant, vault_detected, vault_codes,
                           plain_detected, dynamic_error is not None,
                           dynamic_error, monitor_error is not None,
                           monitor_error)


@dataclass
class StudySummary:
    total: int
    vault_detected: int
    plain_detected: int
    dynamic_detected: int
    benign: int
    monitor_detected: int = 0
    results: List[DetectionResult] = field(repr=False, default_factory=list)

    def rate(self, which: str) -> float:
        if self.total == 0:
            return 0.0
        return {
            "vault": self.vault_detected,
            "plain": self.plain_detected,
            "dynamic": self.dynamic_detected,
            "monitor": self.monitor_detected,
        }[which] / self.total

    def rows(self) -> List[Tuple[str, int, float]]:
        return [
            ("Vault checker (static)", self.vault_detected,
             self.rate("vault")),
            ("plain checker (guards erased)", self.plain_detected,
             self.rate("plain")),
            ("dynamic testing (simulated run)", self.dynamic_detected,
             self.rate("dynamic")),
            ("dynamic key monitor", self.monitor_detected,
             self.rate("monitor")),
        ]


def run_study(source: str, runner: Optional[DynamicRunner] = None,
              operators: Sequence[str] = OPERATORS,
              functions: Optional[Sequence[str]] = None,
              units: Optional[Sequence[str]] = None,
              limit: Optional[int] = None,
              monitor_runner: Optional[DynamicRunner] = None
              ) -> StudySummary:
    """Generate and evaluate every mutant of a program."""
    mutants = generate_mutants(source, operators, functions)
    if limit is not None:
        mutants = mutants[:limit]
    results = [evaluate_mutant(m, runner, monitor_runner, units)
               for m in mutants]
    return StudySummary(
        total=len(results),
        vault_detected=sum(r.vault_detected for r in results),
        plain_detected=sum(r.plain_detected for r in results),
        dynamic_detected=sum(r.dynamic_detected for r in results),
        benign=sum(not r.any_detected for r in results),
        monitor_detected=sum(r.monitor_detected for r in results),
        results=results,
    )
