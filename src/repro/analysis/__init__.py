"""Baselines, the mutation study and measurement utilities."""

from .corpus import CORPUS, CorpusProgram, synthesize_program
from .metrics import (SizeComparison, compare_sizes, count_lines,
                      count_tokens, format_table)
from .mutation import (DetectionResult, Mutant, OPERATORS, StudySummary,
                       evaluate_mutant, generate_mutants, run_study)
from .plaincheck import PROTOCOL_CODES, is_protocol_error, plain_check

__all__ = [
    "CORPUS", "CorpusProgram", "DetectionResult", "Mutant", "OPERATORS",
    "PROTOCOL_CODES", "SizeComparison", "StudySummary", "compare_sizes",
    "count_lines", "count_tokens", "evaluate_mutant", "format_table",
    "generate_mutants", "is_protocol_error", "plain_check", "run_study",
    "synthesize_program",
]
