"""Vault's core type system: keys, capabilities, elaboration, checking."""

from .capability import CapabilityError, HeldKeys, KeyInfo
from .cfg import CFG, Block, build_cfg, program_cfgs
from .checker import (Checker, FlowState, FnChecker,
                      check_function_diagnostics, check_program,
                      match_signatures)
from .dataflow import (DefiniteAssignment, ForwardAnalysis,
                       dead_statement_count, reachable_statements)
from .effects import CoreEffect, CoreEffectItem, Signature, SigParam
from .elaborate import Elaborator, Scope
from .keys import (DEFAULT_STATE, Key, State, StateSet, StateSpace, StateVar,
                   fresh_key, state_display, states_equal)
from .program import (CtorInfo, GlobalKeyInfo, ProgramContext, StructInfo,
                      TypeDeclInfo, VariantInfo, build_context,
                      signatures_alpha_equal)
from .subst import Subst
from .types import (ANY_STATE, AnyState, AtMostState, CArg, CArray, CBase,
                    CFun, CGuarded, CNamed, CPacked, CTracked, CType,
                    CTypeVar, ExactState, KeyRef, KeyVarRef, StateReq,
                    StateVarRef, TypeVarRef, strip_guards)

__all__ = [
    "ANY_STATE", "AnyState", "AtMostState", "Block", "CArg", "CArray",
    "CBase", "CFG", "DefiniteAssignment", "ForwardAnalysis",
    "build_cfg", "dead_statement_count", "match_signatures",
    "program_cfgs", "reachable_statements",
    "CFun", "CGuarded", "CNamed", "CPacked", "CTracked", "CType",
    "CTypeVar", "CapabilityError", "Checker", "CoreEffect",
    "CoreEffectItem", "CtorInfo", "DEFAULT_STATE", "Elaborator",
    "ExactState", "FlowState", "FnChecker", "GlobalKeyInfo", "HeldKeys",
    "Key", "KeyInfo", "KeyRef", "KeyVarRef", "ProgramContext", "Scope",
    "SigParam", "Signature", "State", "StateReq", "StateSet", "StateSpace",
    "StateVar", "StateVarRef", "StructInfo", "Subst", "TypeDeclInfo",
    "TypeVarRef", "VariantInfo", "build_context",
    "check_function_diagnostics", "check_program",
    "fresh_key", "signatures_alpha_equal", "state_display", "states_equal",
    "strip_guards",
]
