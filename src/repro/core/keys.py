"""Keys, key states and statesets — the compile-time tokens of §2.1.

A :class:`Key` is a unique compile-time token standing for one run-time
resource.  The checker mints fresh keys at ``new tracked`` allocations,
at existential unpacking, and as skolems for a function's key-polymorphic
parameters.  Keys compare by identity: two distinct keys always denote
two distinct resources.

Key *states* are plain names (``open``, ``raw``, ``listening`` ...).
A :class:`StateSet` declares a family of states with a partial order
(§4.4's ``stateset IRQ_LEVEL = [PASSIVE_LEVEL < ... < DIRQL]``), used by
bounded state polymorphism ``(level <= DISPATCH_LEVEL)``.

The checker also manipulates *symbolic* states (:class:`StateVar`) for
state-polymorphic functions, possibly constrained by an upper bound in
some stateset.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

#: The default state used when the programmer omits key states
#: (the paper's "fixed unique state", written ⊤ in Figure 6).
DEFAULT_STATE = "$default"

_counter = itertools.count(1)


class Key:
    """A compile-time token for one run-time resource.

    ``name`` is a display hint (the program's name for the key, e.g.
    ``R`` or ``F``); uniqueness comes from object identity plus ``uid``.
    ``origin`` records how the key came to be, for diagnostics:
    ``"local"`` (new tracked allocation), ``"param"`` (skolem for a key
    variable of the enclosing function), ``"global"`` (a declared key
    such as IRQL), ``"unpack"`` (existential unpacking), ``"join"``
    (abstraction at a control-flow join).  ``span`` is the source
    location that minted the key, when known — leak reports point the
    programmer back at the allocation.
    """

    __slots__ = ("name", "uid", "origin", "span")

    def __init__(self, name: str, origin: str = "local", span=None):
        # Key *names* are shared by every key minted for the same
        # program identifier (skolems re-minted per function, join
        # keys, ...); interning them keeps per-key memory flat and
        # makes the name comparisons inside diagnostics fast.  Key
        # *identity* stays the identity of the object — two keys with
        # the same name are still two distinct resources.
        self.name = sys.intern(name)
        self.uid = next(_counter)
        self.origin = origin
        self.span = span

    def __repr__(self) -> str:
        return f"{self.name}#{self.uid}"

    def display(self) -> str:
        return self.name


def fresh_key(name: str, origin: str = "local", span=None) -> Key:
    return Key(name, origin, span)


@dataclass(frozen=True)
class StateVar:
    """A symbolic state, optionally bounded above in a stateset.

    ``KeReleaseSemaphore ... [IRQL @ (level <= DISPATCH_LEVEL)]`` checks
    its body with IRQL at ``StateVar("level", "DISPATCH_LEVEL")``.
    Unbounded state variables (``bound is None``) arise when a function
    omits a key's state entirely and is fully state-polymorphic.
    """

    name: str
    bound: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_counter))

    def __repr__(self) -> str:
        if self.bound:
            return f"({self.name}<= {self.bound})#{self.uid}"
        return f"{self.name}?#{self.uid}"


#: A state as tracked in the held-key set: concrete name or symbolic var.
State = Union[str, StateVar]


def state_display(state: State) -> str:
    if isinstance(state, StateVar):
        return f"{state.name}<={state.bound}" if state.bound else state.name
    if state == DEFAULT_STATE:
        return "T"
    return state


class StateSet:
    """A named set of states with a declared partial order.

    The order is given as ``<`` edges; we store the reflexive-transitive
    closure so ``leq`` is O(1).
    """

    def __init__(self, name: str, states: Tuple[str, ...],
                 order: Tuple[Tuple[str, str], ...] = ()):
        self.name = sys.intern(name)
        self.states: Tuple[str, ...] = tuple(sys.intern(s) for s in states)
        self.edges = order
        self._leq: Set[Tuple[str, str]] = self._closure(states, order)

    @staticmethod
    def _closure(states: Tuple[str, ...],
                 order: Tuple[Tuple[str, str], ...]) -> Set[Tuple[str, str]]:
        rel = {(s, s) for s in states}
        rel.update(order)
        changed = True
        while changed:
            changed = False
            for (a, b) in list(rel):
                for (c, d) in list(rel):
                    if b == c and (a, d) not in rel:
                        rel.add((a, d))
                        changed = True
        return rel

    def __contains__(self, state: str) -> bool:
        return state in self.states

    def leq(self, a: str, b: str) -> bool:
        """Is ``a <= b`` in the declared partial order?"""
        return (a, b) in self._leq

    def lub(self, a: str, b: str) -> Optional[str]:
        """Least upper bound of two states, if one exists."""
        uppers = [s for s in self.states
                  if self.leq(a, s) and self.leq(b, s)]
        for u in uppers:
            if all(self.leq(u, v) for v in uppers):
                return u
        return None

    def bottom(self) -> Optional[str]:
        """The least state, if the order has one."""
        for s in self.states:
            if all(self.leq(s, t) for t in self.states):
                return s
        return None

    def __repr__(self) -> str:
        return f"stateset {self.name}[{', '.join(self.states)}]"


class StateSpace:
    """All statesets of a program, plus membership lookup for states."""

    def __init__(self) -> None:
        self.sets: Dict[str, StateSet] = {}
        self._owner: Dict[str, str] = {}

    def add(self, sset: StateSet) -> None:
        self.sets[sset.name] = sset
        for s in sset.states:
            self._owner.setdefault(s, sset.name)

    def set_of_state(self, state: str) -> Optional[StateSet]:
        owner = self._owner.get(state)
        return self.sets.get(owner) if owner else None

    def leq(self, a: State, b: str) -> bool:
        """Does state ``a`` satisfy the bound ``<= b``?

        Concrete states use the declared partial order; a bounded state
        variable satisfies the bound if its own bound implies it.  A
        state outside any stateset only satisfies ``<=`` against itself.
        """
        if isinstance(a, StateVar):
            if a.bound is None:
                return False
            return self.leq(a.bound, b)
        if a == b:
            return True
        sset = self.set_of_state(a)
        return bool(sset and b in sset and sset.leq(a, b))

    def states_leq(self, bound: str) -> FrozenSet[str]:
        sset = self.set_of_state(bound)
        if sset is None:
            return frozenset({bound})
        return frozenset(s for s in sset.states if sset.leq(s, bound))


def states_equal(a: State, b: State) -> bool:
    """Exact equality of two states (symbolic vars by identity)."""
    if a is b:
        # Interned state names and shared StateVar objects make this
        # the common case on the join/exit fast paths.
        return True
    if isinstance(a, StateVar) and isinstance(b, StateVar):
        return a.uid == b.uid
    if isinstance(a, StateVar) or isinstance(b, StateVar):
        return False
    return a == b
