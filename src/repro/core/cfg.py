"""Control-flow graphs for Vault functions.

The paper's checker "forms a control flow graph for each function and
computes the held-key set before and after each node" (§3).  Our
checker computes the same fixpoint syntax-directed (the language is
fully structured), but this module builds the explicit CFG for
analyses that want one: unreachable-code detection, program statistics
(`vaultc stats`), and the dataflow engine in
:mod:`repro.core.dataflow`.

A :class:`CFG` is a set of basic blocks.  Each block carries the
statements/expressions that execute straight-line; edges carry an
optional label ("true"/"false" for branches, the constructor name for
switch cases, "back" for loop back edges).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..syntax import ast

_block_ids = itertools.count(1)


@dataclass
class Block:
    """One basic block: straight-line statements, then a terminator."""

    id: int = field(default_factory=lambda: next(_block_ids))
    stmts: List[ast.Stmt] = field(default_factory=list)
    #: outgoing edges: (target block, label)
    succs: List[Tuple["Block", Optional[str]]] = field(default_factory=list)
    preds: List["Block"] = field(default_factory=list)
    #: what ends the block: "fallthrough", "branch", "switch",
    #: "return", "loop", or "exit"
    terminator: str = "fallthrough"

    def link(self, target: "Block", label: Optional[str] = None) -> None:
        self.succs.append((target, label))
        target.preds.append(self)

    def __repr__(self) -> str:
        return f"B{self.id}({len(self.stmts)} stmts, {self.terminator})"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, name: str):
        self.name = name
        self.entry = Block()
        self.exit = Block()
        self.exit.terminator = "exit"
        self.blocks: List[Block] = [self.entry, self.exit]

    def new_block(self) -> Block:
        block = Block()
        self.blocks.append(block)
        return block

    # -- queries ------------------------------------------------------------

    def reachable_blocks(self) -> Set[int]:
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.id in seen:
                continue
            seen.add(block.id)
            for target, _ in block.succs:
                stack.append(target)
        return seen

    def unreachable_blocks(self) -> List[Block]:
        reachable = self.reachable_blocks()
        return [b for b in self.blocks
                if b.id not in reachable and (b.stmts or b is not self.exit)]

    def edge_count(self) -> int:
        return sum(len(b.succs) for b in self.blocks)

    def reverse_postorder(self) -> List[Block]:
        """Blocks reachable from the entry, in reverse postorder.

        This is the classic iteration order for forward dataflow: a
        block's dominators come before it, so most facts are in place
        by the time a block is visited and fixpoints need fewer sweeps.
        The traversal follows ``succs`` in declaration order, so the
        result is deterministic for a given CFG.
        """
        order: List[Block] = []
        seen: Set[int] = {self.entry.id}
        # Iterative DFS carrying an explicit successor cursor per frame.
        stack: List[Tuple[Block, int]] = [(self.entry, 0)]
        while stack:
            block, idx = stack[-1]
            if idx < len(block.succs):
                stack[-1] = (block, idx + 1)
                target = block.succs[idx][0]
                if target.id not in seen:
                    seen.add(target.id)
                    stack.append((target, 0))
            else:
                stack.pop()
                order.append(block)
        order.reverse()
        return order

    def back_edges(self) -> List[Tuple[Block, Block]]:
        """Edges labelled as loop back edges."""
        return [(b, t) for b in self.blocks
                for (t, label) in b.succs if label == "back"]

    def stats(self) -> Dict[str, int]:
        return {
            "blocks": len(self.blocks),
            "edges": self.edge_count(),
            "statements": sum(len(b.stmts) for b in self.blocks),
            "loops": len(self.back_edges()),
            "unreachable": len(self.unreachable_blocks()),
        }

    def render(self) -> str:
        lines = [f"cfg {self.name}:"]
        for block in self.blocks:
            role = ""
            if block is self.entry:
                role = " (entry)"
            elif block is self.exit:
                role = " (exit)"
            succs = ", ".join(
                f"B{t.id}" + (f"[{label}]" if label else "")
                for t, label in block.succs)
            lines.append(f"  B{block.id}{role}: {len(block.stmts)} stmt(s)"
                         f" -> {succs or '∅'}")
        return "\n".join(lines)


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loop_stack: List[Tuple[Block, Block]] = []  # (head, after)

    def build(self, body: ast.Block) -> None:
        end = self._stmts(body.stmts, self.cfg.entry)
        if end is not None:
            end.link(self.cfg.exit)

    def _stmts(self, stmts: List[ast.Stmt],
               current: Optional[Block]) -> Optional[Block]:
        for stmt in stmts:
            if current is None:
                # Dead code: still materialise a block so unreachable
                # statements are visible to analyses.
                current = self.cfg.new_block()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.Stmt,
              current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.Block):
            return self._stmts(stmt.stmts, current)

        if isinstance(stmt, ast.If):
            current.stmts.append(ast.ExprStmt(stmt.cond.span, stmt.cond))
            current.terminator = "branch"
            then_block = self.cfg.new_block()
            current.link(then_block, "true")
            then_end = self._stmt(stmt.then, then_block)
            if stmt.orelse is not None:
                else_block = self.cfg.new_block()
                current.link(else_block, "false")
                else_end = self._stmt(stmt.orelse, else_block)
            else:
                else_block = None
                else_end = None
            join = self.cfg.new_block()
            if then_end is not None:
                then_end.link(join)
            if stmt.orelse is None:
                current.link(join, "false")
            elif else_end is not None:
                else_end.link(join)
            if then_end is None and stmt.orelse is not None and \
                    else_end is None:
                return None
            return join

        if isinstance(stmt, ast.While):
            head = self.cfg.new_block()
            head.terminator = "loop"
            current.link(head)
            head.stmts.append(ast.ExprStmt(stmt.cond.span, stmt.cond))
            body_block = self.cfg.new_block()
            after = self.cfg.new_block()
            head.link(body_block, "true")
            head.link(after, "false")
            self.loop_stack.append((head, after))
            body_end = self._stmt(stmt.body, body_block)
            self.loop_stack.pop()
            if body_end is not None:
                body_end.link(head, "back")
            return after

        if isinstance(stmt, ast.Switch):
            current.stmts.append(
                ast.ExprStmt(stmt.scrutinee.span, stmt.scrutinee))
            current.terminator = "switch"
            join = self.cfg.new_block()
            any_fallthrough = False
            for case in stmt.cases:
                case_block = self.cfg.new_block()
                label = case.pattern.ctor or "default"
                current.link(case_block, label)
                case_end = self._stmts(case.body, case_block)
                if case_end is not None:
                    case_end.link(join)
                    any_fallthrough = True
            return join if any_fallthrough or not stmt.cases else None

        if isinstance(stmt, ast.Return):
            current.stmts.append(stmt)
            current.terminator = "return"
            current.link(self.cfg.exit)
            return None

        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self.loop_stack:
                current.link(self.loop_stack[-1][1], "break")
            return None

        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self.loop_stack:
                current.link(self.loop_stack[-1][0], "continue")
            return None

        current.stmts.append(stmt)
        return current


def build_cfg(fundef: ast.FunDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    cfg = CFG(fundef.decl.name)
    _Builder(cfg).build(fundef.body)
    return cfg


def program_cfgs(program: ast.Program) -> Dict[str, CFG]:
    """CFGs for every function definition in a compilation unit."""
    cfgs: Dict[str, CFG] = {}

    def walk(decls):
        for decl in decls:
            if isinstance(decl, ast.FunDef):
                cfgs[decl.decl.name] = build_cfg(decl)
            elif isinstance(decl, ast.ModuleDecl):
                walk(decl.decls)

    walk(program.decls)
    return cfgs
