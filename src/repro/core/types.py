"""The internal type language (paper Figure 6).

The correspondence with the paper's grammar:

=====================  =====================================================
Paper (Figure 6)       Here
=====================  =====================================================
singleton type s(r)    :class:`CTracked` — a handle whose key is ``key``;
                       the held-key set carries the payload mapping
                       ``r@st -> T``
guarded type C |> t    :class:`CGuarded` — guards as (key, state-req) pairs
named / base types     :class:`CBase`, :class:`CNamed`
function type          :class:`CFun` wrapping a :class:`~repro.core.effects.Signature`
variant type           :class:`CNamed` resolving to a variant declaration
existential ∃[N|C].t   :class:`CPacked` — an anonymous tracked value; the
                       key and its capability travel with the value and
                       are re-opened with a fresh name on unpacking
universal ∀[N].t       implicit — every signature is polymorphic in the
                       keys/states/types it mentions (§3.2)
key set C              :class:`~repro.core.capability.HeldKeys`
=====================  =====================================================

Key *references* inside types are either concrete :class:`Key` objects
(during flow checking) or named variables (:class:`KeyVarRef`) inside
declared signatures awaiting instantiation at a call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from .keys import DEFAULT_STATE, Key, State, StateVar, state_display

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .effects import Signature


@dataclass(frozen=True)
class KeyVarRef:
    """A key variable appearing in a declared signature (e.g. ``F``)."""

    name: str

    def __repr__(self) -> str:
        return f"'{self.name}"


KeyRef = Union[Key, KeyVarRef]


@dataclass(frozen=True)
class StateVarRef:
    """A state variable appearing in a declared signature (e.g. ``level``)."""

    name: str
    bound: Optional[str] = None

    def __repr__(self) -> str:
        return f"~{self.name}" + (f"<={self.bound}" if self.bound else "")


StateArgValue = Union[str, StateVar, StateVarRef]


@dataclass(frozen=True)
class TypeVarRef:
    """A type variable appearing in a declared signature (e.g. ``T``)."""

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


# ---------------------------------------------------------------------------
# State requirements on guards / effect preconditions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AnyState:
    """No constraint — any key state satisfies the guard."""

    def __repr__(self) -> str:
        return "*"


@dataclass(frozen=True)
class ExactState:
    """Key must be in exactly this state (or this symbolic state)."""

    state: StateArgValue

    def __repr__(self) -> str:
        return str(self.state)


@dataclass(frozen=True)
class AtMostState:
    """Bounded constraint ``(var <= bound)`` — §4.4.

    ``var`` names the state variable the pre-state binds; ``bound`` is
    a concrete state in some declared stateset.
    """

    var: str
    bound: str

    def __repr__(self) -> str:
        return f"({self.var}<={self.bound})"


StateReq = Union[AnyState, ExactState, AtMostState]

ANY_STATE = AnyState()


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

class CType:
    """Base class of internal checker types."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.show()

    def show(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class CBase(CType):
    name: str  # void, int, bool, byte, float, string, char

    def show(self) -> str:
        return self.name


VOID = CBase("void")
INT = CBase("int")
BOOL = CBase("bool")
BYTE = CBase("byte")
FLOAT = CBase("float")
STRING = CBase("string")
CHAR = CBase("char")
NULL_T = CBase("null")


@dataclass(frozen=True)
class CArray(CType):
    elem: CType

    def show(self) -> str:
        return f"{self.elem.show()}[]"


@dataclass(frozen=True)
class CArg:
    """One ``<...>`` argument of a named type: type, key or state."""

    kind: str                                   # "type" | "key" | "state"
    type: Optional[CType] = None
    key: Optional[KeyRef] = None
    state: Optional[StateArgValue] = None

    def show(self) -> str:
        if self.kind == "type":
            return self.type.show() if self.type else "?"
        if self.kind == "key":
            return repr(self.key)
        return state_display(self.state) if not isinstance(
            self.state, StateVarRef) else repr(self.state)


@dataclass(frozen=True)
class CNamed(CType):
    """A nominal type instantiated with arguments.

    Resolves (through the program context) to a struct, variant or
    abstract type.  ``KEVENT<K>``, ``opt_key<F>``, ``status<S>``,
    ``KIRQL<level>`` and plain ``FILE`` all land here.
    """

    name: str
    args: Tuple[CArg, ...] = ()

    def show(self) -> str:
        if self.args:
            return f"{self.name}<{', '.join(a.show() for a in self.args)}>"
        return self.name


@dataclass(frozen=True)
class CTypeVar(CType):
    """An occurrence of a declared type variable inside a signature."""

    name: str

    def show(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class CTracked(CType):
    """The singleton type s(key): a handle for the resource named by ``key``.

    ``inner`` is the payload type the held-key set associates with the
    key (``{key@st -> inner}``); it is duplicated here for convenience.
    In declared signatures ``key`` is a :class:`KeyVarRef`.
    """

    key: KeyRef
    inner: CType

    def show(self) -> str:
        return f"tracked({self.key!r}) {self.inner.show()}"


@dataclass(frozen=True)
class CPacked(CType):
    """An anonymous tracked type ∃[k | {k@state -> inner}]. s(k).

    Values of this type carry their key with them (§3.3); binding one
    unpacks it with a fresh key name.  ``state`` is the packed key's
    state, defaulting to the unique default state.
    """

    inner: CType
    state: StateReq = ANY_STATE

    def show(self) -> str:
        return f"tracked {self.inner.show()}"


@dataclass(frozen=True)
class CGuarded(CType):
    """A guarded type ``C |> inner`` — access needs every guard satisfied.

    Each guard is a (key, state requirement) pair.  ``R:point`` is
    ``CGuarded(((R, ANY),), point)``; ``paged<T>`` is
    ``CGuarded(((IRQL, AtMostState("level","APC_LEVEL")),), T)``.
    """

    guards: Tuple[Tuple[KeyRef, StateReq], ...]
    inner: CType

    def show(self) -> str:
        gs = ", ".join(f"{k!r}@{s!r}" for k, s in self.guards)
        return f"[{gs}]:{self.inner.show()}"


@dataclass(frozen=True)
class CFun(CType):
    """A function value (completion routines, nested functions)."""

    sig: "Signature"

    def show(self) -> str:
        return f"fn {self.sig.name}"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

NUMERIC = {INT, BYTE, FLOAT}


def strip_guards(ctype: CType) -> CType:
    """The type beneath any guard wrappers."""
    while isinstance(ctype, CGuarded):
        ctype = ctype.inner
    return ctype


def is_void(ctype: CType) -> bool:
    return isinstance(ctype, CBase) and ctype.name == "void"


def default_state_req() -> StateReq:
    return ExactState(DEFAULT_STATE)
