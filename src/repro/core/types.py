"""The internal type language (paper Figure 6).

The correspondence with the paper's grammar:

=====================  =====================================================
Paper (Figure 6)       Here
=====================  =====================================================
singleton type s(r)    :class:`CTracked` — a handle whose key is ``key``;
                       the held-key set carries the payload mapping
                       ``r@st -> T``
guarded type C |> t    :class:`CGuarded` — guards as (key, state-req) pairs
named / base types     :class:`CBase`, :class:`CNamed`
function type          :class:`CFun` wrapping a :class:`~repro.core.effects.Signature`
variant type           :class:`CNamed` resolving to a variant declaration
existential ∃[N|C].t   :class:`CPacked` — an anonymous tracked value; the
                       key and its capability travel with the value and
                       are re-opened with a fresh name on unpacking
universal ∀[N].t       implicit — every signature is polymorphic in the
                       keys/states/types it mentions (§3.2)
key set C              :class:`~repro.core.capability.HeldKeys`
=====================  =====================================================

Key *references* inside types are either concrete :class:`Key` objects
(during flow checking) or named variables (:class:`KeyVarRef`) inside
declared signatures awaiting instantiation at a call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from .keys import DEFAULT_STATE, Key, State, StateVar, state_display

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .effects import Signature


@dataclass(frozen=True)
class KeyVarRef:
    """A key variable appearing in a declared signature (e.g. ``F``)."""

    name: str

    def __repr__(self) -> str:
        return f"'{self.name}"


KeyRef = Union[Key, KeyVarRef]


@dataclass(frozen=True)
class StateVarRef:
    """A state variable appearing in a declared signature (e.g. ``level``)."""

    name: str
    bound: Optional[str] = None

    def __repr__(self) -> str:
        return f"~{self.name}" + (f"<={self.bound}" if self.bound else "")


StateArgValue = Union[str, StateVar, StateVarRef]


@dataclass(frozen=True)
class TypeVarRef:
    """A type variable appearing in a declared signature (e.g. ``T``)."""

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


# ---------------------------------------------------------------------------
# State requirements on guards / effect preconditions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AnyState:
    """No constraint — any key state satisfies the guard."""

    def __repr__(self) -> str:
        return "*"


@dataclass(frozen=True)
class ExactState:
    """Key must be in exactly this state (or this symbolic state)."""

    state: StateArgValue

    def __repr__(self) -> str:
        return str(self.state)


@dataclass(frozen=True)
class AtMostState:
    """Bounded constraint ``(var <= bound)`` — §4.4.

    ``var`` names the state variable the pre-state binds; ``bound`` is
    a concrete state in some declared stateset.
    """

    var: str
    bound: str

    def __repr__(self) -> str:
        return f"({self.var}<={self.bound})"


StateReq = Union[AnyState, ExactState, AtMostState]

ANY_STATE = AnyState()


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

class CType:
    """Base class of internal checker types."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.show()

    def show(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class CBase(CType):
    name: str  # void, int, bool, byte, float, string, char

    def show(self) -> str:
        return self.name


VOID = CBase("void")
INT = CBase("int")
BOOL = CBase("bool")
BYTE = CBase("byte")
FLOAT = CBase("float")
STRING = CBase("string")
CHAR = CBase("char")
NULL_T = CBase("null")


@dataclass(frozen=True)
class CArray(CType):
    elem: CType

    def show(self) -> str:
        return f"{self.elem.show()}[]"


@dataclass(frozen=True)
class CArg:
    """One ``<...>`` argument of a named type: type, key or state."""

    kind: str                                   # "type" | "key" | "state"
    type: Optional[CType] = None
    key: Optional[KeyRef] = None
    state: Optional[StateArgValue] = None

    def show(self) -> str:
        if self.kind == "type":
            return self.type.show() if self.type else "?"
        if self.kind == "key":
            return repr(self.key)
        return state_display(self.state) if not isinstance(
            self.state, StateVarRef) else repr(self.state)


@dataclass(frozen=True)
class CNamed(CType):
    """A nominal type instantiated with arguments.

    Resolves (through the program context) to a struct, variant or
    abstract type.  ``KEVENT<K>``, ``opt_key<F>``, ``status<S>``,
    ``KIRQL<level>`` and plain ``FILE`` all land here.
    """

    name: str
    args: Tuple[CArg, ...] = ()

    def show(self) -> str:
        if self.args:
            return f"{self.name}<{', '.join(a.show() for a in self.args)}>"
        return self.name


@dataclass(frozen=True)
class CTypeVar(CType):
    """An occurrence of a declared type variable inside a signature."""

    name: str

    def show(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class CTracked(CType):
    """The singleton type s(key): a handle for the resource named by ``key``.

    ``inner`` is the payload type the held-key set associates with the
    key (``{key@st -> inner}``); it is duplicated here for convenience.
    In declared signatures ``key`` is a :class:`KeyVarRef`.
    """

    key: KeyRef
    inner: CType

    def show(self) -> str:
        return f"tracked({self.key!r}) {self.inner.show()}"


@dataclass(frozen=True)
class CPacked(CType):
    """An anonymous tracked type ∃[k | {k@state -> inner}]. s(k).

    Values of this type carry their key with them (§3.3); binding one
    unpacks it with a fresh key name.  ``state`` is the packed key's
    state, defaulting to the unique default state.
    """

    inner: CType
    state: StateReq = ANY_STATE

    def show(self) -> str:
        return f"tracked {self.inner.show()}"


@dataclass(frozen=True)
class CGuarded(CType):
    """A guarded type ``C |> inner`` — access needs every guard satisfied.

    Each guard is a (key, state requirement) pair.  ``R:point`` is
    ``CGuarded(((R, ANY),), point)``; ``paged<T>`` is
    ``CGuarded(((IRQL, AtMostState("level","APC_LEVEL")),), T)``.
    """

    guards: Tuple[Tuple[KeyRef, StateReq], ...]
    inner: CType

    def show(self) -> str:
        gs = ", ".join(f"{k!r}@{s!r}" for k, s in self.guards)
        return f"[{gs}]:{self.inner.show()}"


@dataclass(frozen=True)
class CFun(CType):
    """A function value (completion routines, nested functions)."""

    sig: "Signature"

    def show(self) -> str:
        return f"fn {self.sig.name}"


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------

#: Process-wide intern table: structural description -> canonical CType.
#: Interned types make structural equality collapse to an identity
#: check on the checker's hot paths (declared-vs-actual matching,
#: signature instantiation, join comparisons).  Only *declaration-
#: ground* types are hash-consed — no concrete :class:`Key` objects,
#: no symbolic :class:`StateVar` states — so the table is bounded by
#: program text, not by per-check flow state; everything else passes
#: through :func:`intern_type` untouched.  The table never evicts
#: (eviction would invalidate the id-based child descriptions); the
#: cap is a backstop that degrades interning to the identity function.
_INTERN: Dict[object, CType] = {}
#: ids of the canonical objects (all kept alive by ``_INTERN``), so
#: re-interning an already-canonical type is O(1) instead of a walk.
_CANON_IDS: set = set()
_MAX_INTERN = 1 << 16


def _req_desc(req: StateReq):
    """Hashable description of a state requirement, or None if it
    mentions a symbolic state (never interned)."""
    if isinstance(req, AnyState):
        return "*"
    if isinstance(req, ExactState):
        if isinstance(req.state, StateVar):
            return None
        return ("=", req.state)
    return ("<=", req.var, req.bound)


def _intern(t: CType) -> Optional[CType]:
    """Canonical representative, or None when ``t`` is not internable.

    Children are interned first, so a parent's description can key on
    child *identity* — that is what makes repeated lookups O(shallow)
    instead of O(structure).
    """
    if id(t) in _CANON_IDS:
        return t
    cls = t.__class__
    if cls is CBase:
        desc = ("b", t.name)
    elif cls is CTypeVar:
        desc = ("tv", t.name)
    elif cls is CArray:
        elem = _intern(t.elem)
        if elem is None:
            return None
        t = CArray(elem)
        desc = ("a", id(elem))
    elif cls is CTracked:
        if not isinstance(t.key, KeyVarRef):
            return None
        inner = _intern(t.inner)
        if inner is None:
            return None
        t = CTracked(t.key, inner)
        desc = ("tr", t.key.name, id(inner))
    elif cls is CPacked:
        req = _req_desc(t.state)
        if req is None:
            return None
        inner = _intern(t.inner)
        if inner is None:
            return None
        t = CPacked(inner, t.state)
        desc = ("p", req, id(inner))
    elif cls is CGuarded:
        guards = []
        for key, greq in t.guards:
            if not isinstance(key, KeyVarRef):
                return None
            rdesc = _req_desc(greq)
            if rdesc is None:
                return None
            guards.append((key.name, rdesc))
        inner = _intern(t.inner)
        if inner is None:
            return None
        t = CGuarded(t.guards, inner)
        desc = ("g", tuple(guards), id(inner))
    elif cls is CNamed:
        args = []
        new_args = []
        for arg in t.args:
            if arg.kind == "type":
                at = _intern(arg.type)
                if at is None:
                    return None
                new_args.append(CArg("type", type=at))
                args.append(("t", id(at)))
            elif arg.kind == "key":
                if not isinstance(arg.key, KeyVarRef):
                    return None
                new_args.append(arg)
                args.append(("k", arg.key.name))
            else:
                if isinstance(arg.state, StateVar):
                    return None
                new_args.append(arg)
                args.append(("s", arg.state))
        if t.args:
            t = CNamed(t.name, tuple(new_args))
        desc = ("n", t.name, tuple(args))
    else:
        # CFun and anything future: signatures are identity-unique.
        return None
    canon = _INTERN.get(desc)
    if canon is not None:
        return canon
    if len(_INTERN) >= _MAX_INTERN:
        return None
    _INTERN[desc] = t
    _CANON_IDS.add(id(t))
    return t


def intern_type(t: CType) -> CType:
    """The canonical representative of a structurally-equal type.

    Hash-consing makes ``interned(a) is interned(b)`` equivalent to
    structural equality for declaration-ground types; flow-time types
    (concrete keys, symbolic states) are returned unchanged.
    """
    canon = _intern(t)
    return t if canon is None else canon


def intern_table_size() -> int:
    """How many canonical types the process-wide table holds."""
    return len(_INTERN)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

NUMERIC = {INT, BYTE, FLOAT}


def strip_guards(ctype: CType) -> CType:
    """The type beneath any guard wrappers."""
    while isinstance(ctype, CGuarded):
        ctype = ctype.inner
    return ctype


def is_void(ctype: CType) -> bool:
    return isinstance(ctype, CBase) and ctype.name == "void"


def default_state_req() -> StateReq:
    return ExactState(DEFAULT_STATE)
