"""The Vault protocol checker — flow-sensitive key/guard analysis (§3).

For each function definition the checker:

1. skolemises the signature's key/state variables and builds the entry
   held-key set from the effect clause's precondition (plus all global
   keys and the keys of tracked parameters);
2. walks the body in control-flow order, threading a :class:`FlowState`
   (held-key set + variable environment) through every statement —
   splitting at ``if``/``switch``, joining with the α-renaming
   abstraction of §3, and iterating loop bodies until the key set
   stabilises ("loop invariants inferred in a fixed number of
   iterations");
3. checks every access against its type guards, every call against its
   effect clause's precondition, and every exit against the declared
   postcondition — reporting dangling accesses (``KEY_NOT_HELD``),
   wrong states, duplications (double-free/double-acquire), leaks
   (``KEY_LEAKED``) and join mismatches exactly as the paper's Figures
   2, 4 and 5 describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..diagnostics import Code, Reporter, Span
from ..syntax import ast
from .capability import CapabilityError, HeldKeys, KeyInfo
from .effects import CoreEffect, CoreEffectItem, Signature, SigParam
from .elaborate import Elaborator, Scope
from .keys import (DEFAULT_STATE, Key, State, StateVar, fresh_key,
                   state_display, states_equal)
from .program import (CtorInfo, ProgramContext, StructInfo, VariantInfo,
                      signatures_alpha_equal)
from .subst import Subst
from .types import (ANY_STATE, AnyState, AtMostState, BOOL, CArg, CArray,
                    CBase, CFun, CGuarded, CNamed, CPacked, CTracked, CType,
                    CTypeVar, ExactState, INT, ExactState, KeyRef, KeyVarRef,
                    StateReq, StateVarRef, VOID, is_void, strip_guards)

MAX_LOOP_ITERATIONS = 4

NUMERIC_NAMES = {"int", "byte", "float"}


@dataclass
class VarInfo:
    """One variable in the flow-sensitive environment."""

    ctype: CType
    initialized: bool = True
    is_param: bool = False
    declared: Optional[CType] = None  # declared (guarded) type, if any

    def clone(self) -> "VarInfo":
        return VarInfo(self.ctype, self.initialized, self.is_param,
                       self.declared)


class FlowState:
    """Held-key set + variable environment at one program point."""

    def __init__(self, held: Optional[HeldKeys] = None,
                 variables: Optional[Dict[str, VarInfo]] = None,
                 reachable: bool = True):
        self.held = held if held is not None else HeldKeys()
        self.vars: Dict[str, VarInfo] = variables if variables is not None else {}
        self.reachable = reachable

    def clone(self) -> "FlowState":
        # VarInfo entries are replaced, never mutated, once stored in
        # ``vars`` (the checker builds fresh VarInfo objects on every
        # update), so clones share them and cloning is two dict copies.
        return FlowState(self.held.clone(), dict(self.vars),
                         self.reachable)


class _Renamer(Subst):
    """Applies a concrete key→key renaming over types (join abstraction)."""

    def __init__(self, mapping: Dict[Key, Key]):
        super().__init__()
        self.mapping = mapping

    def key(self, ref: KeyRef) -> KeyRef:
        if isinstance(ref, Key):
            return self.mapping.get(ref, ref)
        return super().key(ref)


def match_signatures(want: Signature, have: Signature,
                     subst: Subst) -> Optional[str]:
    """Unify two polymorphic function signatures.

    Used when a function value is passed where a function type is
    expected (completion routines §4.3, dispatch registration).  The
    ``want`` side may still contain unbound type variables (e.g. the
    extension type ``C`` of ``DRIVER_DISPATCH<C>``), which are bound
    into ``subst``.  Key/state variables of both sides are matched up
    to consistent renaming; concrete keys must match by identity.
    Returns ``None`` on success, else a description of the mismatch.
    """
    if len(want.params) != len(have.params):
        return "different arity"
    key_map: Dict[object, object] = {}
    state_map: Dict[object, object] = {}

    def match_key(wk, hk) -> bool:
        if isinstance(wk, Key) or isinstance(hk, Key):
            if isinstance(wk, Key) and isinstance(hk, Key):
                return wk is hk
            # One side concrete, the other a variable: map the variable.
            var, conc = (wk, hk) if isinstance(hk, Key) else (hk, wk)
            name = var.name if isinstance(var, KeyVarRef) else var
            prev = key_map.get(("v", name))
            if prev is None:
                key_map[("v", name)] = conc
                return True
            return prev is conc
        wn = wk.name if isinstance(wk, KeyVarRef) else wk
        hn = hk.name if isinstance(hk, KeyVarRef) else hk
        prev = key_map.get(("w", wn))
        if prev is None:
            key_map[("w", wn)] = hn
            return True
        return prev == hn

    def match_state_value(wv, hv) -> bool:
        w_var = isinstance(wv, (StateVarRef, StateVar))
        h_var = isinstance(hv, (StateVarRef, StateVar))
        if w_var or h_var:
            wn = getattr(wv, "name", wv)
            hn = getattr(hv, "name", hv)
            prev = state_map.get(("w", wn))
            if prev is None:
                state_map[("w", wn)] = hn
                return True
            return prev == hn
        return wv == hv

    def match_req(wr: StateReq, hr: StateReq) -> bool:
        if isinstance(wr, AnyState) and isinstance(hr, AnyState):
            return True
        if isinstance(wr, ExactState) and isinstance(hr, ExactState):
            return match_state_value(wr.state, hr.state)
        if isinstance(wr, AtMostState) and isinstance(hr, AtMostState):
            return wr.bound == hr.bound
        return False

    def match_type(wt: CType, ht: CType) -> bool:
        if wt is ht:
            # Interned declaration types collapse structural equality
            # to identity when neither side binds variables.
            return True
        if isinstance(wt, CTypeVar):
            return subst.bind_type(wt.name, ht)
        if isinstance(wt, CBase) and isinstance(ht, CBase):
            return wt.name == ht.name
        if isinstance(wt, CArray) and isinstance(ht, CArray):
            return match_type(wt.elem, ht.elem)
        if isinstance(wt, CTracked) and isinstance(ht, CTracked):
            return match_key(wt.key, ht.key) and \
                match_type(wt.inner, ht.inner)
        if isinstance(wt, CPacked) and isinstance(ht, CPacked):
            return match_req(wt.state, ht.state) and \
                match_type(wt.inner, ht.inner)
        if isinstance(wt, CGuarded) and isinstance(ht, CGuarded):
            if len(wt.guards) != len(ht.guards):
                return False
            for (wk, wr), (hk, hr) in zip(wt.guards, ht.guards):
                if not match_key(wk, hk) or not match_req(wr, hr):
                    return False
            return match_type(wt.inner, ht.inner)
        if isinstance(wt, CNamed) and isinstance(ht, CNamed):
            if wt.name != ht.name or len(wt.args) != len(ht.args):
                return False
            for wa, ha in zip(wt.args, ht.args):
                if wa.kind != ha.kind:
                    return False
                if wa.kind == "type" and not match_type(wa.type, ha.type):
                    return False
                if wa.kind == "key" and not match_key(wa.key, ha.key):
                    return False
                if wa.kind == "state" and \
                        not match_state_value(wa.state, ha.state):
                    return False
            return True
        if isinstance(wt, CFun) and isinstance(ht, CFun):
            return match_signatures(wt.sig, ht.sig, subst) is None
        return wt == ht

    for index, (wp, hp) in enumerate(zip(want.params, have.params)):
        if not match_type(subst.ctype(wp.type), hp.type):
            return f"parameter {index + 1} differs"
    if not match_type(subst.ctype(want.ret), have.ret):
        return "result type differs"

    if len(want.effect.items) != len(have.effect.items):
        return "effect clauses differ"
    for wi, hi in zip(want.effect.items, have.effect.items):
        if wi.mode != hi.mode:
            return "effect clauses differ"
        if not match_key(wi.key, hi.key):
            return f"effect key '{wi.key}' differs"
        if not match_req(wi.pre, hi.pre):
            return "effect precondition differs"
        wpost = wi.post if wi.post is not None else wi.pre
        hpost = hi.post if hi.post is not None else hi.pre
        if not match_req(wpost, hpost):
            return "effect postcondition differs"
    return None


def check_program(ctx: ProgramContext, reporter: Reporter,
                  join_abstraction: bool = True,
                  max_loop_iterations: int = MAX_LOOP_ITERATIONS) -> Reporter:
    """Check every function definition in the program.

    ``join_abstraction`` and ``max_loop_iterations`` exist for ablation
    experiments: disabling the α-renaming at joins (§3) or reducing the
    loop-invariant iteration budget makes the checker reject programs
    it otherwise accepts.
    """
    checker = Checker(ctx, reporter, join_abstraction=join_abstraction,
                      max_loop_iterations=max_loop_iterations)
    for qual, fundef in ctx.defined_functions():
        checker.check_function(qual, fundef)
    return reporter


def check_function_diagnostics(ctx: ProgramContext, qual: str,
                               fundef: ast.FunDef,
                               join_abstraction: bool = True,
                               max_loop_iterations: int = MAX_LOOP_ITERATIONS
                               ) -> list:
    """Diagnostics from flow-checking one function, in emission order.

    The unit of work of the incremental pipeline
    (:mod:`repro.pipeline`): equivalent to one iteration of
    :func:`check_program`'s loop, but collecting into a private
    reporter so results can be cached and merged deterministically.
    """
    reporter = Reporter()
    checker = Checker(ctx, reporter, join_abstraction=join_abstraction,
                      max_loop_iterations=max_loop_iterations)
    checker.check_function(qual, fundef)
    return reporter.diagnostics


class Checker:
    def __init__(self, ctx: ProgramContext, reporter: Reporter,
                 join_abstraction: bool = True,
                 max_loop_iterations: int = MAX_LOOP_ITERATIONS):
        self.ctx = ctx
        self.reporter = reporter
        self.elab = Elaborator(ctx, reporter)
        self.join_abstraction = join_abstraction
        self.max_loop_iterations = max_loop_iterations

    def check_function(self, qual: str, fundef: ast.FunDef) -> None:
        sig = self.ctx.functions.get(qual)
        if sig is None:
            return
        FnChecker(self, sig, fundef).run()


def satisfies(state: State, req: StateReq, statespace, subst: Subst) -> bool:
    """Does a key's current state meet a (substituted) requirement?

    Binds bounded-state variables in ``subst`` on success (§4.4's
    ``(level <= DISPATCH_LEVEL)`` captures the call-site level).
    """
    req = subst.state_req(req)
    if isinstance(req, AnyState):
        return True
    if isinstance(req, AtMostState):
        ok = statespace.leq(state, req.bound)
        if ok:
            subst.bind_state(req.var, state)
        return ok
    assert isinstance(req, ExactState)
    want = req.state
    if isinstance(want, StateVarRef):
        resolved = subst.states.get(want.name)
        if resolved is None:
            subst.bind_state(want.name, state)
            return True
        want = resolved
    return states_equal(state, want)


def req_state(req: StateReq, subst: Subst) -> State:
    """The state a post-requirement puts a key into."""
    req = subst.state_req(req)
    if isinstance(req, ExactState):
        want = req.state
        if isinstance(want, StateVarRef):
            resolved = subst.states.get(want.name)
            if resolved is not None:
                return resolved
            return StateVar(want.name)
        return want
    if isinstance(req, AtMostState):
        return StateVar(req.var, req.bound)
    # AnyState: nothing is known statically — a fresh symbolic state.
    return StateVar("s")


class FnChecker:
    """Checks one function definition."""

    def __init__(self, checker: Checker, sig: Signature, fundef: ast.FunDef,
                 outer: Optional["FnChecker"] = None):
        self.checker = checker
        self.ctx = checker.ctx
        self.reporter = checker.reporter
        self.elab = checker.elab
        self.sig = sig
        self.fundef = fundef
        self.outer = outer

        # Lexical bindings of key and state names to skolems/locals.
        parent_scope = outer.body_scope if outer else None
        self.body_scope = Scope(parent=parent_scope)
        self.body_scope.state_binders_ok = False

        self.state = FlowState()
        self.skolems: Dict[str, Key] = {}
        self.entry_subst = Subst()
        self.expected_exit: Dict[Key, object] = {}
        self.fresh_effect_keys: Dict[str, CoreEffectItem] = {}
        self.ret_type: CType = VOID
        self.entry_global_states: Dict[Key, State] = {}

    # ------------------------------------------------------------------
    # Entry / exit
    # ------------------------------------------------------------------

    def run(self) -> None:
        self._build_entry()
        self._check_block(self.fundef.body)
        if self.state.reachable:
            if not is_void(strip_guards(self.ret_type)):
                self.reporter.error(
                    Code.MISSING_RETURN,
                    f"function '{self.sig.name}' can fall off the end "
                    f"without returning a value", self.fundef.span)
            self._check_exit(self.state, self.fundef.span)

    def _build_entry(self) -> None:
        sig = self.sig
        subst = self.entry_subst

        # ``new K`` keys have no skolem: they are bound per return site
        # to the key of the returned value.
        fresh_vars = {item.key for item in sig.effect.items
                      if item.mode == "fresh" and isinstance(item.key, str)}
        for kv in sig.key_vars:
            if kv in fresh_vars:
                continue
            skol = fresh_key(kv, origin="param")
            self.skolems[kv] = skol
            subst.keys[kv] = skol
            self.body_scope.keys[kv] = skol

        for sv in sig.state_vars:
            var = StateVar(sv)
            subst.states.setdefault(sv, var)
            self.body_scope.states[sv] = StateVarRef(sv)

        effect = sig.effect

        # Global keys enter the held set with their effect pre-state (or
        # a fresh symbolic state when unmentioned).
        for gname, ginfo in self.ctx.global_keys.items():
            item = effect.item_for(gname)
            if item is not None and item.mode == "produce":
                self.expected_exit[ginfo.key] = req_state(item.post, subst)
                continue
            if item is not None and item.mode in ("keep", "consume"):
                state = self._pre_state(item.pre, subst, gname)
            else:
                state = StateVar(gname.lower())
            self.state.held.add(ginfo.key, state)
            self.entry_global_states[ginfo.key] = state
            if item is None or item.mode == "keep":
                post = (req_state(item.post, subst)
                        if item is not None and item.post is not None
                        else state)
                self.expected_exit[ginfo.key] = post
            else:  # consume
                self.expected_exit[ginfo.key] = None

        # Keys of tracked parameters / effect-mentioned key variables.
        held_vars: Dict[str, State] = {}
        for kv in sig.key_vars:
            item = effect.item_for(kv)
            if item is None:
                continue
            if item.mode == "fresh":
                self.fresh_effect_keys[kv] = item
                continue
            if item.mode == "produce":
                self.expected_exit[self.skolems[kv]] = req_state(
                    item.post, subst)
                continue
            state = self._pre_state(item.pre, subst, kv)
            held_vars[kv] = state
            if item.mode == "keep":
                post = (req_state(item.post, subst)
                        if item.post is not None else state)
                self.expected_exit[self.skolems[kv]] = post
            else:
                self.expected_exit[self.skolems[kv]] = None

        # Effect items over concrete keys closed over from an enclosing
        # function (nested functions, Figure 7's RegainIrp).
        for item in effect.items:
            if not isinstance(item.key, Key) or item.key.origin == "global":
                continue
            key = item.key
            if item.mode == "fresh":
                self.reporter.error(
                    Code.KEY_ESCAPES_SCOPE,
                    f"'new {key.display()}' cannot name an enclosing "
                    f"function's key", self.fundef.span)
                continue
            if item.mode == "produce":
                self.expected_exit[key] = req_state(item.post, subst)
                continue
            state = self._pre_state(item.pre, subst, key.name)
            if key not in self.state.held:
                self.state.held.add(key, state)
            if item.mode == "keep":
                post = (req_state(item.post, subst)
                        if item.post is not None else state)
                self.expected_exit[key] = post
            else:
                self.expected_exit[key] = None

        # Parameters: instantiate types with skolems, bind names, and
        # hold the keys of tracked parameters (implicitly kept when the
        # effect does not mention them).
        for param in sig.params:
            ptype = subst.ctype(param.type)
            ptype = self._enter_param(ptype, param, held_vars)
            if param.name:
                self.state.vars[param.name] = VarInfo(
                    ptype, initialized=True, is_param=True, declared=ptype)

        for kv, state in held_vars.items():
            skol = self.skolems[kv]
            if skol not in self.state.held:
                self.state.held.add(skol, state)

        self.ret_type = subst.ctype(sig.ret)

        # A return type may only name keys that come from parameters,
        # from 'new K' effect items, or from global declarations —
        # anything else would smuggle an unaccounted key to the caller.
        param_keys = self._key_vars_in_params(sig)
        for kv in self._key_vars_in_type(sig.ret):
            if kv in self.fresh_effect_keys or kv in param_keys:
                continue
            if sig.effect.item_for(kv) is not None:
                continue
            self.reporter.error(
                Code.KEY_ESCAPES_SCOPE,
                f"return type of '{sig.name}' names key '{kv}', which is "
                f"neither a parameter key nor introduced by a "
                f"'new {kv}' effect item", self.fundef.span)

    @staticmethod
    def _key_vars_in_params(sig: Signature) -> set:
        found = set()
        for param in sig.params:
            found |= FnChecker._key_vars_in_type(param.type)
        return found

    @staticmethod
    def _key_vars_in_type(ctype: CType) -> set:
        found = set()

        def walk(t: CType) -> None:
            if isinstance(t, CTracked):
                if isinstance(t.key, KeyVarRef):
                    found.add(t.key.name)
                walk(t.inner)
            elif isinstance(t, CPacked):
                walk(t.inner)
            elif isinstance(t, CGuarded):
                for k, _ in t.guards:
                    if isinstance(k, KeyVarRef):
                        found.add(k.name)
                walk(t.inner)
            elif isinstance(t, CArray):
                walk(t.elem)
            elif isinstance(t, CNamed):
                for arg in t.args:
                    if arg.kind == "key" and isinstance(arg.key, KeyVarRef):
                        found.add(arg.key.name)
                    elif arg.kind == "type" and arg.type is not None:
                        walk(arg.type)

        walk(ctype)
        return found

    def _enter_param(self, ptype: CType, param: SigParam,
                     held_vars: Dict[str, State]) -> CType:
        if isinstance(ptype, CTracked) and isinstance(ptype.key, Key):
            skol = ptype.key
            name = skol.name
            if skol not in self.state.held and name not in held_vars:
                # Implicit keep: held at entry and at exit, unchanged.
                state = StateVar(name)
                self.state.held.add(skol, state, payload=ptype.inner)
                self.expected_exit.setdefault(skol, state)
            elif name in held_vars:
                if skol not in self.state.held:
                    self.state.held.add(skol, held_vars[name],
                                        payload=ptype.inner)
                del held_vars[name]
            return ptype
        if isinstance(ptype, CPacked):
            # Anonymous tracked parameter: unpack on entry (§3.3); the
            # callee owns the key and must consume it before exit.
            key = fresh_key(param.name or "anon", origin="unpack")
            state = req_state(ptype.state, self.entry_subst)
            self.state.held.add(key, state, payload=ptype.inner)
            self.expected_exit[key] = None
            return CTracked(key, ptype.inner)
        return ptype

    def _pre_state(self, req: StateReq, subst: Subst, name: str) -> State:
        if isinstance(req, ExactState):
            value = subst.state_value(req.state) \
                if isinstance(req.state, StateVarRef) else req.state
            if isinstance(value, StateVarRef):
                return StateVar(value.name)
            return value
        if isinstance(req, AtMostState):
            var = StateVar(req.var, req.bound)
            subst.states[req.var] = var
            return var
        return StateVar(name.lower())

    def _check_exit(self, state: FlowState, span: Span) -> None:
        """Compare the held-key set at an exit against the declared
        postcondition; extra keys are leaks (Figure 2's ``leaky``)."""
        expected = self.expected_exit
        for key, info in list(state.held.items()):
            want = expected.get(key, "absent")
            if want == "absent":
                notes = []
                if key.span is not None:
                    notes.append(f"the resource was created at {key.span}")
                self.reporter.error(
                    Code.KEY_LEAKED,
                    f"key {key.display()} is still in the held-key set at "
                    f"the end of '{self.sig.name}' but its effect clause "
                    f"{self.sig.effect.show() or '[]'} does not allow it "
                    f"(resource leak)", span, notes=notes)
            elif want is None:
                self.reporter.error(
                    Code.POSTCONDITION_MISMATCH,
                    f"key {key.display()} should have been consumed by "
                    f"'{self.sig.name}' but is still held at exit", span)
            elif not states_equal(info.state, want):
                self.reporter.error(
                    Code.POSTCONDITION_MISMATCH,
                    f"key {key.display()} is in state "
                    f"{state_display(info.state)} at exit of "
                    f"'{self.sig.name}', but the effect clause promises "
                    f"{state_display(want)}", span)
        for key, want in expected.items():
            if want not in (None, "absent") and key not in state.held:
                self.reporter.error(
                    Code.POSTCONDITION_MISMATCH,
                    f"key {key.display()} must be in the held-key set when "
                    f"'{self.sig.name}' returns, but it is not", span)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _check_block(self, block: ast.Block) -> None:
        declared: List[str] = []
        saved_keys = dict(self.body_scope.keys)
        saved_states = dict(self.body_scope.states)
        for stmt in block.stmts:
            if not self.state.reachable:
                break
            self._check_stmt(stmt, declared)
        for name in declared:
            self.state.vars.pop(name, None)
        self.body_scope.keys = saved_keys
        self.body_scope.states = saved_states

    def _check_stmt(self, stmt: ast.Stmt, declared: List[str]) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, declared)
        elif isinstance(stmt, ast.LocalFun):
            self._check_local_fun(stmt, declared)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.IncDec):
            target = self.check_expr(stmt.target)
            self._require_numeric(target, stmt.target.span)
            self._require_lvalue(stmt.target)
        elif isinstance(stmt, ast.If):
            self._check_if(stmt)
        elif isinstance(stmt, ast.While):
            self._check_while(stmt)
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.Free):
            self._check_free(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            self._loop_exit(stmt)
        else:
            raise TypeError(f"unknown stmt {type(stmt).__name__}")

    # -- declarations ---------------------------------------------------------

    def _elab_local_type(self, ty: ast.Type) -> Tuple[CType, List[str], List[str]]:
        """Elaborate a local declaration's type; returns the core type
        plus the key / state names this declaration *binds* (e.g. ``R``
        in ``tracked(R) region rgn = Region.create()``)."""
        scope = Scope(parent=self.body_scope, implicit_keys=True)
        scope.state_binders_ok = True
        ctype = self.elab.elab_type(ty, scope)
        return ctype, list(scope.new_key_vars), list(scope.new_state_vars)

    def _check_var_decl(self, stmt: ast.VarDecl, declared: List[str]) -> None:
        if stmt.name in self.state.vars:
            self.reporter.error(Code.DUPLICATE_NAME,
                                f"variable '{stmt.name}' is already declared",
                                stmt.span)
        dtype, key_binders, state_binders = self._elab_local_type(stmt.type)

        if stmt.init is None:
            if key_binders:
                self.reporter.error(
                    Code.UNDEFINED_KEY,
                    f"declaration of '{stmt.name}' binds key(s) "
                    f"{', '.join(key_binders)} but has no initializer",
                    stmt.span)
            self.state.vars[stmt.name] = VarInfo(
                dtype, initialized=False, declared=dtype)
            declared.append(stmt.name)
            return

        expected = dtype if not (key_binders or state_binders) else None
        actual = self.check_expr(stmt.init, expected=expected)
        subst = Subst()
        var_type = self._match_declared(dtype, actual, subst, stmt.span)
        # Newly-bound key/state names become visible in this scope.
        for name in key_binders:
            key = subst.keys.get(name)
            if key is not None:
                self.body_scope.keys[name] = key
            else:
                self.reporter.error(
                    Code.UNDEFINED_KEY,
                    f"could not bind key '{name}' from the initializer of "
                    f"'{stmt.name}'", stmt.span)
        for name in state_binders:
            value = subst.states.get(name)
            if value is not None:
                self.body_scope.states[name] = value
        # Keep the *surface* declared type (with its binder variables):
        # re-assignment re-matches against it, so a ``tracked region``
        # variable may be re-bound to a fresh resource.
        self.state.vars[stmt.name] = VarInfo(
            var_type, initialized=True, declared=dtype)
        declared.append(stmt.name)

    def _match_declared(self, declared: CType, actual: CType, subst: Subst,
                        span: Span) -> CType:
        """Match a declared local type against its initializer's type,
        binding declaration-bound keys/states.  Returns the variable's
        flow type."""
        if isinstance(declared, CTracked):
            actual_s = strip_guards(actual)
            if not isinstance(actual_s, CTracked):
                self._mismatch(declared, actual, span)
                return declared
            if isinstance(declared.key, KeyVarRef):
                subst.bind_key(declared.key.name, actual_s.key)
            elif isinstance(declared.key, Key) and declared.key is not actual_s.key:
                self.reporter.error(
                    Code.TYPE_MISMATCH,
                    f"initializer is tracked by key "
                    f"{actual_s.key.display()}, not "
                    f"{declared.key.display()}", span)
            self._match_shape(declared.inner, actual_s.inner, subst, span)
            return actual_s
        if isinstance(declared, CPacked):
            actual_s = strip_guards(actual)
            if isinstance(actual_s, CTracked):
                self._match_shape(declared.inner, actual_s.inner, subst, span)
                return actual_s
            if isinstance(actual_s, CNamed):
                # A keyed-variant value (already wrapped by check_expr
                # for key-capturing variants) — compare directly.
                self._match_shape(declared.inner, actual_s, subst, span)
                return actual_s
            self._mismatch(declared, actual, span)
            return declared
        if isinstance(declared, CGuarded):
            # Bind declaration-bound guard keys: from a guarded
            # initializer positionally, or from a tracked initializer's
            # own key (``K:counters view = shared;`` — the guard *is*
            # the object's key).
            actual_s2 = strip_guards(actual)
            for (dk, _dreq) in declared.guards:
                if not isinstance(dk, KeyVarRef):
                    continue
                if isinstance(actual, CGuarded):
                    for (ak, _areq) in actual.guards:
                        if isinstance(ak, Key):
                            subst.bind_key(dk.name, ak)
                            break
                elif isinstance(actual_s2, CTracked) and \
                        isinstance(actual_s2.key, Key):
                    subst.bind_key(dk.name, actual_s2.key)
            inner = strip_guards(declared)
            actual_inner = actual_s2.inner \
                if isinstance(actual_s2, CTracked) and \
                not isinstance(inner, CTracked) else actual_s2
            self._match_shape(inner, actual_inner, subst, span)
            return subst.ctype(declared)
        self._match_shape(declared, strip_guards(actual), subst, span)
        return Subst(subst.keys, subst.states, subst.types).ctype(declared)

    def _match_shape(self, declared: CType, actual: CType, subst: Subst,
                     span: Span) -> None:
        """Structural matching for local declarations (keys/states bind)."""
        if declared is actual and not isinstance(declared, CTypeVar):
            # Hash-consed types: one object <=> structurally equal,
            # and with nothing to bind the match is trivially clean.
            return
        if isinstance(declared, CTypeVar):
            subst.bind_type(declared.name, actual)
            return
        if isinstance(declared, CBase) and isinstance(actual, CBase):
            if declared.name == actual.name:
                return
            if declared.name in NUMERIC_NAMES and actual.name in NUMERIC_NAMES:
                return
            self._mismatch(declared, actual, span)
            return
        if isinstance(declared, CArray) and isinstance(actual, CArray):
            self._match_shape(declared.elem, actual.elem, subst, span)
            return
        if isinstance(declared, CNamed) and isinstance(actual, CNamed):
            if declared.name != actual.name or \
                    len(declared.args) != len(actual.args):
                self._mismatch(declared, actual, span)
                return
            for da, aa in zip(declared.args, actual.args):
                if da.kind != aa.kind:
                    self._mismatch(declared, actual, span)
                    return
                if da.kind == "type":
                    self._match_shape(da.type, aa.type, subst, span)
                elif da.kind == "key":
                    if isinstance(da.key, KeyVarRef):
                        subst.bind_key(da.key.name, aa.key)
                    elif da.key is not aa.key:
                        self._mismatch(declared, actual, span)
                else:
                    if isinstance(da.state, StateVarRef):
                        subst.bind_state(da.state.name, aa.state)
                    elif not states_equal(da.state, aa.state) \
                            if not isinstance(aa.state, StateVarRef) \
                            else False:
                        self._mismatch(declared, actual, span)
            return
        if isinstance(declared, CTracked) and isinstance(actual, CTracked):
            if isinstance(declared.key, KeyVarRef):
                subst.bind_key(declared.key.name, actual.key)
            self._match_shape(declared.inner, actual.inner, subst, span)
            return
        if isinstance(declared, CPacked) and isinstance(actual, CTracked):
            self._match_shape(declared.inner, actual.inner, subst, span)
            return
        if isinstance(declared, CFun) and isinstance(actual, CFun):
            want = subst.signature(declared.sig)
            if match_signatures(want, actual.sig, subst) is not None:
                self._mismatch(declared, actual, span)
            return
        if isinstance(actual, CBase) and actual.name == "null":
            return
        if declared != actual:
            self._mismatch(declared, actual, span)

    def _mismatch(self, declared: CType, actual: CType, span: Span) -> None:
        self.reporter.error(
            Code.TYPE_MISMATCH,
            f"expected type {declared.show()}, found {actual.show()}", span)

    # -- nested functions --------------------------------------------------------

    def _check_local_fun(self, stmt: ast.LocalFun, declared: List[str]) -> None:
        fundef = stmt.fundef
        sig = self.elab.elab_signature(
            fundef.decl, module=None, is_extern=False, outer=self.body_scope)
        nested = FnChecker(self.checker, sig, fundef, outer=self)
        # The nested function may capture enclosing variables, but only
        # non-linear ones: values whose types carry no capabilities.
        nested.captured_env = {
            name: info for name, info in self.state.vars.items()
            if info.initialized and self._capturable(info.ctype)}
        nested.run()
        self.state.vars[fundef.decl.name] = VarInfo(
            CFun(sig), initialized=True)
        declared.append(fundef.decl.name)

    @staticmethod
    def _capturable(ctype: CType) -> bool:
        return not isinstance(ctype, (CTracked, CPacked, CGuarded))

    # -- assignment ---------------------------------------------------------------

    def _check_assign(self, stmt: ast.Assign) -> None:
        if stmt.op in ("+=", "-="):
            target = self.check_expr(stmt.target)
            self._require_numeric(target, stmt.target.span)
            value = self.check_expr(stmt.value)
            self._require_numeric(value, stmt.value.span)
            self._require_lvalue(stmt.target)
            return

        # Plain assignment.  Assigning to a simple name may re-bind a
        # tracked variable to a new key.
        if isinstance(stmt.target, ast.Name):
            info = self.state.vars.get(stmt.target.ident)
            if info is None:
                if self._capture_lookup(stmt.target.ident) is not None:
                    self.reporter.error(
                        Code.NOT_ASSIGNABLE,
                        f"cannot assign to captured variable "
                        f"'{stmt.target.ident}' from a nested function",
                        stmt.span)
                    self.check_expr(stmt.value)
                    return
                self.reporter.error(Code.UNDEFINED_NAME,
                                    f"undefined variable '{stmt.target.ident}'",
                                    stmt.span)
                self.check_expr(stmt.value)
                return
            expected = info.declared if info.declared is not None else None
            if isinstance(expected, CGuarded):
                # Writing through a guarded variable is an access.
                for gkey, greq in expected.guards:
                    self._check_guard(gkey, greq, stmt.span,
                                      f"'{stmt.target.ident}'")
            value = self.check_expr(stmt.value, expected=expected)
            if expected is not None:
                subst = Subst()
                new_type = self._match_declared(expected, value, subst,
                                                stmt.span)
            else:
                new_type = value
            # VarInfo entries are shared between flow-state clones;
            # replace instead of mutating.
            self.state.vars[stmt.target.ident] = VarInfo(
                new_type, True, info.is_param, info.declared)
            return

        # Field / index assignment.
        target = self._check_lvalue_slot(stmt.target)
        value = self.check_expr(stmt.value, expected=target)
        if target is not None:
            if isinstance(target, CPacked):
                # Packing a tracked value into an anonymous slot
                # consumes its key (§2.4's anonymisation).
                actual = strip_guards(value)
                if isinstance(actual, CTracked):
                    self._consume_key(actual.key, target.state, stmt.span)
                else:
                    self._mismatch(target, value, stmt.span)
            else:
                self._match_shape(strip_guards(target), strip_guards(value),
                                  Subst(), stmt.span)

    def _check_lvalue_slot(self, target: ast.Expr) -> Optional[CType]:
        """Type of a field/index assignment slot (access checks included)."""
        if isinstance(target, ast.FieldAccess):
            return self._field_type(target, writing=True)
        if isinstance(target, ast.Index):
            obj = self.check_expr(target.obj)
            idx = self.check_expr(target.index)
            self._require_numeric(idx, target.index.span)
            stripped = strip_guards(obj)
            if isinstance(stripped, CTracked):
                stripped = stripped.inner
            if isinstance(stripped, CArray):
                return stripped.elem
            self.reporter.error(Code.TYPE_MISMATCH,
                                f"cannot index a value of type {obj.show()}",
                                target.span)
            return None
        self.reporter.error(Code.NOT_ASSIGNABLE,
                            "this expression is not assignable", target.span)
        self.check_expr(target)
        return None

    def _require_lvalue(self, target: ast.Expr) -> None:
        if not isinstance(target, (ast.Name, ast.FieldAccess, ast.Index)):
            self.reporter.error(Code.NOT_ASSIGNABLE,
                                "this expression is not assignable",
                                target.span)

    # -- control flow -----------------------------------------------------------

    def _check_if(self, stmt: ast.If) -> None:
        cond = self.check_expr(stmt.cond)
        self._require_bool(cond, stmt.cond.span)
        before = self.state.clone()
        self._check_stmt_scoped(stmt.then)
        then_state = self.state
        self.state = before
        if stmt.orelse is not None:
            self._check_stmt_scoped(stmt.orelse)
        else_state = self.state
        self.state = self._join(then_state, else_state, stmt.span)

    def _check_stmt_scoped(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        else:
            declared: List[str] = []
            self._check_stmt(stmt, declared)
            for name in declared:
                self.state.vars.pop(name, None)

    def _check_while(self, stmt: ast.While) -> None:
        saved_loop = getattr(self, "_loop_states", None)
        entry = self.state
        for _ in range(self.checker.max_loop_iterations):
            self._loop_states = {"break": [], "continue": []}
            head = entry.clone()
            self.state = head
            cond = self.check_expr(stmt.cond)
            self._require_bool(cond, stmt.cond.span)
            after_cond = self.state.clone()
            self._check_stmt_scoped(stmt.body)
            back = self.state
            self._last_join_mismatch = False
            for cont in self._loop_states["continue"]:
                back = self._join(back, cont, stmt.span, quiet=True)
            new_entry = self._join(entry.clone(), back, stmt.span, quiet=True)
            if self._last_join_mismatch:
                # The held-key set at the back edge cannot be reconciled
                # with the loop entry: no invariant exists.
                self.reporter.error(
                    Code.LOOP_NO_INVARIANT,
                    "the held-key set changes across iterations of this "
                    "loop (a key is created or consumed in the body "
                    "without being balanced)", stmt.span)
                self.state = after_cond
                self._loop_states = saved_loop
                return
            if self._states_compatible(entry, new_entry):
                exit_state = after_cond
                for brk in self._loop_states["break"]:
                    exit_state = self._join(exit_state, brk, stmt.span)
                self.state = exit_state
                self._loop_states = saved_loop
                return
            entry = new_entry
        self.reporter.error(
            Code.LOOP_NO_INVARIANT,
            "the held-key set does not stabilise around this loop "
            "(a key is created or consumed on each iteration)", stmt.span)
        self.state = entry
        self._loop_states = saved_loop

    def _loop_exit(self, stmt: ast.Stmt) -> None:
        loop = getattr(self, "_loop_states", None)
        if loop is None:
            self.reporter.error(
                Code.PARSE_ERROR,
                f"'{'break' if isinstance(stmt, ast.Break) else 'continue'}' "
                f"outside a loop", stmt.span)
            return
        kind = "break" if isinstance(stmt, ast.Break) else "continue"
        loop[kind].append(self.state.clone())
        self.state.reachable = False

    def _states_compatible(self, a: FlowState, b: FlowState) -> bool:
        """Loop-convergence test: are two states equal up to renaming
        of keys related through variable bindings (the §3 abstraction)?"""
        if not a.reachable or not b.reachable:
            return True
        if len(a.held) != len(b.held):
            return False
        mapping: Dict[Key, Key] = {}
        for name, info in a.vars.items():
            other = b.vars.get(name)
            if other is None or info.initialized != other.initialized:
                return False
            ta, tb = info.ctype, other.ctype
            if isinstance(ta, CTracked) and isinstance(tb, CTracked) and \
                    isinstance(ta.key, Key) and isinstance(tb.key, Key):
                bound = mapping.get(ta.key)
                if bound is not None and bound is not tb.key:
                    return False
                mapping[ta.key] = tb.key
        for key, info in a.held.items():
            other_key = mapping.get(key, key)
            other_info = b.held.get(other_key)
            if other_info is None:
                return False
            sa, sb = info.state, other_info.state
            if isinstance(sa, StateVar) and isinstance(sb, StateVar):
                continue   # both symbolic: compatible for convergence
            if not states_equal(sa, sb):
                return False
        return True

    # -- joins --------------------------------------------------------------------

    def _join(self, a: FlowState, b: FlowState, span: Span,
              quiet: bool = False) -> FlowState:
        if not a.reachable:
            return b
        if not b.reachable:
            return a
        # α-abstraction over local key names (§3): keys that differ
        # between the branches but are bound to the same variable are
        # renamed to a common fresh key.
        mapping_b: Dict[Key, Key] = {}
        mapping_a: Dict[Key, Key] = {}
        if not self.checker.join_abstraction:
            a_vars = {}
        else:
            a_vars = a.vars
        for name, info_a in a_vars.items():
            info_b = b.vars.get(name)
            if info_b is None:
                continue
            ta, tb = info_a.ctype, info_b.ctype
            if isinstance(ta, CTracked) and isinstance(tb, CTracked):
                if ta.key is not tb.key:
                    if ta.key in a.held and tb.key in b.held:
                        sa = a.held.get(ta.key)
                        sb = b.held.get(tb.key)
                        if states_equal(sa.state, sb.state):
                            joined = fresh_key(ta.key.name, origin="join")
                            mapping_a[ta.key] = joined
                            mapping_b[tb.key] = joined
        if mapping_a:
            a = self._apply_renaming(a, mapping_a)
        if mapping_b:
            b = self._apply_renaming(b, mapping_b)

        if not a.held.same_shape(b.held):
            self._last_join_mismatch = True
            if not quiet:
                self.reporter.error(
                    Code.JOIN_MISMATCH,
                    "held-key sets disagree at this control-flow join: "
                    + a.held.diff_summary(b.held),
                    span,
                    notes=[f"one path holds {a.held.show()}",
                           f"the other holds {b.held.show()}"])
            # Recovery: keep the intersection so checking continues.
            merged = HeldKeys()
            for key, info in a.held.items():
                other = b.held.get(key)
                if other is not None and states_equal(info.state, other.state):
                    merged.add(key, info.state, info.payload)
            result = FlowState(merged, {}, True)
        else:
            result = FlowState(a.held.clone(), {}, True)

        for name, info_a in a.vars.items():
            info_b = b.vars.get(name)
            if info_b is None:
                continue
            merged_info = info_a.clone()
            merged_info.initialized = info_a.initialized and info_b.initialized
            result.vars[name] = merged_info
        return result

    @staticmethod
    def _apply_renaming(state: FlowState, mapping: Dict[Key, Key]) -> FlowState:
        renamer = _Renamer(mapping)
        new = FlowState(state.held.rename(mapping), {}, state.reachable)
        for name, info in state.vars.items():
            clone = info.clone()
            clone.ctype = renamer.ctype(clone.ctype)
            if clone.declared is not None:
                clone.declared = renamer.ctype(clone.declared)
            new.vars[name] = clone
        return new

    # -- switch -------------------------------------------------------------------

    def _check_switch(self, stmt: ast.Switch) -> None:
        scrut = self.check_expr(stmt.scrutinee)
        stripped = strip_guards(scrut)

        variant_type: Optional[CNamed] = None
        if isinstance(stripped, CTracked):
            inner = stripped.inner
            if isinstance(inner, CNamed) and self.ctx.variant(inner.name):
                variant_type = inner
                # Switching on a tracked variant consumes its key; the
                # constructors' captured keys come back per-case.
                self._consume_key(stripped.key, ANY_STATE, stmt.span)
                if isinstance(stmt.scrutinee, ast.Name):
                    info = self.state.vars.get(stmt.scrutinee.ident)
                    if info is not None:
                        self.state.vars[stmt.scrutinee.ident] = VarInfo(
                            info.ctype, False, info.is_param, info.declared)
        elif isinstance(stripped, CNamed) and self.ctx.variant(stripped.name):
            variant_type = stripped

        if variant_type is None:
            self.reporter.error(
                Code.NOT_A_VARIANT,
                f"switch scrutinee has type {scrut.show()}, which is not a "
                f"variant", stmt.scrutinee.span)
            for case in stmt.cases:
                saved = self.state.clone()
                for s in case.body:
                    self._check_stmt_scoped(s)
                self.state = saved
            return

        vinfo = self.ctx.variant(variant_type.name)
        subst = self._variant_subst(vinfo, variant_type)

        before = self.state
        results: List[FlowState] = []
        covered: List[str] = []
        has_default = False
        for case in stmt.cases:
            self.state = before.clone()
            if case.pattern.ctor is None:
                has_default = True
                remaining = [c for c in vinfo.ctors if c.name not in covered]
                for c in remaining:
                    if c.key_attach or any(isinstance(t, (CPacked, CTracked))
                                           for t in c.arg_types):
                        self.reporter.error(
                            Code.BAD_PATTERN,
                            f"'default' cannot stand in for constructor "
                            f"'{c.name}', which captures keys", case.span)
            else:
                cinfo = vinfo.ctor(case.pattern.ctor)
                if cinfo is None:
                    self.reporter.error(
                        Code.UNDEFINED_CONSTRUCTOR,
                        f"variant '{vinfo.name}' has no constructor "
                        f"'{case.pattern.ctor}'", case.span)
                    continue
                covered.append(cinfo.name)
                self._enter_case(cinfo, case, subst)
            declared: List[str] = []
            for s in case.body:
                if not self.state.reachable:
                    break
                self._check_stmt(s, declared)
            for name in declared:
                self.state.vars.pop(name, None)
            if case.pattern.ctor is not None:
                for b in case.pattern.binders:
                    if b is not None:
                        self.state.vars.pop(b, None)
            results.append(self.state)

        if not has_default:
            missing = [c.name for c in vinfo.ctors if c.name not in covered]
            if missing:
                self.reporter.error(
                    Code.NONEXHAUSTIVE_SWITCH,
                    f"switch does not cover constructor(s) "
                    f"{', '.join(repr(m) for m in missing)} of variant "
                    f"'{vinfo.name}'", stmt.span)

        if not results:
            return
        joined = results[0]
        for other in results[1:]:
            joined = self._join(joined, other, stmt.span)
        self.state = joined

    def _variant_subst(self, vinfo: VariantInfo, vtype: CNamed) -> Subst:
        subst = Subst()
        for (kind, pname), arg in zip(vinfo.params, vtype.args):
            if kind == "key" and isinstance(arg.key, Key):
                subst.keys[pname] = arg.key
            elif kind == "state":
                subst.states[pname] = arg.state
            elif kind == "type" and arg.type is not None:
                subst.types[pname] = arg.type
        return subst

    def _enter_case(self, cinfo: CtorInfo, case: ast.Case,
                    subst: Subst) -> None:
        # Restore the constructor's captured keys (pattern matching
        # recovers static knowledge from the dynamic value, §2.1).
        for kname, req in cinfo.key_attach:
            key = subst.keys.get(kname)
            if not isinstance(key, Key):
                self.reporter.error(
                    Code.ANONYMOUS_KEY,
                    f"cannot recover key parameter '{kname}' of constructor "
                    f"'{cinfo.name}' — it is not instantiated with a named "
                    f"key here", case.span)
                continue
            state = req_state(req, subst)
            try:
                self.state.held.add(key, state)
            except CapabilityError:
                self.reporter.error(
                    Code.KEY_DUPLICATED,
                    f"matching '{cinfo.name}' would introduce key "
                    f"{key.display()} twice", case.span)

        binders = case.pattern.binders
        if binders and len(binders) != len(cinfo.arg_types):
            self.reporter.error(
                Code.BAD_PATTERN,
                f"constructor '{cinfo.name}' has {len(cinfo.arg_types)} "
                f"argument(s), pattern binds {len(binders)}", case.span)
        for binder, arg_t in zip(binders, cinfo.arg_types):
            inst = subst.ctype(arg_t)
            if binder is None:
                # Discarding an anonymous tracked component would lose
                # its key irrecoverably; flag it as a leak-by-pattern.
                if isinstance(inst, (CPacked, CTracked)):
                    self.reporter.error(
                        Code.KEY_LEAKED,
                        f"pattern discards a tracked component of "
                        f"'{cinfo.name}' (its key would be lost)", case.span)
                continue
            if isinstance(inst, CPacked):
                key = fresh_key(binder, origin="unpack", span=case.span)
                state = req_state(inst.state, subst)
                self.state.held.add(key, state, payload=inst.inner)
                inst = CTracked(key, inst.inner)
            self.state.vars[binder] = VarInfo(inst, initialized=True)

    # -- return / free -------------------------------------------------------------

    def _check_return(self, stmt: ast.Return) -> None:
        declared_ret = self.ret_type
        if stmt.value is None:
            if not is_void(strip_guards(declared_ret)):
                self.reporter.error(
                    Code.TYPE_MISMATCH,
                    f"'{self.sig.name}' must return a value of type "
                    f"{declared_ret.show()}", stmt.span)
            state = self.state
            self._check_exit(state, stmt.span)
            self.state.reachable = False
            return

        value = self.check_expr(stmt.value, expected=declared_ret)
        self._coerce_return(declared_ret, value, stmt.span)
        self._check_exit(self.state, stmt.span)
        self.state.reachable = False

    def _coerce_return(self, declared: CType, actual: CType,
                       span: Span) -> None:
        actual_s = strip_guards(actual)
        if isinstance(declared, CTracked) and \
                isinstance(declared.key, KeyVarRef):
            kv = declared.key.name
            item = self.fresh_effect_keys.get(kv)
            if item is None:
                self.reporter.error(
                    Code.KEY_ESCAPES_SCOPE,
                    f"return type mentions key '{kv}' but the effect clause "
                    f"has no 'new {kv}' item", span)
                return
            if not isinstance(actual_s, CTracked):
                self._mismatch(declared, actual, span)
                return
            subst = Subst()
            info = self.state.held.get(actual_s.key)
            if info is None:
                self.reporter.error(
                    Code.KEY_NOT_HELD,
                    f"cannot return {actual_s.key.display()}: its key is "
                    f"not in the held-key set", span)
                return
            if item.post is not None and not satisfies(
                    info.state, item.post, self.ctx.statespace, subst):
                self.reporter.error(
                    Code.KEY_WRONG_STATE,
                    f"returned key {actual_s.key.display()} is in state "
                    f"{state_display(info.state)}, the effect promises "
                    f"{item.post!r}", span)
            self.state.held.remove(actual_s.key)
            self._match_shape(declared.inner, actual_s.inner, Subst(), span)
            return
        if isinstance(declared, CPacked):
            if not isinstance(actual_s, CTracked):
                self._mismatch(declared, actual, span)
                return
            info = self.state.held.get(actual_s.key)
            if info is None:
                self.reporter.error(
                    Code.KEY_NOT_HELD,
                    f"cannot pack {actual_s.key.display()} into the return "
                    f"value: its key is not held", span)
                return
            subst = Subst()
            if not satisfies(info.state, declared.state,
                             self.ctx.statespace, subst):
                self.reporter.error(
                    Code.KEY_WRONG_STATE,
                    f"returned key is in state {state_display(info.state)}, "
                    f"the return type requires {declared.state!r}", span)
            self.state.held.remove(actual_s.key)
            self._match_shape(declared.inner, actual_s.inner, Subst(), span)
            return
        self._match_shape(strip_guards(declared), actual_s, Subst(), span)

    def _check_free(self, stmt: ast.Free) -> None:
        target = self.check_expr(stmt.target)
        stripped = strip_guards(target)
        if not isinstance(stripped, CTracked):
            self.reporter.error(
                Code.BAD_FREE,
                f"free requires a tracked value, found {target.show()}",
                stmt.target.span)
            return
        inner = stripped.inner
        if isinstance(inner, CNamed):
            decl = self.ctx.type_decl(inner.name)
            if decl is not None and decl.is_abstract:
                self.reporter.error(
                    Code.ABSTRACT_TYPE_USE,
                    f"cannot free a value of abstract type '{inner.name}' "
                    f"(its module must provide a release operation)",
                    stmt.span)
                return
            vinfo = self.ctx.variant(inner.name)
            if vinfo is not None and vinfo.captures_keys:
                self.reporter.error(
                    Code.BAD_FREE,
                    f"cannot free a value of variant type '{inner.name}' "
                    f"which may capture keys (switch on it instead)",
                    stmt.span)
                return
        # The key removal is the whole story: any later use of the
        # variable fails the KEY_NOT_HELD check (it still *names* the
        # freed object, exactly as in the paper's aliasing model).
        self._consume_key(stripped.key, ANY_STATE, stmt.span)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def check_expr(self, expr: ast.Expr,
                   expected: Optional[CType] = None,
                   as_reference: bool = False) -> CType:
        """Type an expression, enforcing guards.

        With ``as_reference`` the *resulting* value's own guards are not
        checked here: the expression is being passed somewhere that
        declares the guarded type itself (a guarded parameter), so the
        guard obligation travels with it instead of being discharged at
        this program point.  Dereferences along the way are still
        checked.
        """
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return CBase("float")
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.StringLit):
            return CBase("string")
        if isinstance(expr, ast.CharLit):
            return CBase("char")
        if isinstance(expr, ast.NullLit):
            return CBase("null")
        if isinstance(expr, ast.Name):
            return self._check_name(expr, as_reference)
        if isinstance(expr, ast.FieldAccess):
            result = self._field_type(expr, writing=False,
                                      as_reference=as_reference)
            return result if result is not None else INT
        if isinstance(expr, ast.Index):
            return self._check_index(expr)
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr)
        if isinstance(expr, ast.CtorApp):
            return self._check_ctor_app(expr, expected)
        if isinstance(expr, ast.New):
            return self._check_new(expr)
        if isinstance(expr, ast.ArrayLit):
            return self._check_array_lit(expr)
        raise TypeError(f"unknown expr {type(expr).__name__}")

    def _capture_lookup(self, name: str) -> Optional[VarInfo]:
        captured = getattr(self, "captured_env", None)
        if captured is not None and name in captured:
            return captured[name]
        return None

    def _check_name(self, expr: ast.Name,
                    as_reference: bool = False) -> CType:
        info = self.state.vars.get(expr.ident)
        if info is None:
            info = self._capture_lookup(expr.ident)
        if info is None:
            # A top-level function used as a value (e.g. registering a
            # dispatch routine).
            sig = self.ctx.function(expr.ident)
            if sig is not None:
                return CFun(sig)
            self.reporter.error(Code.UNDEFINED_NAME,
                                f"undefined variable '{expr.ident}'",
                                expr.span)
            return INT
        if not info.initialized:
            self.reporter.error(
                Code.UNDEFINED_NAME,
                f"variable '{expr.ident}' may be used before it is "
                f"assigned (or after its value was consumed)", expr.span)
            return info.ctype
        if not as_reference:
            self._check_access(info.ctype, expr.span, what=f"'{expr.ident}'")
        return info.ctype

    def _check_access(self, ctype: CType, span: Span, what: str) -> None:
        """Enforce type guards: every guard key must be held in a
        satisfying state, and a tracked value's own key must be held."""
        if isinstance(ctype, CGuarded):
            for key, req in ctype.guards:
                self._check_guard(key, req, span, what)
            self._check_access(ctype.inner, span, what)
            return
        if isinstance(ctype, CTracked):
            if isinstance(ctype.key, Key) and ctype.key not in self.state.held:
                self.reporter.error(
                    Code.KEY_NOT_HELD,
                    f"cannot access {what}: its key "
                    f"{ctype.key.display()} is not in the held-key set "
                    f"(the resource may have been released or its ownership "
                    f"transferred)", span)

    def _check_guard(self, key: KeyRef, req: StateReq, span: Span,
                     what: str) -> None:
        if not isinstance(key, Key):
            self.reporter.error(
                Code.KEY_NOT_HELD,
                f"cannot access {what}: guard key '{key!r}' is not "
                f"resolvable here", span)
            return
        info = self.state.held.get(key)
        if info is None:
            self.reporter.error(
                Code.KEY_NOT_HELD,
                f"cannot access {what}: guard key {key.display()} is not "
                f"in the held-key set", span)
            return
        subst = Subst()
        if not satisfies(info.state, req, self.ctx.statespace, subst):
            self.reporter.error(
                Code.KEY_WRONG_STATE,
                f"cannot access {what}: guard key {key.display()} is in "
                f"state {state_display(info.state)}, which does not satisfy "
                f"{req!r}", span)

    def _field_type(self, expr: ast.FieldAccess, writing: bool,
                    as_reference: bool = False) -> Optional[CType]:
        obj = self.check_expr(expr.obj)
        stripped = strip_guards(obj)
        if isinstance(stripped, CTracked):
            stripped = stripped.inner
        if not isinstance(stripped, CNamed):
            self.reporter.error(
                Code.NOT_A_STRUCT,
                f"cannot access field '{expr.field}' of a value of type "
                f"{obj.show()}", expr.span)
            return None
        sinfo = self.ctx.struct(stripped.name)
        if sinfo is None:
            self.reporter.error(
                Code.NOT_A_STRUCT,
                f"type '{stripped.name}' is not a struct", expr.span)
            return None
        ftype = sinfo.field_type(expr.field)
        if ftype is None:
            self.reporter.error(
                Code.NO_SUCH_FIELD,
                f"struct '{stripped.name}' has no field '{expr.field}'",
                expr.span)
            return None
        subst = Subst()
        for (kind, pname), arg in zip(sinfo.params, stripped.args):
            if kind == "type" and arg.type is not None:
                subst.types[pname] = arg.type
            elif kind == "key" and isinstance(arg.key, Key):
                subst.keys[pname] = arg.key
            elif kind == "state":
                subst.states[pname] = arg.state
        inst = subst.ctype(ftype)
        if isinstance(inst, CPacked) and not writing:
            self.reporter.error(
                Code.TRACKED_COPY,
                f"cannot read anonymous tracked field '{expr.field}' "
                f"(reading would duplicate its key — store a keyed variant "
                f"instead)", expr.span)
            return inst.inner
        if not writing:
            if not as_reference:
                self._check_access(inst, expr.span,
                                   what=f"field '{expr.field}'")
        else:
            if isinstance(inst, CGuarded):
                for key, req in inst.guards:
                    self._check_guard(key, req, expr.span,
                                      f"field '{expr.field}'")
        return inst

    def _check_index(self, expr: ast.Index) -> CType:
        obj = self.check_expr(expr.obj)
        idx = self.check_expr(expr.index)
        self._require_numeric(idx, expr.index.span)
        stripped = strip_guards(obj)
        if isinstance(stripped, CTracked):
            stripped = stripped.inner
        if isinstance(stripped, CArray):
            return stripped.elem
        if isinstance(stripped, CBase) and stripped.name == "string":
            return CBase("char")
        self.reporter.error(Code.TYPE_MISMATCH,
                            f"cannot index a value of type {obj.show()}",
                            expr.span)
        return INT

    def _check_unary(self, expr: ast.Unary) -> CType:
        operand = self.check_expr(expr.operand)
        if expr.op == "!":
            self._require_bool(operand, expr.operand.span)
            return BOOL
        self._require_numeric(operand, expr.operand.span)
        return strip_guards(operand)

    def _check_binary(self, expr: ast.Binary) -> CType:
        left = strip_guards(self.check_expr(expr.left))
        right = strip_guards(self.check_expr(expr.right))
        op = expr.op
        if op in ("&&", "||"):
            self._require_bool(left, expr.left.span)
            self._require_bool(right, expr.right.span)
            return BOOL
        if op in ("==", "!="):
            return BOOL
        if op in ("<", ">", "<=", ">="):
            self._require_comparable(left, expr.left.span)
            self._require_comparable(right, expr.right.span)
            return BOOL
        # Arithmetic; ``+`` also concatenates strings.
        if op == "+" and isinstance(left, CBase) and left.name == "string":
            return CBase("string")
        self._require_numeric(left, expr.left.span)
        self._require_numeric(right, expr.right.span)
        if (isinstance(left, CBase) and left.name == "float") or \
                (isinstance(right, CBase) and right.name == "float"):
            return CBase("float")
        return INT

    def _require_numeric(self, ctype: CType, span: Span) -> None:
        stripped = strip_guards(ctype)
        if not (isinstance(stripped, CBase)
                and stripped.name in NUMERIC_NAMES):
            self.reporter.error(Code.TYPE_MISMATCH,
                                f"expected a numeric value, found "
                                f"{ctype.show()}", span)

    def _require_comparable(self, ctype: CType, span: Span) -> None:
        stripped = strip_guards(ctype)
        if not (isinstance(stripped, CBase)
                and (stripped.name in NUMERIC_NAMES
                     or stripped.name in ("char", "string"))):
            self.reporter.error(Code.TYPE_MISMATCH,
                                f"expected an ordered value, found "
                                f"{ctype.show()}", span)

    def _require_bool(self, ctype: CType, span: Span) -> None:
        stripped = strip_guards(ctype)
        if not (isinstance(stripped, CBase) and stripped.name == "bool"):
            self.reporter.error(Code.TYPE_MISMATCH,
                                f"expected a bool, found {ctype.show()}",
                                span)

    # -- calls -------------------------------------------------------------------

    def _resolve_callee(self, fn: ast.Expr) -> Optional[Signature]:
        if isinstance(fn, ast.Name):
            info = self.state.vars.get(fn.ident) or \
                self._capture_lookup(fn.ident)
            if info is not None:
                stripped = strip_guards(info.ctype)
                if isinstance(stripped, CFun):
                    return stripped.sig
                self.reporter.error(
                    Code.NOT_A_FUNCTION,
                    f"'{fn.ident}' is not a function", fn.span)
                return None
            sig = self.ctx.function(fn.ident)
            if sig is not None:
                return sig
            self.reporter.error(Code.UNDEFINED_NAME,
                                f"undefined function '{fn.ident}'", fn.span)
            return None
        if isinstance(fn, ast.FieldAccess) and isinstance(fn.obj, ast.Name):
            mod = fn.obj.ident
            if mod in self.ctx.modules:
                sig = self.ctx.function(fn.field, module=mod)
                if sig is not None:
                    return sig
                self.reporter.error(
                    Code.UNDEFINED_NAME,
                    f"module '{mod}' has no function '{fn.field}'", fn.span)
                return None
        self.reporter.error(Code.NOT_A_FUNCTION,
                            "this expression cannot be called", fn.span)
        return None

    def _check_call(self, expr: ast.Call) -> CType:
        sig = self._resolve_callee(expr.fn)
        if sig is None:
            for arg in expr.args:
                self.check_expr(arg)
            return INT
        if len(expr.args) != len(sig.params):
            self.reporter.error(
                Code.ARITY_MISMATCH,
                f"'{sig.qualified_name}' expects {len(sig.params)} "
                f"argument(s), got {len(expr.args)}", expr.span)
            for arg in expr.args:
                self.check_expr(arg)
            return strip_guards(sig.ret) if isinstance(sig.ret, CBase) else INT

        subst = Subst()
        consumed: List[Tuple[Key, Span]] = []
        for param, arg in zip(sig.params, expr.args):
            arg_t = self.check_expr(
                arg, expected=self._concrete_or_none(subst.ctype(param.type)),
                as_reference=True)
            self._match_param(param.type, arg_t, subst, arg.span, consumed)

        # Anonymous tracked arguments transfer ownership: consume now.
        for key, span in consumed:
            self._consume_key(key, ANY_STATE, span)

        # Tracked parameters the effect clause does not mention are
        # implicitly kept: their keys must be held across the call.
        self._check_implicit_keeps(sig, subst, expr.span)
        self._apply_effect(sig, subst, expr.span)
        ret = subst.ctype(sig.ret)
        return self._materialise_result(ret, expr.span)

    @staticmethod
    def _concrete_or_none(ctype: CType) -> Optional[CType]:
        """Only propagate fully-instantiated expected types."""
        def concrete(t: CType) -> bool:
            if isinstance(t, (CTypeVar,)):
                return False
            if isinstance(t, CTracked):
                return isinstance(t.key, Key) and concrete(t.inner)
            if isinstance(t, CPacked):
                return concrete(t.inner)
            if isinstance(t, CGuarded):
                return all(isinstance(k, Key) for k, _ in t.guards) \
                    and concrete(t.inner)
            if isinstance(t, CNamed):
                for a in t.args:
                    if a.kind == "type" and not concrete(a.type):
                        return False
                    if a.kind == "key" and not isinstance(a.key, Key):
                        return False
                return True
            if isinstance(t, CArray):
                return concrete(t.elem)
            return True
        return ctype if concrete(ctype) else None

    def _match_param(self, declared: CType, actual: CType, subst: Subst,
                     span: Span, consumed: List[Tuple[Key, Span]]) -> None:
        """Match one argument against a declared parameter type,
        instantiating the signature's variables."""
        actual_s = strip_guards(actual)
        declared = subst.ctype(declared)
        # A guarded value crossing into an unguarded context is an
        # access: discharge its guards here.  (Into a guarded parameter
        # the obligation travels instead.)
        if isinstance(actual, CGuarded) and \
                not isinstance(declared, (CGuarded, CTypeVar)):
            for gkey, greq in actual.guards:
                self._check_guard(gkey, greq, span, "this argument")
        if isinstance(declared, CTracked):
            if not isinstance(actual_s, CTracked):
                self._mismatch(declared, actual, span)
                return
            if isinstance(declared.key, KeyVarRef) and \
                    not isinstance(actual_s.key, Key):
                # Error recovery: the argument's key never resolved.
                self._match_param(declared.inner, actual_s.inner, subst,
                                  span, consumed)
                return
            if isinstance(declared.key, KeyVarRef):
                if not subst.bind_key(declared.key.name, actual_s.key):
                    self.reporter.error(
                        Code.TYPE_MISMATCH,
                        f"key parameter '{declared.key.name}' is already "
                        f"bound to "
                        f"{subst.keys[declared.key.name].display()}, but "
                        f"this argument is tracked by "
                        f"{actual_s.key.display()}", span)
            elif isinstance(declared.key, Key):
                if declared.key is not actual_s.key:
                    self.reporter.error(
                        Code.TYPE_MISMATCH,
                        f"argument must be tracked by key "
                        f"{declared.key.display()}, found "
                        f"{actual_s.key.display()}", span)
            self._match_param(declared.inner, actual_s.inner, subst, span,
                              consumed)
            return
        if isinstance(declared, CPacked):
            if not isinstance(actual_s, CTracked):
                self._mismatch(declared, actual, span)
                return
            info = self.state.held.get(actual_s.key)
            if info is not None and not isinstance(declared.state, AnyState):
                if not satisfies(info.state, declared.state,
                                 self.ctx.statespace, subst):
                    self.reporter.error(
                        Code.KEY_WRONG_STATE,
                        f"argument key {actual_s.key.display()} is in state "
                        f"{state_display(info.state)}, the parameter "
                        f"requires {declared.state!r}", span)
            self._match_param(declared.inner, actual_s.inner, subst, span,
                              consumed)
            consumed.append((actual_s.key, span))
            return
        if isinstance(declared, CGuarded):
            for (dk, dreq) in declared.guards:
                if not isinstance(dk, KeyVarRef):
                    continue
                if isinstance(actual, CGuarded):
                    for (ak, _areq) in actual.guards:
                        if isinstance(ak, Key):
                            subst.bind_key(dk.name, ak)
                            break
                elif isinstance(actual_s, CTracked) and \
                        isinstance(actual_s.key, Key):
                    # A tracked value may flow into a guarded view: the
                    # guard becomes its own key.
                    subst.bind_key(dk.name, actual_s.key)
            inner_actual = actual_s.inner \
                if isinstance(actual_s, CTracked) and \
                not isinstance(strip_guards(declared.inner), CTracked) \
                else actual_s
            self._match_param(declared.inner, inner_actual, subst, span,
                              consumed)
            return
        if isinstance(declared, CTypeVar):
            subst.bind_type(declared.name, actual_s)
            return
        if isinstance(declared, CNamed):
            if not isinstance(actual_s, CNamed) or \
                    declared.name != actual_s.name or \
                    len(declared.args) != len(actual_s.args):
                if isinstance(actual_s, CBase) and actual_s.name == "null":
                    return
                self._mismatch(declared, actual, span)
                return
            for da, aa in zip(declared.args, actual_s.args):
                if da.kind == "key":
                    if isinstance(da.key, KeyVarRef) and \
                            isinstance(aa.key, Key):
                        subst.bind_key(da.key.name, aa.key)
                    elif isinstance(da.key, Key) and da.key is not aa.key:
                        self._mismatch(declared, actual, span)
                elif da.kind == "state":
                    if isinstance(da.state, StateVarRef):
                        subst.bind_state(da.state.name, aa.state)
                    elif isinstance(aa.state, StateVarRef):
                        pass
                    elif not states_equal(da.state, aa.state):
                        self._mismatch(declared, actual, span)
                else:
                    self._match_param(da.type, aa.type, subst, span, consumed)
            return
        if isinstance(declared, CArray):
            if isinstance(actual_s, CArray):
                self._match_param(declared.elem, actual_s.elem, subst, span,
                                  consumed)
            elif isinstance(actual_s, CBase) and actual_s.name == "null":
                pass
            else:
                self._mismatch(declared, actual, span)
            return
        if isinstance(declared, CFun):
            if not isinstance(actual_s, CFun):
                self._mismatch(declared, actual, span)
                return
            want = subst.signature(declared.sig)
            problem = match_signatures(want, actual_s.sig, subst)
            if problem is not None:
                self.reporter.error(
                    Code.TYPE_MISMATCH,
                    f"function argument has signature {actual_s.sig.show()}, "
                    f"expected {want.show()} ({problem})", span)
            return
        if isinstance(declared, CBase):
            if isinstance(actual_s, CBase):
                if declared.name == actual_s.name:
                    return
                if declared.name in NUMERIC_NAMES and \
                        actual_s.name in NUMERIC_NAMES:
                    return
                if actual_s.name == "null":
                    return
            self._mismatch(declared, actual, span)
            return
        self._mismatch(declared, actual, span)

    def _check_implicit_keeps(self, sig: Signature, subst: Subst,
                              span: Span) -> None:
        for param in sig.params:
            ptype = strip_guards(param.type)
            if not isinstance(ptype, CTracked):
                continue
            if isinstance(ptype.key, Key):
                key: Optional[Key] = ptype.key
                name: object = ptype.key
            else:
                name = ptype.key.name
                key = subst.keys.get(ptype.key.name)
            if sig.effect.item_for(name) is not None:
                continue
            if key is not None and key not in self.state.held:
                self.reporter.error(
                    Code.KEY_NOT_HELD,
                    f"cannot call '{sig.qualified_name}': key "
                    f"{key.display()} of its tracked parameter "
                    f"'{param.name or '?'}' is not in the held-key set",
                    span)

    def _apply_effect(self, sig: Signature, subst: Subst, span: Span) -> None:
        for item in sig.effect.items:
            if isinstance(item.key, Key):
                key: Optional[Key] = item.key
            else:
                key = subst.keys.get(item.key)
                if key is None:
                    ginfo = self.ctx.global_key(item.key)
                    if ginfo is not None:
                        key = ginfo.key
            if key is None and item.mode == "fresh":
                key = fresh_key(item.key, origin="local", span=span)
                subst.keys[item.key] = key
                state = req_state(item.post, subst) \
                    if item.post is not None else DEFAULT_STATE
                try:
                    self.state.held.add(key, state)
                except CapabilityError:
                    pass
                continue
            if key is None:
                self.reporter.error(
                    Code.UNDEFINED_KEY,
                    f"cannot determine which key '{item.key}' of "
                    f"'{sig.qualified_name}' refers to at this call", span)
                continue

            if not isinstance(key, Key):
                continue   # unresolved after earlier errors

            if item.mode in ("keep", "consume"):
                info = self.state.held.get(key)
                if info is None:
                    self.reporter.error(
                        Code.KEY_CONSUMED_MISSING,
                        f"cannot call '{sig.qualified_name}': key "
                        f"{key.display()} is not in the held-key set "
                        f"(precondition {sig.effect.show()})", span)
                    continue
                if not satisfies(info.state, item.pre, self.ctx.statespace,
                                 subst):
                    self.reporter.error(
                        Code.KEY_WRONG_STATE,
                        f"cannot call '{sig.qualified_name}': key "
                        f"{key.display()} is in state "
                        f"{state_display(info.state)}, which does not "
                        f"satisfy the precondition {item.pre!r}", span)
                    # Continue with the transition anyway (error recovery).
                if item.mode == "consume":
                    self.state.held.remove(key)
                elif item.post is not None:
                    self.state.held.set_state(key, req_state(item.post,
                                                             subst))
            elif item.mode == "produce":
                state = req_state(item.post, subst) \
                    if item.post is not None else DEFAULT_STATE
                try:
                    self.state.held.add(key, state)
                except CapabilityError:
                    self.reporter.error(
                        Code.KEY_DUPLICATED,
                        f"calling '{sig.qualified_name}' would introduce "
                        f"key {key.display()} twice into the held-key set "
                        f"(already held — e.g. acquiring a lock twice)",
                        span)
            elif item.mode == "fresh":
                state = req_state(item.post, subst) \
                    if item.post is not None else DEFAULT_STATE
                try:
                    self.state.held.add(key, state)
                except CapabilityError:
                    self.reporter.error(
                        Code.KEY_DUPLICATED,
                        f"fresh key {key.display()} already held", span)

    def _materialise_result(self, ret: CType, span: Span) -> CType:
        """Post-process a call's result type: record payloads for fresh
        tracked results and unpack anonymous tracked results."""
        if isinstance(ret, CTracked) and isinstance(ret.key, Key):
            info = self.state.held.get(ret.key)
            if info is not None and info.payload is None:
                self.state.held.set_payload(ret.key, ret.inner)
            return ret
        if isinstance(ret, CPacked):
            key = fresh_key("r", origin="unpack", span=span)
            state = req_state(ret.state, Subst())
            self.state.held.add(key, state, payload=ret.inner)
            return CTracked(key, ret.inner)
        if isinstance(ret, CTracked) and isinstance(ret.key, KeyVarRef):
            self.reporter.error(
                Code.UNDEFINED_KEY,
                f"could not instantiate result key '{ret.key.name}'", span)
            return ret.inner
        return ret

    # -- constructors and allocation ---------------------------------------------

    def _check_ctor_app(self, expr: ast.CtorApp,
                        expected: Optional[CType]) -> CType:
        cinfo = self.ctx.ctor(expr.name)
        if cinfo is None:
            self.reporter.error(Code.UNDEFINED_CONSTRUCTOR,
                                f"unknown constructor '{expr.name}'",
                                expr.span)
            for a in expr.args:
                self.check_expr(a)
            return INT
        vinfo = self.ctx.variant(cinfo.variant)
        subst = Subst()

        # Instantiate from the expected type, if we have one.
        expected_s = strip_guards(expected) if expected is not None else None
        if isinstance(expected_s, (CTracked, CPacked)):
            expected_s = expected_s.inner if isinstance(expected_s, CTracked) \
                else expected_s.inner
        if isinstance(expected_s, CNamed) and expected_s.name == vinfo.name:
            for (kind, pname), arg in zip(vinfo.params, expected_s.args):
                if kind == "key" and isinstance(arg.key, Key):
                    subst.keys.setdefault(pname, arg.key)
                elif kind == "state":
                    subst.states.setdefault(pname, arg.state)
                elif kind == "type" and arg.type is not None:
                    subst.types.setdefault(pname, arg.type)

        # Explicit key arguments: ``'SomeKey{F}`` — positional against
        # the constructor's key attachments.
        if expr.keys:
            if len(expr.keys) != len(cinfo.key_attach):
                self.reporter.error(
                    Code.ARITY_MISMATCH,
                    f"constructor '{cinfo.name}' attaches "
                    f"{len(cinfo.key_attach)} key(s), got {len(expr.keys)}",
                    expr.span)
            for kname, (pname, _req) in zip(expr.keys, cinfo.key_attach):
                resolved = self.body_scope.lookup_key(kname)
                if resolved is None:
                    gk = self.ctx.global_key(kname)
                    resolved = gk.key if gk else None
                if not isinstance(resolved, Key):
                    self.reporter.error(Code.UNDEFINED_KEY,
                                        f"unknown key '{kname}'", expr.span)
                    continue
                subst.keys[pname] = resolved

        # Arguments.
        if len(expr.args) != len(cinfo.arg_types):
            self.reporter.error(
                Code.ARITY_MISMATCH,
                f"constructor '{cinfo.name}' takes {len(cinfo.arg_types)} "
                f"argument(s), got {len(expr.args)}", expr.span)
        consumed: List[Tuple[Key, Span]] = []
        for decl_t, arg in zip(cinfo.arg_types, expr.args):
            arg_t = self.check_expr(
                arg, expected=self._concrete_or_none(subst.ctype(decl_t)),
                as_reference=True)
            self._match_param(decl_t, arg_t, subst, arg.span, consumed)
        for key, kspan in consumed:
            self._consume_key(key, ANY_STATE, kspan)

        # Capture the attached keys: they leave the held-key set and
        # travel with the value (§2.1's keyed variants).
        for (pname, req) in cinfo.key_attach:
            key = subst.keys.get(pname)
            if not isinstance(key, Key):
                self.reporter.error(
                    Code.UNDEFINED_KEY,
                    f"constructor '{cinfo.name}' needs key parameter "
                    f"'{pname}' — write '{cinfo.name}{{K}}' or provide an "
                    f"expected type", expr.span)
                continue
            info = self.state.held.get(key)
            if info is None:
                self.reporter.error(
                    Code.KEY_NOT_HELD,
                    f"constructor '{cinfo.name}' captures key "
                    f"{key.display()}, which is not in the held-key set",
                    expr.span)
                continue
            if not satisfies(info.state, req, self.ctx.statespace, subst):
                self.reporter.error(
                    Code.KEY_WRONG_STATE,
                    f"constructor '{cinfo.name}' captures key "
                    f"{key.display()} at state {req!r}, but it is in state "
                    f"{state_display(info.state)}", expr.span)
            self.state.held.remove(key)

        # Build the resulting variant type.
        cargs: List[CArg] = []
        complete = True
        for (kind, pname) in vinfo.params:
            if kind == "key":
                key = subst.keys.get(pname)
                if key is None:
                    complete = False
                    key = KeyVarRef(pname)
                cargs.append(CArg("key", key=key))
            elif kind == "state":
                state = subst.states.get(pname)
                if state is None:
                    complete = False
                    state = StateVarRef(pname)
                cargs.append(CArg("state", state=state))
            else:
                t = subst.types.get(pname)
                if t is None:
                    complete = False
                    t = CTypeVar(pname)
                cargs.append(CArg("type", type=t))
        if not complete:
            self.reporter.error(
                Code.BAD_TYPE_ARGUMENT,
                f"cannot infer all parameters of variant '{vinfo.name}' for "
                f"constructor '{cinfo.name}' (add an expected type)",
                expr.span)
        result = CNamed(vinfo.name, tuple(cargs))

        if vinfo.captures_keys:
            # Values of key-capturing variants are linear: wrap them in
            # a fresh tracked key so duplication is impossible.
            key = fresh_key(expr.name.lower(), origin="local", span=expr.span)
            self.state.held.add(key, DEFAULT_STATE, payload=result)
            return CTracked(key, result)
        return result

    def _check_new(self, expr: ast.New) -> CType:
        if not isinstance(expr.type, ast.NamedType):
            self.reporter.error(Code.TYPE_MISMATCH,
                                "allocation requires a struct type",
                                expr.span)
            return INT
        sinfo = self.ctx.struct(expr.type.name)
        if sinfo is None:
            self.reporter.error(
                Code.NOT_A_STRUCT,
                f"cannot allocate unknown struct '{expr.type.name}'",
                expr.span)
            for i in expr.inits:
                self.check_expr(i.value)
            return INT

        # Instantiate the struct's parameters from explicit type
        # arguments (``new tracked fdo_data<SK> {...}``).
        subst = Subst()
        struct_args: Tuple[CArg, ...] = ()
        if expr.type.args:
            scope = Scope(parent=self.body_scope)
            declared = self.elab.elab_type(expr.type, scope)
            if isinstance(declared, CNamed):
                struct_args = declared.args
                for (kind, pname), arg in zip(sinfo.params, declared.args):
                    if kind == "key" and isinstance(arg.key, Key):
                        subst.keys[pname] = arg.key
                    elif kind == "state":
                        subst.states[pname] = arg.state
                    elif kind == "type" and arg.type is not None:
                        subst.types[pname] = arg.type
        elif sinfo.params:
            self.reporter.error(
                Code.ARITY_MISMATCH,
                f"struct '{sinfo.name}' takes {len(sinfo.params)} "
                f"parameter(s); write 'new {sinfo.name}<...>'", expr.span)

        seen = set()
        for init in expr.inits:
            ftype = sinfo.field_type(init.name)
            if ftype is not None:
                ftype = subst.ctype(ftype)
            if ftype is None:
                self.reporter.error(
                    Code.NO_SUCH_FIELD,
                    f"struct '{sinfo.name}' has no field '{init.name}'",
                    init.span)
                self.check_expr(init.value)
                continue
            seen.add(init.name)
            value_t = self.check_expr(init.value)
            consumed: List[Tuple[Key, Span]] = []
            self._match_param(ftype, value_t, subst, init.span, consumed)
            for key, kspan in consumed:
                self._consume_key(key, ANY_STATE, kspan)
        missing = [name for name, _ in sinfo.fields if name not in seen]
        if missing:
            self.reporter.error(
                Code.TYPE_MISMATCH,
                f"allocation of '{sinfo.name}' does not initialise "
                f"field(s) {', '.join(missing)}", expr.span)

        struct_t = CNamed(sinfo.name, struct_args)
        if expr.tracked:
            key = fresh_key(sinfo.name[0].upper(), origin="local",
                            span=expr.span)
            self.state.held.add(key, DEFAULT_STATE, payload=struct_t)
            return CTracked(key, struct_t)
        if expr.region is not None:
            rgn = self.check_expr(expr.region)
            rgn_s = strip_guards(rgn)
            if isinstance(rgn_s, CTracked):
                return CGuarded(((rgn_s.key, ANY_STATE),), struct_t)
            if isinstance(rgn_s, CNamed):
                # An untracked arena (e.g. after erasure): the object is
                # allocated but carries no guard — a plain-C arena API.
                return struct_t
            self.reporter.error(
                Code.NOT_TRACKED,
                f"region allocation requires a region, found {rgn.show()}",
                expr.region.span)
            return struct_t
        return struct_t

    def _check_array_lit(self, expr: ast.ArrayLit) -> CType:
        elem_t: CType = INT
        for i, elem in enumerate(expr.elems):
            t = strip_guards(self.check_expr(elem))
            if i == 0:
                elem_t = t
        return CArray(elem_t)

    # -- key plumbing -------------------------------------------------------------

    def _consume_key(self, key: KeyRef, req: StateReq, span: Span) -> None:
        if not isinstance(key, Key):
            self.reporter.error(Code.UNDEFINED_KEY,
                                f"cannot resolve key {key!r}", span)
            return
        info = self.state.held.get(key)
        if info is None:
            self.reporter.error(
                Code.KEY_NOT_HELD,
                f"key {key.display()} is not in the held-key set", span)
            return
        subst = Subst()
        if not satisfies(info.state, req, self.ctx.statespace, subst):
            self.reporter.error(
                Code.KEY_WRONG_STATE,
                f"key {key.display()} is in state "
                f"{state_display(info.state)}, which does not satisfy "
                f"{req!r}", span)
        self.state.held.remove(key)
