"""Elaboration of surface syntax into the core type language (§3).

The elaborator translates surface types and function signatures into
the internal types of :mod:`repro.core.types`, performing:

* resolution of names to statesets, global keys, bound key/state/type
  variables, and declared types;
* *implicit polymorphism*: key and state names first referenced in a
  signature are generalised ("Key names such as K are bound when first
  referenced", §2.1 fn. 3) — ``void fclose(tracked(F) FILE) [-F]`` needs
  no explicit ``<key F>``;
* alias expansion with cycle detection (``guarded_int<F>`` →
  ``F:int``, ``paged<T>`` → ``(IRQL@(level<=APC_LEVEL)):T``);
* effect-clause elaboration into :class:`~repro.core.effects.CoreEffect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..diagnostics import Code, Reporter, Span
from ..syntax import ast
from .effects import CoreEffect, CoreEffectItem, Signature, SigParam
from .keys import DEFAULT_STATE, Key, StateVar
from .types import (ANY_STATE, AtMostState, CArg, CArray, CBase, CFun,
                    CGuarded, CNamed, CPacked, CTracked, CType, CTypeVar,
                    ExactState, KeyRef, KeyVarRef, StateArgValue, StateReq,
                    StateVarRef, VOID, intern_type)

BASE_TYPES = {
    "void": CBase("void"), "int": CBase("int"), "bool": CBase("bool"),
    "byte": CBase("byte"), "float": CBase("float"),
    "string": CBase("string"), "char": CBase("char"),
}


class Scope:
    """Lexically-scoped bindings for key, state and type variables.

    ``keys`` maps a key name to its meaning here — a :class:`KeyVarRef`
    while elaborating a declaration, or a concrete :class:`Key` while
    elaborating types inside a function body or expanding an alias.
    """

    def __init__(self, parent: Optional["Scope"] = None,
                 implicit_keys: bool = False):
        self.parent = parent
        self.keys: Dict[str, KeyRef] = {}
        self.states: Dict[str, StateArgValue] = {}
        self.types: Dict[str, CType] = {}
        self.implicit_keys = implicit_keys
        self.state_binders_ok = False
        self.new_key_vars: List[str] = []
        self.new_state_vars: List[str] = []

    def lookup_key(self, name: str) -> Optional[KeyRef]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.keys:
                return scope.keys[name]
            scope = scope.parent
        return None

    def lookup_state(self, name: str) -> Optional[StateArgValue]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.states:
                return scope.states[name]
            scope = scope.parent
        return None

    def lookup_type(self, name: str) -> Optional[CType]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.types:
                return scope.types[name]
            scope = scope.parent
        return None

    def bind_implicit_key(self, name: str) -> KeyVarRef:
        ref = KeyVarRef(name)
        self.keys[name] = ref
        self.new_key_vars.append(name)
        return ref

    def bind_state_var(self, name: str, bound: Optional[str]) -> StateVarRef:
        ref = StateVarRef(name, bound)
        self.states[name] = ref
        if name not in self.new_state_vars:
            self.new_state_vars.append(name)
        return ref


class Elaborator:
    """Translates surface types/signatures to core types.

    ``ctx`` is a :class:`repro.core.program.ProgramContext` (tables of
    declared types, keys, statesets); errors go to ``reporter``.
    """

    def __init__(self, ctx, reporter: Reporter):
        self.ctx = ctx
        self.reporter = reporter
        self._expanding: Set[str] = set()

    # -- types --------------------------------------------------------------

    def elab_type(self, ty: ast.Type, scope: Scope) -> CType:
        # Declaration-ground results are hash-consed process-wide, so
        # structurally equal elaborated types are one object and the
        # checker's declared-vs-actual comparisons hit identity fast
        # paths; flow-time types pass through intern_type unchanged.
        return intern_type(self._elab_type(ty, scope))

    def _elab_type(self, ty: ast.Type, scope: Scope) -> CType:
        if isinstance(ty, ast.BaseType):
            return BASE_TYPES[ty.name]
        if isinstance(ty, ast.ArrayType):
            return CArray(self.elab_type(ty.elem, scope))
        if isinstance(ty, ast.TrackedType):
            inner = self.elab_type(ty.inner, scope)
            if ty.key is None:
                state = self._state_req(ty.state, scope) if ty.state else ANY_STATE
                return CPacked(inner, state)
            key = self.resolve_key(ty.key, scope, ty.span)
            return CTracked(key, inner)
        if isinstance(ty, ast.GuardedType):
            key = self.resolve_key(ty.key, scope, ty.span)
            req = self._state_req(ty.state, scope) if ty.state else ANY_STATE
            inner = self.elab_type(ty.inner, scope)
            if isinstance(inner, CGuarded):
                return CGuarded(((key, req),) + inner.guards, inner.inner)
            return CGuarded(((key, req),), inner)
        if isinstance(ty, ast.NamedType):
            return self._elab_named(ty, scope)
        if isinstance(ty, ast.FunType):
            decl = ast.FunDecl(ty.span, ty.ret, ty.name or "<fn>", ty.params,
                               ty.effect, [])
            sig = self.elab_signature(decl, module=None, is_extern=False,
                                      outer=scope)
            return CFun(sig)
        raise TypeError(f"unknown type node {type(ty).__name__}")

    def _elab_named(self, ty: ast.NamedType, scope: Scope) -> CType:
        bound = scope.lookup_type(ty.name)
        if bound is not None and not ty.args:
            return bound

        decl = self.ctx.type_decl(ty.name)
        if decl is None:
            self.reporter.error(Code.UNDEFINED_TYPE,
                                f"unknown type '{ty.name}'", ty.span)
            return CNamed(ty.name, ())

        params = decl.params
        if len(params) != len(ty.args):
            self.reporter.error(
                Code.ARITY_MISMATCH,
                f"type '{ty.name}' expects {len(params)} argument(s), "
                f"got {len(ty.args)}", ty.span)
            return CNamed(ty.name, ())

        cargs: List[CArg] = []
        for (kind, _pname), arg in zip(params, ty.args):
            cargs.append(self._coerce_arg(kind, arg, scope))

        if decl.kind == "alias" and decl.rhs is not None:
            return self._expand_alias(ty.name, decl, cargs, ty.span)
        return CNamed(ty.name, tuple(cargs))

    def _coerce_arg(self, kind: str, arg: ast.TypeArg, scope: Scope) -> CArg:
        if kind == "key":
            if arg.name is None:
                self.reporter.error(Code.BAD_TYPE_ARGUMENT,
                                    "expected a key name here", arg.span)
                return CArg("key", key=KeyVarRef("?"))
            return CArg("key", key=self.resolve_key(arg.name, scope, arg.span))
        if kind == "state":
            if arg.name is None:
                self.reporter.error(Code.BAD_TYPE_ARGUMENT,
                                    "expected a state name here", arg.span)
                return CArg("state", state="?")
            return CArg("state",
                        state=self._state_arg(arg.name, scope, arg.span))
        assert arg.type is not None
        return CArg("type", type=self.elab_type(arg.type, scope))

    def _expand_alias(self, name: str, decl, cargs: List[CArg],
                      span: Span) -> CType:
        if name in self._expanding:
            self.reporter.error(Code.BAD_TYPE_ARGUMENT,
                                f"recursive type alias '{name}'", span)
            return CNamed(name, tuple(cargs))
        child = Scope()
        for (kind, pname), carg in zip(decl.params, cargs):
            if kind == "key":
                child.keys[pname] = carg.key
            elif kind == "state":
                child.states[pname] = carg.state
            else:
                child.types[pname] = carg.type
        self._expanding.add(name)
        try:
            return self.elab_type(decl.rhs, child)
        finally:
            self._expanding.discard(name)

    # -- keys and states -------------------------------------------------------

    def resolve_key(self, name: str, scope: Scope, span: Span) -> KeyRef:
        found = scope.lookup_key(name)
        if found is not None:
            return found
        gkey = self.ctx.global_key(name)
        if gkey is not None:
            return gkey.key
        # Implicit generalisation, allowed only in signature scopes.
        target: Optional[Scope] = scope
        while target is not None and not target.implicit_keys:
            target = target.parent
        if target is not None:
            return target.bind_implicit_key(name)
        self.reporter.error(Code.UNDEFINED_KEY,
                            f"unknown key '{name}'", span)
        return KeyVarRef(name)

    def resolve_state(self, name: str, scope: Scope,
                      span: Span) -> StateArgValue:
        """Resolve a state in ``@state`` requirement position: a bound
        variable, else a concrete state name (stateset member or
        free-form).  Binding occurrences only happen in ``<...>``
        argument positions — see :meth:`_state_arg`."""
        found = scope.lookup_state(name)
        if found is not None:
            return found
        return name

    def _state_arg(self, name: str, scope: Scope,
                   span: Span) -> StateArgValue:
        """Resolve a state *argument* in ``<...>`` position.

        Unlike ``@state`` requirement positions (where unknown names are
        free-form concrete states), an unknown name in argument position
        inside a signature is a binding occurrence: ``KIRQL<S>`` in
        ``KeReleaseSpinLock(KSPIN_LOCK<K> l, KIRQL<S> old)`` binds the
        state variable ``S``."""
        found = scope.lookup_state(name)
        if found is not None:
            return found
        if self.ctx.statespace.set_of_state(name) is not None:
            return name
        target: Optional[Scope] = scope
        while target is not None and not (target.implicit_keys
                                          or target.state_binders_ok):
            target = target.parent
        if target is not None:
            return target.bind_state_var(name, None)
        return name

    def _state_req(self, st: ast.StateExpr, scope: Scope) -> StateReq:
        if isinstance(st, ast.StateBound):
            self._check_bound_state(st.bound, st.span)
            # Bind the variable for later references (result types etc.)
            nearest = self._nearest_sig_scope(scope)
            (nearest or scope).bind_state_var(st.var, st.bound)
            return AtMostState(st.var, st.bound)
        value = self.resolve_state(st.name, scope, st.span)
        return ExactState(value)

    def _check_bound_state(self, name: str, span: Span) -> None:
        if self.ctx.statespace.set_of_state(name) is None:
            self.reporter.error(
                Code.UNDEFINED_STATE,
                f"state '{name}' used as an ordering bound is not a member "
                f"of any declared stateset", span)

    @staticmethod
    def _nearest_sig_scope(scope: Scope) -> Optional[Scope]:
        cur: Optional[Scope] = scope
        while cur is not None:
            if cur.implicit_keys:
                return cur
            cur = cur.parent
        return None

    # -- signatures -----------------------------------------------------------------

    def elab_signature(self, decl: ast.FunDecl, module: Optional[str],
                       is_extern: bool,
                       outer: Optional[Scope] = None) -> Signature:
        scope = Scope(parent=outer, implicit_keys=True)
        explicit_types: List[str] = []
        explicit_keys: List[str] = []
        explicit_states: List[str] = []
        for tp in decl.type_params:
            if tp.kind == "type":
                scope.types[tp.name] = CTypeVar(tp.name)
                explicit_types.append(tp.name)
            elif tp.kind == "key":
                scope.keys[tp.name] = KeyVarRef(tp.name)
                explicit_keys.append(tp.name)
            else:
                scope.bind_state_var(tp.name, None)
                explicit_states.append(tp.name)

        # Elaborate the effect clause first so its bound state variables
        # (e.g. ``level`` in ``(level <= DISPATCH_LEVEL)``) are in scope
        # for parameter and result types.
        effect = self._elab_effect(decl.effect, scope)

        params: List[SigParam] = []
        implicit_pre: List[CoreEffectItem] = []
        for p in decl.params:
            ptype = self.elab_type(p.type, scope)
            if (isinstance(p.type, ast.TrackedType) and p.type.key is not None
                    and p.type.state is not None):
                # ``tracked(K@st) T`` parameter: a pre-state requirement.
                if effect.item_for(p.type.key) is None:
                    req = self._state_req(p.type.state, scope)
                    implicit_pre.append(
                        CoreEffectItem("keep", p.type.key, req, None))
            params.append(SigParam(ptype, p.name))

        # Re-elaborate the effect now that parameter types have bound
        # their state variables (``KeReleaseSpinLock(..., KIRQL<S> old)
        # [IRQL@DISPATCH_LEVEL->S]`` — the param binds ``S``, so the
        # post-state must resolve to that variable, not to a concrete
        # state named "S").
        effect = self._elab_effect(decl.effect, scope)

        ret = self.elab_type(decl.ret, scope)
        if implicit_pre:
            effect = CoreEffect(effect.items + tuple(implicit_pre))

        return Signature(
            name=decl.name,
            params=tuple(params),
            ret=ret,
            effect=effect,
            key_vars=tuple(explicit_keys + scope.new_key_vars),
            state_vars=tuple(explicit_states +
                             [s for s in scope.new_state_vars
                              if s not in explicit_states]),
            type_vars=tuple(explicit_types),
            module=module,
            is_extern=is_extern,
        )

    def _elab_effect(self, eff: Optional[ast.EffectClause],
                     scope: Scope) -> CoreEffect:
        if eff is None:
            return CoreEffect(())
        items: List[CoreEffectItem] = []
        for item in eff.items:
            # Resolve the key name (a global key, a key variable —
            # possibly implicitly generalised by this reference — or a
            # concrete key closed over from an enclosing function).
            resolved = self.resolve_key(item.key, scope, item.span)
            if isinstance(resolved, Key) and resolved.origin != "global":
                key: object = resolved
            elif isinstance(resolved, KeyVarRef):
                key = resolved.name
            else:
                key = item.key
            pre = self._state_req(item.pre, scope) if item.pre else ANY_STATE
            post = self._state_req(item.post, scope) if item.post else None
            if item.mode in ("produce", "fresh") and post is None:
                post = ExactState(DEFAULT_STATE)
            items.append(CoreEffectItem(item.mode, key, pre, post))
        return CoreEffect(tuple(items))
