"""A generic forward worklist dataflow engine over Vault CFGs.

The checker's held-key analysis is one instance of the classic forward
dataflow pattern the paper describes ("computes the held-key set before
and after each node", with joins at merge points and fixpoints around
loops).  This module provides the pattern generically over
:class:`repro.core.cfg.CFG`, plus two ready-made analyses used by the
tooling and tests:

* :func:`reachable_statements` — which statements can execute at all
  (dead-code detection for ``vaultc stats``);
* :class:`DefiniteAssignment` — which variables are definitely
  assigned at each block entry (the classic must-analysis, mirroring
  the checker's use-before-init reasoning).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Generic, List, Optional, Set, TypeVar

from ..syntax import ast
from .cfg import CFG, Block

L = TypeVar("L")


class ForwardAnalysis(Generic[L]):
    """A forward dataflow problem: lattice values of type ``L``.

    Subclasses (or instances configured with callables) provide the
    entry value, the join of two values, and the per-block transfer
    function.  :meth:`solve` runs the worklist to a fixpoint and
    returns the value *before* each block.
    """

    def __init__(self,
                 entry_value: L,
                 join: Callable[[L, L], L],
                 transfer: Callable[[Block, L], L],
                 bottom: Optional[L] = None):
        self.entry_value = entry_value
        self.join = join
        self.transfer = transfer
        self.bottom = bottom

    def solve(self, cfg: CFG) -> Dict[int, L]:
        """Run the worklist to a fixpoint.

        The worklist is a deque with a membership set (no duplicate
        entries, O(1) pops — the original used ``list.pop(0)``, which
        is O(n) per pop and admitted the same block many times over).
        Blocks are visited in reverse postorder: changed successors
        are re-enqueued in RPO position, so loop bodies stabilise
        before their continuations are examined.
        """
        before: Dict[int, L] = {cfg.entry.id: self.entry_value}
        rpo = cfg.reverse_postorder()
        rpo_index = {block.id: i for i, block in enumerate(rpo)}
        worklist: deque = deque([cfg.entry])
        pending: Set[int] = {cfg.entry.id}
        iterations = 0
        limit = max(64, 16 * len(cfg.blocks) * (1 + cfg.edge_count()))
        while worklist:
            iterations += 1
            if iterations > limit:
                raise RuntimeError(
                    f"dataflow for '{cfg.name}' did not converge")
            block = worklist.popleft()
            pending.discard(block.id)
            if block.id not in before:
                continue
            out_value = self.transfer(block, before[block.id])
            changed: List[Block] = []
            for target, _label in block.succs:
                if target.id not in before:
                    before[target.id] = out_value
                    changed.append(target)
                else:
                    current = before[target.id]
                    joined = self.join(current, out_value)
                    # Identity first: joins that return one operand
                    # unchanged (common once a fixpoint nears) skip
                    # the structural comparison entirely.
                    if joined is not current and joined != current:
                        before[target.id] = joined
                        changed.append(target)
            if changed:
                changed.sort(key=lambda b: rpo_index.get(b.id, len(rpo)))
                for target in changed:
                    if target.id not in pending:
                        pending.add(target.id)
                        worklist.append(target)
        return before


# ---------------------------------------------------------------------------
# Ready-made analyses
# ---------------------------------------------------------------------------

def reachable_statements(cfg: CFG) -> Set[int]:
    """ids of blocks whose statements can execute."""
    return cfg.reachable_blocks()


def dead_statement_count(cfg: CFG) -> int:
    """How many statements sit in unreachable blocks."""
    return sum(len(b.stmts) for b in cfg.unreachable_blocks())


def _assigned_in(stmt: ast.Stmt) -> List[str]:
    if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
        return [stmt.name]
    if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Name):
        return [stmt.target.ident]
    if isinstance(stmt, ast.LocalFun):
        return [stmt.fundef.decl.name]
    return []


class DefiniteAssignment:
    """Must-assigned variables at each block entry.

    The lattice is (sets of names, ⊇) with intersection as join: a
    variable is definitely assigned at a point only if it is assigned
    on *every* path.  ``None`` stands for "unreachable" (top).
    """

    def __init__(self, params: Optional[List[str]] = None):
        self.params = frozenset(params or [])

    def solve(self, cfg: CFG) -> Dict[int, FrozenSet[str]]:
        def join(a: Optional[FrozenSet[str]],
                 b: Optional[FrozenSet[str]]) -> Optional[FrozenSet[str]]:
            if a is None:
                return b
            if b is None:
                return a
            return a & b

        def transfer(block: Block,
                     value: Optional[FrozenSet[str]]) -> FrozenSet[str]:
            names = set(value or frozenset())
            for stmt in block.stmts:
                names.update(_assigned_in(stmt))
            return frozenset(names)

        analysis = ForwardAnalysis(self.params, join, transfer)
        solved = analysis.solve(cfg)
        return {bid: (v if v is not None else frozenset())
                for bid, v in solved.items()}

    def definitely_assigned_at_exit(self, cfg: CFG) -> FrozenSet[str]:
        solved = self.solve(cfg)
        return solved.get(cfg.exit.id, frozenset())
