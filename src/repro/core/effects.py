"""Core effect clauses and function signatures.

A surface effect clause ``[K@a->b, -L@c, +M@d, new N@e]`` elaborates to
a :class:`CoreEffect`, a list of per-key deltas over the held-key set
(§3.2: the internal function type ``(C, t) -> (C', t')`` splits the
clause into pre- and postcondition key sets; keys not mentioned pass
through unchanged — functions are polymorphic in the "rest" of the
set).

Each item's key is a :class:`~repro.core.types.KeyVarRef` (resolved at
call sites through parameter types) or the name of a declared global
key such as ``IRQL``.  Pre- and post-states are :class:`StateReq`
values; a bounded pre-state ``(level <= DISPATCH_LEVEL)`` binds the
state variable ``level`` for use in the post-state or in the result
type (``KIRQL<level>``, §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from typing import Union

from .keys import Key
from .types import (ANY_STATE, AtMostState, CType, ExactState, KeyVarRef,
                    StateReq, StateVarRef)


@dataclass(frozen=True)
class CoreEffectItem:
    """One key's delta across a call.

    ``mode`` ∈ {"keep", "consume", "produce", "fresh"}:

    * keep     — held before (matching ``pre``), held after in ``post``;
    * consume  — held before (matching ``pre``), absent after;
    * produce  — absent before, held after in ``post``;
    * fresh    — a brand-new key is held after in ``post`` (and may be
      named by the result type, e.g. ``accept``'s ``new N@ready``).

    ``key`` is a variable/global name (``str``) inside a polymorphic
    signature, or a concrete :class:`Key` once the signature has been
    instantiated (nested functions close over enclosing keys, Figure 7).
    """

    mode: str
    key: Union[str, Key]
    pre: StateReq = ANY_STATE
    post: Optional[StateReq] = None   # None on keep = same as pre

    def show(self) -> str:
        if self.mode == "consume":
            return f"-{self.key}@{self.pre!r}"
        if self.mode == "produce":
            return f"+{self.key}@{self.post!r}"
        if self.mode == "fresh":
            return f"new {self.key}@{self.post!r}"
        post = f"->{self.post!r}" if self.post is not None else ""
        return f"{self.key}@{self.pre!r}{post}"


@dataclass(frozen=True)
class CoreEffect:
    items: Tuple[CoreEffectItem, ...] = ()

    def item_for(self, key_name) -> Optional[CoreEffectItem]:
        for item in self.items:
            if item.key == key_name or (isinstance(item.key, Key)
                                        and item.key is key_name):
                return item
        return None

    def mentioned_keys(self) -> List[str]:
        return [item.key for item in self.items]

    def show(self) -> str:
        return "[" + ", ".join(i.show() for i in self.items) + "]"


EMPTY_EFFECT = CoreEffect(())


@dataclass(frozen=True)
class SigParam:
    type: CType
    name: Optional[str] = None


@dataclass(frozen=True)
class Signature:
    """An elaborated function signature, implicitly polymorphic (§3.2)
    in every key variable, state variable and type variable it mentions.

    ``key_vars``/``state_vars``/``type_vars`` list the generalised
    variables; ``module`` is set for module members (``Region.create``).
    ``is_extern`` marks primitives implemented by the host (the kernel
    functions of §4, the region/socket operations of §2).
    """

    name: str
    params: Tuple[SigParam, ...]
    ret: CType
    effect: CoreEffect = EMPTY_EFFECT
    key_vars: Tuple[str, ...] = ()
    state_vars: Tuple[str, ...] = ()
    type_vars: Tuple[str, ...] = ()
    module: Optional[str] = None
    is_extern: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name

    def show(self) -> str:
        params = ", ".join(
            p.type.show() + (f" {p.name}" if p.name else "")
            for p in self.params)
        eff = f" {self.effect.show()}" if self.effect.items else ""
        return f"{self.ret.show()} {self.qualified_name}({params}){eff}"
