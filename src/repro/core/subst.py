"""Substitution of key/state/type variables — signature instantiation.

Declared signatures are implicitly polymorphic (§3.2): ``fclose`` has
type ``∀ρF.∀δ.∀ε. (ε ⊕ {ρF@δ -> FILE}, s(ρF)) -> (ε, void)``.  A call
site instantiates ρF with the argument's concrete key and δ with its
current state.  :class:`Subst` carries those three maps and applies
them over core types, state requirements, effects and signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from .keys import Key, StateVar
from .types import (ANY_STATE, AnyState, AtMostState, CArg, CArray, CBase,
                    CFun, CGuarded, CNamed, CPacked, CTracked, CType,
                    CTypeVar, ExactState, KeyRef, KeyVarRef, StateArgValue,
                    StateReq, StateVarRef)


@dataclass
class Subst:
    """key/state/type variable assignments accumulated during matching."""

    keys: Dict[str, Key] = field(default_factory=dict)
    states: Dict[str, Union[str, StateVar]] = field(default_factory=dict)
    types: Dict[str, CType] = field(default_factory=dict)

    # -- binding -----------------------------------------------------------

    def bind_key(self, name: str, key: Key) -> bool:
        """Bind a key variable; returns False on a conflicting binding."""
        existing = self.keys.get(name)
        if existing is not None:
            return existing is key
        self.keys[name] = key
        return True

    def bind_state(self, name: str, state: Union[str, StateVar]) -> bool:
        existing = self.states.get(name)
        if existing is not None:
            if isinstance(existing, StateVar) and isinstance(state, StateVar):
                return existing.uid == state.uid
            return existing == state
        self.states[name] = state
        return True

    def bind_type(self, name: str, ctype: CType) -> bool:
        existing = self.types.get(name)
        if existing is not None:
            return existing == ctype
        self.types[name] = ctype
        return True

    # -- application -----------------------------------------------------------

    def key(self, ref: KeyRef) -> KeyRef:
        if isinstance(ref, KeyVarRef):
            return self.keys.get(ref.name, ref)
        return ref

    def state_value(self, value: StateArgValue) -> StateArgValue:
        if isinstance(value, StateVarRef):
            resolved = self.states.get(value.name)
            return resolved if resolved is not None else value
        return value

    def state_req(self, req: StateReq) -> StateReq:
        if not self.states:
            return req
        if isinstance(req, ExactState):
            return ExactState(self.state_value(req.state))
        if isinstance(req, AtMostState):
            resolved = self.states.get(req.var)
            if resolved is not None:
                return ExactState(resolved)
            return req
        return req

    def ctype(self, ctype: CType) -> CType:
        if type(self) is Subst and \
                not (self.keys or self.states or self.types):
            # The empty substitution is the identity; skipping the
            # rebuild keeps interned declaration types canonical, so
            # later comparisons hit the identity fast paths.  (Exact
            # type check: subclasses may substitute through other
            # channels, e.g. the checker's key renamer.)
            return ctype
        if isinstance(ctype, (CBase,)):
            return ctype
        if isinstance(ctype, CTypeVar):
            return self.types.get(ctype.name, ctype)
        if isinstance(ctype, CArray):
            return CArray(self.ctype(ctype.elem))
        if isinstance(ctype, CTracked):
            return CTracked(self.key(ctype.key), self.ctype(ctype.inner))
        if isinstance(ctype, CPacked):
            return CPacked(self.ctype(ctype.inner), self.state_req(ctype.state))
        if isinstance(ctype, CGuarded):
            guards = tuple((self.key(k), self.state_req(s))
                           for k, s in ctype.guards)
            return CGuarded(guards, self.ctype(ctype.inner))
        if isinstance(ctype, CNamed):
            return CNamed(ctype.name, tuple(self.carg(a) for a in ctype.args))
        if isinstance(ctype, CFun):
            return CFun(self.signature(ctype.sig))
        return ctype

    def carg(self, arg: CArg) -> CArg:
        if arg.kind == "type":
            return CArg("type", type=self.ctype(arg.type))
        if arg.kind == "key":
            return CArg("key", key=self.key(arg.key))
        return CArg("state", state=self.state_value(arg.state))

    def effect(self, eff):
        from .effects import CoreEffect, CoreEffectItem
        items = tuple(
            CoreEffectItem(
                i.mode,
                self.keys.get(i.key, i.key) if isinstance(i.key, str)
                else i.key,
                self.state_req(i.pre),
                None if i.post is None else self.state_req(i.post))
            for i in eff.items)
        return CoreEffect(items)

    def signature(self, sig):
        from .effects import Signature, SigParam
        # Generalised variables of the inner signature are *not* touched:
        # drop shadowed names from this substitution first.
        inner = Subst(
            {k: v for k, v in self.keys.items() if k not in sig.key_vars},
            {k: v for k, v in self.states.items() if k not in sig.state_vars},
            {k: v for k, v in self.types.items() if k not in sig.type_vars},
        )
        return Signature(
            name=sig.name,
            params=tuple(SigParam(inner.ctype(p.type), p.name)
                         for p in sig.params),
            ret=inner.ctype(sig.ret),
            effect=inner.effect(sig.effect),
            key_vars=sig.key_vars,
            state_vars=sig.state_vars,
            type_vars=sig.type_vars,
            module=sig.module,
            is_extern=sig.is_extern,
        )
