"""Program context: all declarations of a Vault compilation.

Collects statesets, global keys, type declarations (aliases, abstract
types, structs, variants with their constructors), interfaces, modules
and function signatures from one or more parsed compilation units (the
standard Vault interfaces of §2/§4 plus the user program), then checks
module/interface conformance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..diagnostics import Code, Reporter, Span
from ..syntax import ast
from .effects import Signature
from .elaborate import Elaborator, Scope
from .keys import DEFAULT_STATE, Key, StateSet, StateSpace
from .types import (CType, CTypeVar, KeyVarRef, StateReq, StateVarRef)


@dataclass
class TypeDeclInfo:
    """A declared named type — alias, abstract type, struct or variant.

    ``params`` are (kind, name) pairs with kind ∈ {"type","key","state"}.
    For aliases ``rhs`` is the surface right-hand side (``None`` marks an
    abstract type); ``owner`` is the module owning an abstract type's
    representation.
    """

    name: str
    kind: str                      # "alias" | "struct" | "variant"
    params: List[Tuple[str, str]]
    rhs: Optional[ast.Type] = None
    owner: Optional[str] = None
    span: Span = field(default_factory=Span.unknown)

    @property
    def is_abstract(self) -> bool:
        return self.kind == "alias" and self.rhs is None


@dataclass
class StructInfo:
    name: str
    params: List[Tuple[str, str]]
    fields: List[Tuple[str, CType]]

    def field_type(self, fname: str) -> Optional[CType]:
        for name, ctype in self.fields:
            if name == fname:
                return ctype
        return None


@dataclass
class CtorInfo:
    """One variant constructor with elaborated argument types and key
    attachments (``'SomeKey{K}`` / ``'Error(error_code){K@raw}``)."""

    name: str
    variant: str
    index: int
    arg_types: List[CType]
    key_attach: List[Tuple[str, StateReq]]   # (key-param name, state req)


@dataclass
class VariantInfo:
    name: str
    params: List[Tuple[str, str]]
    ctors: List[CtorInfo]

    def ctor(self, name: str) -> Optional[CtorInfo]:
        for c in self.ctors:
            if c.name == name:
                return c
        return None

    @property
    def captures_keys(self) -> bool:
        """Does any constructor capture a key (making values linear)?"""
        from .types import CPacked, CTracked
        for c in self.ctors:
            if c.key_attach:
                return True
            for t in c.arg_types:
                if isinstance(t, (CPacked, CTracked)):
                    return True
        return False


@dataclass
class GlobalKeyInfo:
    name: str
    key: Key
    stateset: Optional[str]
    initial: Optional[str]


class ProgramContext:
    """Symbol tables for a whole Vault program."""

    def __init__(self) -> None:
        self.statespace = StateSpace()
        self.global_keys: Dict[str, GlobalKeyInfo] = {}
        self.type_decls: Dict[str, TypeDeclInfo] = {}
        self.structs: Dict[str, StructInfo] = {}
        self.variants: Dict[str, VariantInfo] = {}
        self.ctor_index: Dict[str, str] = {}       # ctor name -> variant name
        self.interfaces: Dict[str, List[ast.Decl]] = {}
        self.functions: Dict[str, Signature] = {}  # qualified name -> sig
        self.fun_defs: Dict[str, ast.FunDef] = {}
        self.modules: Dict[str, ast.ModuleDecl] = {}

    # -- lookups ------------------------------------------------------------

    def type_decl(self, name: str) -> Optional[TypeDeclInfo]:
        return self.type_decls.get(name)

    def global_key(self, name: str) -> Optional[GlobalKeyInfo]:
        return self.global_keys.get(name)

    def struct(self, name: str) -> Optional[StructInfo]:
        return self.structs.get(name)

    def variant(self, name: str) -> Optional[VariantInfo]:
        return self.variants.get(name)

    def ctor(self, name: str) -> Optional[CtorInfo]:
        vname = self.ctor_index.get(name)
        if vname is None:
            return None
        return self.variants[vname].ctor(name)

    def function(self, name: str, module: Optional[str] = None
                 ) -> Optional[Signature]:
        qual = f"{module}.{name}" if module else name
        return self.functions.get(qual)

    def defined_functions(self) -> List[Tuple[str, ast.FunDef]]:
        return sorted(self.fun_defs.items())

    # -- structure ----------------------------------------------------------

    def clone(self) -> "ProgramContext":
        """An independent copy that later :func:`build_context` calls can
        extend without mutating this one.

        Every top-level table is copied; so are the values that
        ``build_context`` mutates in place (:class:`TypeDeclInfo`, whose
        ``rhs``/``owner`` are filled in when a module implements an
        interface's abstract type, and the state space).  Remaining
        values (signatures, struct/variant infos, parsed ASTs) are
        shared — nothing writes to them after elaboration.
        """
        new = ProgramContext()
        new.statespace.sets = dict(self.statespace.sets)
        new.statespace._owner = dict(self.statespace._owner)
        new.global_keys = dict(self.global_keys)
        new.type_decls = {
            name: TypeDeclInfo(info.name, info.kind, list(info.params),
                               info.rhs, info.owner, info.span)
            for name, info in self.type_decls.items()}
        new.structs = dict(self.structs)
        new.variants = dict(self.variants)
        new.ctor_index = dict(self.ctor_index)
        new.interfaces = dict(self.interfaces)
        new.functions = dict(self.functions)
        new.fun_defs = dict(self.fun_defs)
        new.modules = dict(self.modules)
        return new


def build_context(programs: List[ast.Program],
                  reporter: Reporter,
                  base: Optional[ProgramContext] = None) -> ProgramContext:
    """Build the symbol tables from parsed compilation units.

    Runs in phases so that mutually-recursive declarations resolve:
    statesets/keys, then type *names*, then type *bodies* (struct
    fields, variant constructors), then function signatures.

    ``base`` extends an already-built context with the declarations of
    ``programs`` without re-elaborating the base: the stdlib loader
    builds its units once per process and every ``check_source`` call
    layers the user program on a clone (see
    :func:`repro.stdlib.loader.stdlib_context`).
    """
    ctx = base.clone() if base is not None else ProgramContext()
    elab = Elaborator(ctx, reporter)

    flat: List[Tuple[Optional[str], ast.Decl]] = []
    #: modules introduced by *these* programs — interface-conformance
    #: and abstract-type ownership only run over new modules, so a base
    #: context's modules are not re-checked (and their extern interface
    #: functions not re-registered).
    new_modules: List[ast.ModuleDecl] = []

    def walk(decls: List[ast.Decl], module: Optional[str]) -> None:
        for decl in decls:
            if isinstance(decl, ast.InterfaceDecl):
                if decl.name in ctx.interfaces:
                    reporter.error(Code.DUPLICATE_NAME,
                                   f"duplicate interface '{decl.name}'",
                                   decl.span)
                ctx.interfaces[decl.name] = decl.decls
                walk([d for d in decl.decls
                      if not isinstance(d, (ast.FunDecl, ast.FunDef))], None)
            elif isinstance(decl, ast.ModuleDecl):
                ctx.modules[decl.name] = decl
                new_modules.append(decl)
                walk(decl.decls, decl.name)
            else:
                flat.append((module, decl))

    for prog in programs:
        walk(prog.decls, None)

    # Phase 1: statesets and global keys.
    for module, decl in flat:
        if isinstance(decl, ast.StateSetDecl):
            if decl.name in ctx.statespace.sets:
                reporter.error(Code.DUPLICATE_NAME,
                               f"duplicate stateset '{decl.name}'", decl.span)
                continue
            ctx.statespace.add(StateSet(decl.name, tuple(decl.states),
                                        tuple(decl.order)))
        elif isinstance(decl, ast.KeyDecl):
            if decl.name in ctx.global_keys:
                reporter.error(Code.DUPLICATE_NAME,
                               f"duplicate key '{decl.name}'", decl.span)
                continue
            sset = decl.stateset
            if sset is not None and sset not in ctx.statespace.sets:
                reporter.error(Code.UNDEFINED_STATE,
                               f"unknown stateset '{sset}'", decl.span)
            initial = decl.initial
            if initial is None and sset is not None:
                bottom = ctx.statespace.sets.get(sset)
                initial = bottom.bottom() if bottom else None
            ctx.global_keys[decl.name] = GlobalKeyInfo(
                decl.name, Key(decl.name, origin="global"), sset,
                initial or DEFAULT_STATE)

    # Phase 2: register type names.
    for module, decl in flat:
        if isinstance(decl, ast.TypeAliasDecl):
            _register_type(ctx, reporter, TypeDeclInfo(
                decl.name, "alias", [(p.kind, p.name) for p in decl.params],
                decl.rhs, owner=module, span=decl.span))
        elif isinstance(decl, ast.StructDecl):
            _register_type(ctx, reporter, TypeDeclInfo(
                decl.name, "struct", [(p.kind, p.name) for p in decl.params],
                owner=module, span=decl.span))
        elif isinstance(decl, ast.VariantDecl):
            _register_type(ctx, reporter, TypeDeclInfo(
                decl.name, "variant", [(p.kind, p.name) for p in decl.params],
                owner=module, span=decl.span))

    # Abstract types declared in an interface belong to implementing
    # modules; record the first implementing module as owner.
    for mod in new_modules:
        iface = ctx.interfaces.get(mod.interface) if mod.interface else None
        if iface is None:
            continue
        for d in iface:
            if isinstance(d, ast.TypeAliasDecl) and d.rhs is None:
                info = ctx.type_decls.get(d.name)
                if info is not None and info.owner is None:
                    info.owner = mod.name

    # Phase 3: elaborate struct fields and variant constructors.
    for module, decl in flat:
        if isinstance(decl, ast.StructDecl):
            scope = _decl_scope(decl.params)
            fields = []
            seen = set()
            for f in decl.fields:
                if f.name in seen:
                    reporter.error(Code.DUPLICATE_NAME,
                                   f"duplicate field '{f.name}'", f.span)
                seen.add(f.name)
                fields.append((f.name, elab.elab_type(f.type, scope)))
            ctx.structs[decl.name] = StructInfo(
                decl.name, [(p.kind, p.name) for p in decl.params], fields)
        elif isinstance(decl, ast.VariantDecl):
            scope = _decl_scope(decl.params)
            ctors: List[CtorInfo] = []
            declared_keys = {p.name for p in decl.params if p.kind == "key"}
            for idx, c in enumerate(decl.ctors):
                if c.name in ctx.ctor_index:
                    reporter.error(
                        Code.DUPLICATE_NAME,
                        f"constructor '{c.name}' already declared in variant "
                        f"'{ctx.ctor_index[c.name]}'", c.span)
                    continue
                arg_types = [elab.elab_type(t, scope) for t in c.args]
                attach: List[Tuple[str, StateReq]] = []
                for kname, kstate in c.keys:
                    if kname not in declared_keys:
                        reporter.error(
                            Code.UNDEFINED_KEY,
                            f"constructor '{c.name}' attaches undeclared key "
                            f"'{kname}'", c.span)
                        continue
                    # A state-less attachment ``{K}`` captures the key at
                    # any state; matching restores it at an unknown
                    # (symbolic) state.  State-annotated attachments
                    # (``{K@named}``) capture and restore exactly.
                    from .types import ANY_STATE
                    req = (elab._state_req(kstate, scope)
                           if kstate is not None else ANY_STATE)
                    attach.append((kname, req))
                ctors.append(CtorInfo(c.name, decl.name, idx, arg_types,
                                      attach))
                ctx.ctor_index[c.name] = decl.name
            ctx.variants[decl.name] = VariantInfo(
                decl.name, [(p.kind, p.name) for p in decl.params], ctors)

    # Validate alias bodies eagerly (catches recursive aliases and
    # unknown types even when the alias is never used).
    for module, decl in flat:
        if isinstance(decl, ast.TypeAliasDecl) and decl.rhs is not None \
                and not isinstance(decl.rhs, ast.FunType):
            info = ctx.type_decls.get(decl.name)
            if info is not None and info.kind == "alias":
                elab.elab_type(
                    ast.NamedType(decl.span, decl.name,
                                  [_self_arg(p) for p in decl.params]),
                    _decl_scope(decl.params))

    # Phase 4: function signatures.
    for module, decl in flat:
        if isinstance(decl, ast.FunDecl):
            _register_function(
                ctx, reporter,
                elab.elab_signature(decl, module=module, is_extern=True),
                decl.span)
        elif isinstance(decl, ast.FunDef):
            _register_function(
                ctx, reporter,
                elab.elab_signature(decl.decl, module=module,
                                    is_extern=False),
                decl.span)
            qual = f"{module}.{decl.decl.name}" if module else decl.decl.name
            ctx.fun_defs[qual] = decl

    # Extern modules implementing an interface get the interface's
    # signatures as host-provided primitives.
    for mod in new_modules:
        iface = ctx.interfaces.get(mod.interface) if mod.interface else None
        if mod.interface is not None and iface is None:
            reporter.error(Code.UNDEFINED_NAME,
                           f"unknown interface '{mod.interface}'", mod.span)
            continue
        if iface is None:
            continue
        iface_sigs = {}
        for d in iface:
            if isinstance(d, ast.FunDecl):
                sig = elab.elab_signature(d, module=mod.name,
                                          is_extern=mod.is_extern)
                iface_sigs[d.name] = sig
                if mod.is_extern:
                    _register_function(ctx, reporter, sig, d.span)
        if not mod.is_extern:
            _check_conformance(ctx, reporter, mod, iface_sigs)

    return ctx


def _exact_default():
    from .types import ExactState
    return ExactState(DEFAULT_STATE)


def _self_arg(param: ast.TypeParam) -> ast.TypeArg:
    """A type argument referring to the declaration's own parameter."""
    named = ast.NamedType(param.span, param.name, [])
    return ast.TypeArg(param.span, named, param.name)


def _decl_scope(params: List[ast.TypeParam]) -> Scope:
    scope = Scope()
    for p in params:
        if p.kind == "type":
            scope.types[p.name] = CTypeVar(p.name)
        elif p.kind == "key":
            scope.keys[p.name] = KeyVarRef(p.name)
        else:
            scope.states[p.name] = StateVarRef(p.name)
    return scope


def _register_type(ctx: ProgramContext, reporter: Reporter,
                   info: TypeDeclInfo) -> None:
    if info.name in ctx.type_decls:
        existing = ctx.type_decls[info.name]
        # Re-declaring an interface's abstract type inside the module
        # that implements it is how a module provides a representation.
        if existing.is_abstract and not info.is_abstract:
            existing.rhs = info.rhs
            return
        if existing.is_abstract and info.is_abstract:
            return
        reporter.error(Code.DUPLICATE_NAME,
                       f"duplicate type '{info.name}'", info.span)
        return
    ctx.type_decls[info.name] = info


def _register_function(ctx: ProgramContext, reporter: Reporter,
                       sig: Signature, span: Span) -> None:
    qual = sig.qualified_name
    if qual in ctx.functions:
        reporter.error(Code.DUPLICATE_NAME,
                       f"duplicate function '{qual}'", span)
        return
    ctx.functions[qual] = sig


def _check_conformance(ctx: ProgramContext, reporter: Reporter,
                       mod: ast.ModuleDecl,
                       iface_sigs: Dict[str, Signature]) -> None:
    """A Vault-implemented module must define every interface function
    with a signature that matches up to renaming of its variables."""
    for name, want in iface_sigs.items():
        have = ctx.functions.get(f"{mod.name}.{name}")
        if have is None:
            reporter.error(
                Code.UNDEFINED_NAME,
                f"module '{mod.name}' does not implement interface "
                f"function '{name}'", mod.span)
            continue
        if not signatures_alpha_equal(want, have):
            reporter.error(
                Code.TYPE_MISMATCH,
                f"module '{mod.name}' implements '{name}' with signature "
                f"{have.show()} but the interface declares {want.show()}",
                mod.span)


def signatures_alpha_equal(a: Signature, b: Signature) -> bool:
    """Structural signature equality up to renaming of key/state/type
    variables (sufficient for interface conformance)."""
    if len(a.params) != len(b.params):
        return False
    return _normal_form(a) == _normal_form(b)


def _normal_form(sig: Signature) -> str:
    """Render a signature with its variables numbered in first-use order."""
    names: Dict[str, str] = {}

    def canon(name: str, prefix: str) -> str:
        key = f"{prefix}:{name}"
        if key not in names:
            names[key] = f"{prefix}{len(names)}"
        return names[key]

    def walk_type(t: CType) -> str:
        from .types import (CArray, CBase, CFun, CGuarded, CNamed, CPacked,
                            CTracked, CTypeVar)
        if isinstance(t, CBase):
            return t.name
        if isinstance(t, CTypeVar):
            return canon(t.name, "t")
        if isinstance(t, CArray):
            return walk_type(t.elem) + "[]"
        if isinstance(t, CTracked):
            return f"tracked({walk_key(t.key)}) {walk_type(t.inner)}"
        if isinstance(t, CPacked):
            return f"tracked {walk_type(t.inner)}@{walk_req(t.state)}"
        if isinstance(t, CGuarded):
            gs = ",".join(f"{walk_key(k)}@{walk_req(r)}" for k, r in t.guards)
            return f"[{gs}]:{walk_type(t.inner)}"
        if isinstance(t, CNamed):
            args = ",".join(walk_arg(arg) for arg in t.args)
            return f"{t.name}<{args}>"
        if isinstance(t, CFun):
            return _normal_form(t.sig)
        return repr(t)

    def walk_key(k) -> str:
        if isinstance(k, KeyVarRef):
            return canon(k.name, "k")
        return repr(k)

    def walk_req(r) -> str:
        from .types import AnyState, AtMostState, ExactState
        if isinstance(r, AnyState):
            return "*"
        if isinstance(r, AtMostState):
            return f"({canon(r.var, 's')}<={r.bound})"
        if isinstance(r, ExactState):
            if isinstance(r.state, StateVarRef):
                return canon(r.state.name, "s")
            return str(r.state)
        return repr(r)

    def walk_arg(arg) -> str:
        if arg.kind == "type":
            return walk_type(arg.type)
        if arg.kind == "key":
            return walk_key(arg.key)
        if isinstance(arg.state, StateVarRef):
            return canon(arg.state.name, "s")
        return str(arg.state)

    def effect_key(k) -> str:
        if isinstance(k, str):
            return canon(k, "k") if k in sig.key_vars else k
        return repr(k)

    params = ",".join(walk_type(p.type) for p in sig.params)
    effect = ",".join(
        f"{i.mode}:{effect_key(i.key)}"
        f"@{walk_req(i.pre)}->{walk_req(i.post) if i.post else '='}"
        for i in sig.effect.items)
    return f"({params})->{walk_type(sig.ret)}[{effect}]"
