"""The held-key set — the checker's abstract global state (§2.1).

A :class:`HeldKeys` maps each held :class:`~repro.core.keys.Key` to a
:class:`KeyInfo` carrying its current local state and, for keys minted
by tracked allocation, the payload type of the resource.  The two
linearity invariants of the paper are enforced here:

* *no duplication* — adding a key already present raises
  (``KEY_DUPLICATED``: double-free, double-acquire);
* *no loss* — keys only leave the set through explicit removal;
  leak detection compares the set against a function's declared
  postcondition at exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .keys import Key, State, StateVar, state_display, states_equal
from .types import CType


class CapabilityError(Exception):
    """An internal linearity violation; the checker converts these to
    diagnostics with spans."""

    def __init__(self, kind: str, key: Key, message: str):
        self.kind = kind     # "duplicate" | "missing"
        self.key = key
        super().__init__(message)


@dataclass
class KeyInfo:
    """What the held-key set knows about one held key."""

    state: State
    payload: Optional[CType] = None   # resource type for tracked keys

    def clone(self) -> "KeyInfo":
        return KeyInfo(self.state, self.payload)


class HeldKeys:
    """A mutable held-key set; cloned at control-flow splits.

    Clones share the entry dict copy-on-write: the checker clones at
    every split, but most branches never touch the held-key set, so
    the dict copy is deferred to the first mutation on either side.
    """

    __slots__ = ("_entries", "_shared")

    def __init__(self, entries: Optional[Dict[Key, KeyInfo]] = None,
                 _share: bool = False):
        if _share and entries is not None:
            self._entries: Dict[Key, KeyInfo] = entries
            self._shared = True
        else:
            self._entries = dict(entries or {})
            self._shared = False

    def _own(self) -> None:
        """Copy the entry dict before the first mutation of a clone."""
        if self._shared:
            self._entries = dict(self._entries)
            self._shared = False

    # -- basic queries ------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Key]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[Key, KeyInfo]]:
        return iter(self._entries.items())

    def get(self, key: Key) -> Optional[KeyInfo]:
        return self._entries.get(key)

    def state_of(self, key: Key) -> Optional[State]:
        info = self._entries.get(key)
        return info.state if info else None

    # -- mutation -------------------------------------------------------------

    def add(self, key: Key, state: State,
            payload: Optional[CType] = None) -> None:
        """Introduce a key; duplication is a linearity violation."""
        if key in self._entries:
            raise CapabilityError(
                "duplicate", key,
                f"key {key.display()} introduced twice into the held-key set")
        self._own()
        self._entries[key] = KeyInfo(state, payload)

    def remove(self, key: Key) -> KeyInfo:
        """Consume a key; consuming an absent key is a violation."""
        if key not in self._entries:
            raise CapabilityError(
                "missing", key,
                f"key {key.display()} is not in the held-key set")
        self._own()
        return self._entries.pop(key)

    def set_state(self, key: Key, state: State) -> None:
        info = self._entries.get(key)
        if info is None:
            raise CapabilityError(
                "missing", key,
                f"key {key.display()} is not in the held-key set")
        # Replace rather than mutate: KeyInfo entries are shared
        # between clones (see :meth:`clone`).
        self._own()
        self._entries[key] = KeyInfo(state, info.payload)

    def set_payload(self, key: Key, payload: CType) -> None:
        """Record the resource type of a held key (replace-on-write)."""
        info = self._entries.get(key)
        if info is None:
            raise CapabilityError(
                "missing", key,
                f"key {key.display()} is not in the held-key set")
        self._own()
        self._entries[key] = KeyInfo(info.state, payload)

    # -- structure ---------------------------------------------------------------

    def clone(self) -> "HeldKeys":
        # KeyInfo values are never mutated in place (all writers go
        # through :meth:`set_state` / :meth:`set_payload`, which
        # replace the entry), and the entry dict itself is shared
        # copy-on-write: both sides mark it shared and the first
        # mutation on either side copies.  Cloning is then O(1).
        self._shared = True
        return HeldKeys(self._entries, _share=True)

    def rename(self, mapping: Dict[Key, Key]) -> "HeldKeys":
        """Apply a key renaming (used by the join abstraction, §3)."""
        return HeldKeys({mapping.get(k, k): v
                         for k, v in self._entries.items()})

    def same_shape(self, other: "HeldKeys") -> bool:
        """Do both sets hold exactly the same keys in equal states?"""
        if self._entries is other._entries:
            # Copy-on-write clones that were never mutated share the
            # dict — the common case at joins where neither branch
            # touched the held-key set.
            return True
        if len(self._entries) != len(other._entries):
            return False
        for k, info in self._entries.items():
            other_info = other._entries.get(k)
            if other_info is None:
                return False
            if other_info is not info and \
                    not states_equal(info.state, other_info.state):
                return False
        return True

    def diff_summary(self, other: "HeldKeys") -> str:
        """Human-readable difference, for join/postcondition diagnostics."""
        bits = []
        for k in self._entries:
            if k not in other._entries:
                bits.append(f"{k.display()} held on one path only")
            elif not states_equal(self._entries[k].state,
                                  other._entries[k].state):
                bits.append(
                    f"{k.display()} in state "
                    f"{state_display(self._entries[k].state)} vs "
                    f"{state_display(other._entries[k].state)}")
        for k in other._entries:
            if k not in self._entries:
                bits.append(f"{k.display()} held on one path only")
        return "; ".join(bits) or "identical"

    def show(self) -> str:
        if not self._entries:
            return "{}"
        parts = sorted(
            f"{k.display()}@{state_display(v.state)}"
            for k, v in self._entries.items())
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:
        return f"HeldKeys{self.show()}"
