"""Transactional key-value store substrate (the paper's introduction
lists database transactions among the resources whose protocols Vault
enforces)."""

from .store import Transaction, TxStore

__all__ = ["Transaction", "TxStore"]
