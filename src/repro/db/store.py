"""A transactional key-value store — the "database transactions"
resource class from the paper's introduction.

Transactions follow the classic protocol the Vault interface
(``transactions.vlt``) encodes in key states: ``begin`` creates a
transaction in state "active"; reads and writes require it active;
``commit`` and ``abort`` consume it.  The store itself provides
snapshot isolation of a single writer: writes buffer in the
transaction and apply atomically on commit, roll back on abort.

Run-time misuse (use after commit, double commit, leaked transactions)
raises :class:`~repro.diagnostics.RuntimeProtocolError` — the dynamic
baseline for this protocol.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..diagnostics import Code, RuntimeProtocolError

_txn_ids = itertools.count(1)


class Transaction:
    def __init__(self, store: "TxStore"):
        self.id = next(_txn_ids)
        self.store = store
        self.state = "active"
        self.writes: Dict[str, int] = {}

    def _require_active(self, what: str) -> None:
        if self.state != "active":
            raise RuntimeProtocolError(
                Code.RT_DANGLING,
                f"{what} on transaction {self.id}, which is "
                f"'{self.state}'")

    def __repr__(self) -> str:
        return f"txn{self.id}[{self.state}]"


class TxStore:
    """A single-node transactional store."""

    def __init__(self) -> None:
        self.data: Dict[str, int] = {}
        self.transactions: List[Transaction] = []
        self.commits = 0
        self.aborts = 0

    # -- protocol operations --------------------------------------------------

    def begin(self) -> Transaction:
        txn = Transaction(self)
        self.transactions.append(txn)
        return txn

    def put(self, txn: Transaction, key: str, value: int) -> None:
        txn._require_active("put")
        txn.writes[key] = value

    def get(self, txn: Transaction, key: str) -> int:
        txn._require_active("get")
        if key in txn.writes:
            return txn.writes[key]
        return self.data.get(key, 0)

    def delete(self, txn: Transaction, key: str) -> None:
        txn._require_active("delete")
        txn.writes[key] = 0

    def commit(self, txn: Transaction) -> None:
        txn._require_active("commit")
        self.data.update(txn.writes)
        txn.state = "committed"
        self.commits += 1

    def abort(self, txn: Transaction) -> None:
        txn._require_active("abort")
        txn.writes.clear()
        txn.state = "aborted"
        self.aborts += 1

    # -- audits -------------------------------------------------------------------

    def audit(self) -> List[int]:
        """Transactions neither committed nor aborted (leaks)."""
        return [t.id for t in self.transactions if t.state == "active"]

    def assert_no_leaks(self) -> None:
        leaked = self.audit()
        if leaked:
            raise RuntimeProtocolError(
                Code.RT_LEAK,
                f"transaction(s) never finished: {leaked}")
