"""Kernel events — thread coordination (paper §4.2).

An event lets one execution context block until another signals it; in
Vault, signalling transfers a key between per-thread held-key sets.
The simulator is cooperatively scheduled: waiting pumps the kernel's
work queue until the event is signalled, and detects the deadlock of
waiting with no runnable work.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..diagnostics import Code, RuntimeProtocolError

_event_ids = itertools.count(1)


class KernelEvent:
    def __init__(self, name: Optional[str] = None):
        self.id = next(_event_ids)
        self.name = name or f"event{self.id}"
        self.signaled = False
        self.signal_count = 0

    def signal(self) -> None:
        if self.signaled:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"event '{self.name}' signalled twice without a wait "
                f"(its key was already given away)")
        self.signaled = True
        self.signal_count += 1

    def consume(self) -> None:
        """Called when a waiter observes the signal."""
        self.signaled = False

    def __repr__(self) -> str:
        state = "signaled" if self.signaled else "unsignaled"
        return f"KernelEvent({self.name}, {state})"
