"""I/O Request Packets and their ownership model (paper §4.1).

An IRP "belongs" to exactly one party at any moment — the kernel, the
driver currently handling it, or a lower driver in the stack.  A driver
may only touch an IRP while it owns it; on receiving one it must either
complete it (``IoCompleteRequest``), pass it down (``IoCallDriver``) or
mark it pending and queue it (``IoMarkIrpPending``).  The simulator
enforces these rules at run time; the Vault checker enforces them at
compile time through the IRP's tracked key and the abstract keyed
``DSTATUS`` result type.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

from ..diagnostics import Code, RuntimeProtocolError

_irp_ids = itertools.count(1)

# Request major codes, mirroring IRP_MJ_*.
IRP_MJ_CREATE = 0
IRP_MJ_CLOSE = 2
IRP_MJ_READ = 3
IRP_MJ_WRITE = 4
IRP_MJ_DEVICE_CONTROL = 14
IRP_MJ_PNP = 27

STATUS_SUCCESS = 0
STATUS_PENDING = 259
STATUS_INVALID_DEVICE_REQUEST = -1073741808
STATUS_NO_MEDIA = -1073741660
STATUS_DEVICE_NOT_READY = -1073741661
STATUS_INVALID_PARAMETER = -1073741811

#: IRP ownership states.
OWNER_KERNEL = "kernel"
OWNER_DRIVER = "driver"
OWNER_LOWER = "lower"
OWNER_COMPLETED = "completed"


class Irp:
    """One I/O request packet."""

    def __init__(self, major: int, minor: int = 0,
                 buffer: Optional[List[int]] = None,
                 length: int = 0, offset: int = 0, ioctl: int = 0):
        self.id = next(_irp_ids)
        self.major = major
        self.minor = minor
        #: Transfer buffer, as a list of byte values so Vault ``byte[]``
        #: views can share the same storage.
        self.buffer: List[int] = buffer if buffer is not None else []
        self.length = length
        self.offset = offset
        self.ioctl = ioctl
        self.information = 0
        self.status: Optional[int] = None
        self.owner = OWNER_KERNEL
        self.pending = False
        #: LIFO stack of (callable, device) completion routines.
        self.completion_routines: List[Tuple[Any, Any]] = []
        #: Current stack location index (grows as the IRP moves down).
        self.stack_location = 0
        self.next_location_prepared = False

    # -- ownership -----------------------------------------------------------

    def require_owner(self, who: str, what: str) -> None:
        if self.owner != who:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"{what} on IRP {self.id}: the IRP belongs to "
                f"'{self.owner}', not '{who}' — a driver may only access "
                f"an IRP it owns")

    def give_to(self, who: str) -> None:
        self.owner = who

    @property
    def completed(self) -> bool:
        return self.owner == OWNER_COMPLETED

    def __repr__(self) -> str:
        return (f"IRP#{self.id}(major={self.major}, owner={self.owner}, "
                f"status={self.status})")


def major_name(major: int) -> str:
    return {
        IRP_MJ_CREATE: "CREATE", IRP_MJ_CLOSE: "CLOSE", IRP_MJ_READ: "READ",
        IRP_MJ_WRITE: "WRITE", IRP_MJ_DEVICE_CONTROL: "DEVICE_CONTROL",
        IRP_MJ_PNP: "PNP",
    }.get(major, f"MJ_{major}")
