"""Interrupt request levels (paper §4.4).

The processor's current IRQL governs which kernel functions may be
called and whether paged memory is accessible.  The simulator tracks
the level explicitly and raises deterministic protocol errors where
real hardware would misbehave (bugcheck IRQL_NOT_LESS_OR_EQUAL, or a
deadlock in the VM system).
"""

from __future__ import annotations

from typing import List

from ..diagnostics import Code, RuntimeProtocolError

LEVELS: List[str] = ["PASSIVE_LEVEL", "APC_LEVEL", "DISPATCH_LEVEL", "DIRQL"]

PASSIVE_LEVEL = "PASSIVE_LEVEL"
APC_LEVEL = "APC_LEVEL"
DISPATCH_LEVEL = "DISPATCH_LEVEL"
DIRQL = "DIRQL"


def level_index(level: str) -> int:
    try:
        return LEVELS.index(level)
    except ValueError:
        raise RuntimeProtocolError(Code.RT_PROTOCOL,
                                   f"unknown IRQL '{level}'")


def leq(a: str, b: str) -> bool:
    return level_index(a) <= level_index(b)


class IrqlState:
    """The current processor interrupt level."""

    def __init__(self, level: str = PASSIVE_LEVEL):
        self.level = level
        self.transitions = 0

    def require(self, at_most: str, what: str) -> None:
        if not leq(self.level, at_most):
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"{what} requires IRQL <= {at_most}, but the current level "
                f"is {self.level}")

    def require_exactly(self, level: str, what: str) -> None:
        if self.level != level:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"{what} requires IRQL == {level}, but the current level "
                f"is {self.level}")

    def raise_to(self, level: str) -> str:
        """Raise the IRQL; returns the previous level for restoration."""
        if level_index(level) < level_index(self.level):
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"cannot 'raise' IRQL downwards ({self.level} -> {level})")
        previous = self.level
        self.level = level
        self.transitions += 1
        return previous

    def lower_to(self, level: str) -> None:
        if level_index(level) > level_index(self.level):
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"cannot 'lower' IRQL upwards ({self.level} -> {level})")
        self.level = level
        self.transitions += 1

    def set(self, level: str) -> None:
        level_index(level)
        self.level = level

    def __repr__(self) -> str:
        return f"IRQL({self.level})"
