"""Paged kernel memory (paper §4.4).

Kernel memory divides into locked-down (non-paged) pages and pages the
virtual memory system manages.  Touching a non-resident paged object
while the IRQL prevents the VM system from running deadlocks the whole
machine; the paper calls this "a subtle error very difficult to
reproduce and correct".  The simulator makes it deterministic: any
access to a non-resident paged object above APC_LEVEL raises
``RT_DEADLOCK``.  Residency can be manipulated (``trim``) so tests can
exercise both the "happens to be resident" and the deadlock cases.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from ..diagnostics import Code, RuntimeProtocolError
from .irql import APC_LEVEL, IrqlState, leq

_page_ids = itertools.count(1)


class PagedObject:
    """A value stored in paged memory with a residency flag."""

    def __init__(self, value: Any, resident: bool = True):
        self.id = next(_page_ids)
        self.value = value
        self.resident = resident
        self.faults = 0


class PageManager:
    def __init__(self, irql: IrqlState):
        self.irql = irql
        self.objects: List[PagedObject] = []

    def allocate(self, value: Any, resident: bool = True) -> PagedObject:
        obj = PagedObject(value, resident)
        self.objects.append(obj)
        return obj

    def access(self, obj: PagedObject) -> Any:
        """Touch a paged object at the current IRQL."""
        if not obj.resident:
            if not leq(self.irql.level, APC_LEVEL):
                raise RuntimeProtocolError(
                    Code.RT_DEADLOCK,
                    f"page fault on non-resident paged object {obj.id} at "
                    f"IRQL {self.irql.level}: the virtual memory system "
                    f"cannot run — the operating system deadlocks")
            # The page-fault handler runs and brings the page in.
            obj.faults += 1
            obj.resident = True
        return obj.value

    def trim(self, obj: Optional[PagedObject] = None) -> None:
        """Evict one object (or all of them) from memory."""
        targets = [obj] if obj is not None else self.objects
        for target in targets:
            target.resident = False
