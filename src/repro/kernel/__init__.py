"""Windows 2000 kernel simulator substrate (paper §4)."""

from .device import (IOCTL_EJECT, IOCTL_GET_GEOMETRY, IOCTL_INSERT,
                     IOCTL_MOTOR_OFF, IOCTL_MOTOR_ON, DeviceObject,
                     FloppyDevice)
from .events import KernelEvent
from .irp import (IRP_MJ_CLOSE, IRP_MJ_CREATE, IRP_MJ_DEVICE_CONTROL,
                  IRP_MJ_PNP, IRP_MJ_READ, IRP_MJ_WRITE, OWNER_COMPLETED,
                  OWNER_DRIVER, OWNER_KERNEL, OWNER_LOWER, STATUS_DEVICE_NOT_READY,
                  STATUS_INVALID_DEVICE_REQUEST, STATUS_INVALID_PARAMETER,
                  STATUS_NO_MEDIA, STATUS_PENDING, STATUS_SUCCESS, Irp,
                  major_name)
from .irql import (APC_LEVEL, DIRQL, DISPATCH_LEVEL, LEVELS, PASSIVE_LEVEL,
                   IrqlState, leq, level_index)
from .paging import PagedObject, PageManager
from .sim import KernelSim
from .spinlock import SpinLock

__all__ = [
    "APC_LEVEL", "DIRQL", "DISPATCH_LEVEL", "DeviceObject", "FloppyDevice",
    "IOCTL_EJECT", "IOCTL_GET_GEOMETRY", "IOCTL_INSERT", "IOCTL_MOTOR_OFF",
    "IOCTL_MOTOR_ON", "IRP_MJ_CLOSE", "IRP_MJ_CREATE",
    "IRP_MJ_DEVICE_CONTROL", "IRP_MJ_PNP", "IRP_MJ_READ", "IRP_MJ_WRITE",
    "Irp", "IrqlState", "KernelEvent", "KernelSim", "LEVELS",
    "OWNER_COMPLETED", "OWNER_DRIVER", "OWNER_KERNEL", "OWNER_LOWER",
    "PASSIVE_LEVEL", "PagedObject", "PageManager", "SpinLock",
    "STATUS_DEVICE_NOT_READY", "STATUS_INVALID_DEVICE_REQUEST",
    "STATUS_INVALID_PARAMETER", "STATUS_NO_MEDIA", "STATUS_PENDING",
    "STATUS_SUCCESS", "leq", "level_index", "major_name",
]
