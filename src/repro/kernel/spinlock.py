"""Kernel spin locks (paper §4.2).

A spin lock guards a tracked data object: initialising a lock consumes
the object's key, acquiring returns it (and raises the IRQL to
DISPATCH_LEVEL), releasing consumes it again and restores the previous
IRQL.  On a uniprocessor, acquiring a lock the current context already
holds spins forever — the simulator reports that deterministically as
a deadlock, mirroring Vault's static double-acquire detection (a key
cannot enter the held-key set twice).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..diagnostics import Code, RuntimeProtocolError
from .irql import DISPATCH_LEVEL, IrqlState

_lock_ids = itertools.count(1)


class SpinLock:
    def __init__(self, name: Optional[str] = None):
        self.id = next(_lock_ids)
        self.name = name or f"lock{self.id}"
        self.held = False
        self.acquisitions = 0

    def acquire(self, irql: IrqlState) -> str:
        """Acquire; returns the previous IRQL for the matching release."""
        if self.held:
            raise RuntimeProtocolError(
                Code.RT_DEADLOCK,
                f"spin lock '{self.name}' acquired while already held "
                f"(self-deadlock)")
        irql.require(DISPATCH_LEVEL, f"KeAcquireSpinLock({self.name})")
        previous = irql.raise_to(DISPATCH_LEVEL)
        self.held = True
        self.acquisitions += 1
        return previous

    def release(self, irql: IrqlState, restore_to: str) -> None:
        if not self.held:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"spin lock '{self.name}' released while not held")
        irql.require_exactly(DISPATCH_LEVEL,
                             f"KeReleaseSpinLock({self.name})")
        self.held = False
        irql.lower_to(restore_to)

    def __repr__(self) -> str:
        state = "held" if self.held else "free"
        return f"SpinLock({self.name}, {state})"
