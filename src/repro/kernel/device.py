"""Device objects and the simulated floppy hardware (paper §4).

A :class:`DeviceObject` is one layer of a driver stack: either a
functional device object (FDO) whose dispatch table is filled in by a
Vault driver, or a physical device object (PDO) backed by a host
device model such as :class:`FloppyDevice`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..diagnostics import Code, RuntimeProtocolError
from .irp import (IRP_MJ_CLOSE, IRP_MJ_CREATE, IRP_MJ_DEVICE_CONTROL,
                  IRP_MJ_PNP, IRP_MJ_READ, IRP_MJ_WRITE, STATUS_NO_MEDIA,
                  STATUS_SUCCESS, Irp)

_device_ids = itertools.count(1)

# IOCTL codes for the floppy device model.
IOCTL_MOTOR_ON = 0x701
IOCTL_MOTOR_OFF = 0x702
IOCTL_EJECT = 0x703
IOCTL_INSERT = 0x704
IOCTL_GET_GEOMETRY = 0x705


class DeviceObject:
    """One device in a driver stack."""

    def __init__(self, name: str, kind: str = "fdo",
                 device: Optional["FloppyDevice"] = None):
        self.id = next(_device_ids)
        self.name = name
        self.kind = kind                   # "fdo" (driver) or "pdo" (hardware)
        self.device = device               # host device model for PDOs
        self.lower: Optional["DeviceObject"] = None
        self.extension: Any = None         # Vault per-device state
        self.dispatch: Dict[int, Any] = {} # major -> Vault closure

    def attach(self, lower: "DeviceObject") -> None:
        self.lower = lower

    def __repr__(self) -> str:
        return f"DeviceObject({self.name}, {self.kind})"


class FloppyDevice:
    """The simulated floppy-disk hardware.

    Models the properties the paper's case-study driver cares about:
    sector-addressed storage, a motor that must be spinning before a
    transfer, removable media, and per-operation latency (expressed as
    simulator ticks) so that requests genuinely complete
    asynchronously.
    """

    SECTOR = 512

    def __init__(self, sectors: int = 2880, seek_ticks: int = 2,
                 transfer_ticks: int = 1):
        self.sectors = sectors
        self.data = bytearray(sectors * self.SECTOR)
        self.motor_on = False
        self.media_present = True
        self.seek_ticks = seek_ticks
        self.transfer_ticks = transfer_ticks
        self.reads = 0
        self.writes = 0

    # -- geometry -----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.sectors * self.SECTOR

    def latency_for(self, length: int) -> int:
        sectors = max(1, (length + self.SECTOR - 1) // self.SECTOR)
        return self.seek_ticks + sectors * self.transfer_ticks

    # -- operations (called by the PDO when its turn comes) ------------------------

    def check_ready(self) -> Optional[int]:
        if not self.media_present:
            return STATUS_NO_MEDIA
        return None

    def read(self, offset: int, length: int) -> bytes:
        self.reads += 1
        end = min(offset + length, self.size_bytes)
        return bytes(self.data[offset:end])

    def write(self, offset: int, payload: bytes) -> int:
        self.writes += 1
        end = min(offset + len(payload), self.size_bytes)
        self.data[offset:end] = payload[:end - offset]
        return end - offset

    def ioctl(self, code: int) -> int:
        if code == IOCTL_MOTOR_ON:
            self.motor_on = True
            return STATUS_SUCCESS
        if code == IOCTL_MOTOR_OFF:
            self.motor_on = False
            return STATUS_SUCCESS
        if code == IOCTL_EJECT:
            self.media_present = False
            return STATUS_SUCCESS
        if code == IOCTL_INSERT:
            self.media_present = True
            return STATUS_SUCCESS
        if code == IOCTL_GET_GEOMETRY:
            return STATUS_SUCCESS
        raise RuntimeProtocolError(
            Code.RT_PROTOCOL, f"unknown floppy IOCTL {code:#x}")
