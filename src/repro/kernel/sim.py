"""The kernel simulator facade — the paper's testbed, substituted.

The paper validates Vault against the real Windows 2000 kernel; we
cannot ship that, so :class:`KernelSim` implements the same *interface
contract* the paper's §4 describes: asynchronous IRP routing through a
driver stack, completion routines, events, spin locks, IRQLs and paged
memory — with every protocol violation detected deterministically at
run time.  Vault drivers run on top of it through the interpreter; the
checked/unchecked comparison of the paper's claims is then measurable.

Cooperative scheduling: hardware operations are queued with a latency
in ticks; ``KeWaitForEvent`` and ``run_until_complete`` pump the queue.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..diagnostics import Code, RuntimeProtocolError
from ..runtime.values import VHandle, VVariant
from .device import DeviceObject, FloppyDevice
from .events import KernelEvent
from .irp import (IRP_MJ_DEVICE_CONTROL, IRP_MJ_READ, IRP_MJ_WRITE,
                  OWNER_COMPLETED, OWNER_DRIVER, OWNER_KERNEL, OWNER_LOWER,
                  STATUS_INVALID_DEVICE_REQUEST, STATUS_NO_MEDIA,
                  STATUS_SUCCESS, Irp, major_name)
from .irql import DISPATCH_LEVEL, PASSIVE_LEVEL, IrqlState
from .paging import PageManager
from .spinlock import SpinLock


class KernelSim:
    """One simulated kernel instance."""

    def __init__(self) -> None:
        self.irql = IrqlState()
        self.pages = PageManager(self.irql)
        self.devices: Dict[str, DeviceObject] = {}
        self.work: List[List[Any]] = []        # [ticks_remaining, thunk]
        self.live_irps: Dict[int, Irp] = {}
        self.completed_irps: List[Irp] = []
        self.ticks = 0
        self.log: List[str] = []

    # -- device stack construction -------------------------------------------

    def create_pdo(self, name: str, device: FloppyDevice) -> DeviceObject:
        pdo = DeviceObject(name, kind="pdo", device=device)
        self.devices[name] = pdo
        return pdo

    def create_fdo(self, name: str, extension: Any) -> DeviceObject:
        fdo = DeviceObject(name, kind="fdo")
        fdo.extension = extension
        self.devices[name] = fdo
        return fdo

    def top_device(self, name: str) -> DeviceObject:
        dev = self.devices.get(name)
        if dev is None:
            raise RuntimeProtocolError(Code.RT_PROTOCOL,
                                       f"no device named '{name}'")
        return dev

    # -- request submission (host-side API used by examples/benches) ---------------

    def submit_request(self, interp, device_name: str, major: int,
                       *, minor: int = 0,
                       buffer: Optional[List[int]] = None,
                       length: int = 0, offset: int = 0,
                       ioctl: int = 0) -> Irp:
        """Build an IRP and dispatch it to the named device's driver."""
        irp = Irp(major, minor, buffer, length, offset, ioctl)
        self.live_irps[irp.id] = irp
        self.log.append(f"submit {major_name(major)} -> {device_name} "
                        f"(IRP#{irp.id})")
        self._dispatch(interp, self.top_device(device_name), irp)
        return irp

    def run_until_complete(self, interp, irp: Irp,
                           max_ticks: int = 10_000) -> Irp:
        budget = max_ticks
        while not irp.completed:
            if not self.work:
                raise RuntimeProtocolError(
                    Code.RT_DEADLOCK,
                    f"IRP#{irp.id} cannot complete: no pending work "
                    f"(a driver dropped or forgot the request)")
            self.tick(interp)
            budget -= 1
            if budget <= 0:
                raise RuntimeProtocolError(
                    Code.RT_DEADLOCK,
                    f"IRP#{irp.id} did not complete in {max_ticks} ticks")
        return irp

    def drain(self, interp, max_ticks: int = 10_000) -> None:
        budget = max_ticks
        while self.work and budget > 0:
            self.tick(interp)
            budget -= 1

    # -- scheduling ------------------------------------------------------------------

    def schedule(self, ticks: int, thunk: Callable[[], None]) -> None:
        self.work.append([max(ticks, 1), thunk])

    def tick(self, interp) -> None:
        self.ticks += 1
        due: List[Callable[[], None]] = []
        remaining: List[List[Any]] = []
        for item in self.work:
            item[0] -= 1
            if item[0] <= 0:
                due.append(item[1])
            else:
                remaining.append(item)
        self.work = remaining
        for thunk in due:
            thunk()

    # -- IRP routing ---------------------------------------------------------------------

    def _dispatch(self, interp, dev: DeviceObject, irp: Irp) -> None:
        """Hand an IRP to one layer of the stack."""
        if dev.kind == "pdo":
            self._start_hardware(interp, dev, irp)
            return
        routine = dev.dispatch.get(irp.major)
        if routine is None:
            irp.give_to(OWNER_DRIVER)
            self.io_complete_request(interp, irp,
                                     STATUS_INVALID_DEVICE_REQUEST)
            return
        irp.give_to(OWNER_DRIVER)
        result = interp.call_value(
            routine, [dev.extension, VHandle("irp", irp)])
        self._check_dstatus(result, irp, dev)

    @staticmethod
    def _check_dstatus(result: Any, irp: Irp, dev: DeviceObject) -> None:
        if not (isinstance(result, VHandle) and result.kind == "dstatus"
                and result.resource == irp.id):
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"dispatch routine of '{dev.name}' returned {result!r} "
                f"instead of a DSTATUS for IRP#{irp.id} — every request "
                f"must be completed, passed on, or marked pending")

    def io_call_driver(self, interp, dev: DeviceObject, irp: Irp
                       ) -> VHandle:
        """Pass an IRP to the next lower device (paper §4.1)."""
        irp.require_owner(OWNER_DRIVER, "IoCallDriver")
        if not irp.next_location_prepared:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"IoCallDriver on IRP#{irp.id} without preparing the next "
                f"stack location (copy or skip the current one first)")
        irp.next_location_prepared = False
        irp.stack_location += 1
        irp.give_to(OWNER_LOWER)
        self.log.append(f"IRP#{irp.id} -> {dev.name}")
        self._dispatch(interp, dev, irp)
        return VHandle("dstatus", irp.id)

    def io_complete_request(self, interp, irp: Irp, status: int) -> VHandle:
        irp.require_owner(OWNER_DRIVER, "IoCompleteRequest")
        irp.status = status
        self.log.append(f"IRP#{irp.id} completed status={status}")
        self._bubble_up(interp, irp)
        return VHandle("dstatus", irp.id)

    def io_mark_pending(self, irp: Irp) -> VHandle:
        irp.require_owner(OWNER_DRIVER, "IoMarkIrpPending")
        irp.pending = True
        return VHandle("dstatus", irp.id)

    def _start_hardware(self, interp, pdo: DeviceObject, irp: Irp) -> None:
        """Queue the hardware operation; completion happens in a later
        tick, making the stack genuinely asynchronous."""
        device = pdo.device
        assert device is not None

        def finish() -> None:
            status = device.check_ready() \
                if irp.major in (IRP_MJ_READ, IRP_MJ_WRITE) else None
            if status is None:
                if irp.major == IRP_MJ_READ:
                    data = device.read(irp.offset, irp.length)
                    irp.buffer[:len(data)] = list(data)
                    irp.information = len(data)
                    status = STATUS_SUCCESS
                elif irp.major == IRP_MJ_WRITE:
                    written = device.write(irp.offset,
                                           bytes(irp.buffer[:irp.length]))
                    irp.information = written
                    status = STATUS_SUCCESS
                elif irp.major == IRP_MJ_DEVICE_CONTROL:
                    status = device.ioctl(irp.ioctl)
                else:
                    status = STATUS_SUCCESS
            irp.status = status
            self._bubble_up(interp, irp)

        latency = device.latency_for(irp.length) \
            if irp.major in (IRP_MJ_READ, IRP_MJ_WRITE) else 1
        self.schedule(latency, finish)

    def _bubble_up(self, interp, irp: Irp) -> None:
        """Run completion routines (LIFO) as the IRP travels back up."""
        while irp.completion_routines:
            routine, dev = irp.completion_routines.pop()
            irp.give_to(OWNER_DRIVER)
            result = interp.call_value(
                routine, [VHandle("device", dev), VHandle("irp", irp)])
            if isinstance(result, VVariant) and \
                    result.ctor == "MoreProcessingRequired":
                # The driver reclaims ownership; it will complete the
                # IRP again later (Figure 7's idiom).
                self.log.append(f"IRP#{irp.id} reclaimed by {dev.name}")
                return
            if isinstance(result, VVariant) and result.ctor == "Finished":
                continue
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"completion routine of '{dev.name}' returned {result!r}")
        irp.give_to(OWNER_COMPLETED)
        self.completed_irps.append(irp)
        self.live_irps.pop(irp.id, None)

    # -- audits -------------------------------------------------------------------------

    def audit(self) -> List[str]:
        """IRPs neither completed nor pending-with-owner (leaks)."""
        leaks = []
        for irp in self.live_irps.values():
            if not irp.pending:
                leaks.append(f"IRP#{irp.id} ({major_name(irp.major)}) "
                             f"owned by '{irp.owner}'")
        return leaks

    def assert_no_leaks(self) -> None:
        leaked = self.audit()
        if leaked:
            raise RuntimeProtocolError(
                Code.RT_LEAK, "leaked IRP(s): " + "; ".join(leaked))
