"""A wire-level chaos proxy for the check daemon.

:class:`ChaosProxy` sits between a client and a real daemon on a
second Unix socket and *acts out* the wire faults of a seeded
:class:`~repro.pipeline.faults.FaultPlan` (``torn@R``, ``oversize@R``,
``stall@R``, ...).  It is the socket twin of the worker pool's
dispatch-fault injection: every request relayed through the proxy gets
a global **request index**, the plan's :meth:`~repro.pipeline.faults.
FaultPlan.wire_fault` decides what (if anything) goes wrong for that
index, and because a client retry travels under a fresh index, chaos
runs are deterministic and convergent — fault the first attempt,
watch the retry (or the in-process fallback) produce byte-identical
diagnostics.

The faults, as seen by the client:

``torn``        the reply frame stops halfway, then EOF
``garbage-frame``  a well-framed but undecodable reply payload
``oversize``    a reply header announcing more than ``MAX_FRAME``
``disconnect``  EOF right after the request, before any reply byte
``stall``       the connection stays open but nothing ever arrives
                (the client's read timeout must fire)
``kill``        the request is forwarded with the ``test_die`` chaos
                hook set, so a daemon started with
                ``VAULTC_SERVER_TEST_OPS=1`` dies mid-check

Threading: one acceptor thread plus one thread per client connection —
the proxy must keep relaying while a ``stall`` victim sits blocked.
The daemon side stays oblivious; nothing here touches daemon state.
Test-only machinery, exercised by ``tests/test_server.py`` and
``benchmarks/daemon_chaos_smoke.py``.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
from collections import Counter
from typing import List, Optional

from ..pipeline.faults import FaultPlan
from .protocol import HEADER_SIZE, MAX_FRAME, encode_frame

__all__ = ["ChaosProxy"]

_HEADER = struct.Struct("!I")


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    parts: List[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 16))
        except OSError:
            return None
        if not chunk:
            return None
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def _read_raw_frame(sock: socket.socket) -> Optional[bytes]:
    """One complete frame as raw bytes (header included), or ``None``
    on EOF/error.  The proxy relays bytes, it does not validate."""
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        return None
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return header + payload


class ChaosProxy:
    """Relay daemon traffic, injecting wire faults by request index.

    Use as a context manager (or call :meth:`start`/:meth:`close`).
    Point clients at :attr:`listen_path`; the proxy dials
    ``upstream_path`` once per client connection.
    """

    def __init__(self, listen_path: str, upstream_path: str,
                 plan: Optional[FaultPlan] = None):
        self.listen_path = listen_path
        self.upstream_path = upstream_path
        self.plan = plan if plan is not None else FaultPlan()
        self.requests_seen = 0
        #: fault kind -> number of times it was acted out.
        self.faults_acted: "Counter[str]" = Counter()
        self._lock = threading.Lock()
        self._stop = False
        self._threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if os.path.exists(self.listen_path):
            os.unlink(self.listen_path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.listen_path)
        self._listener.listen(16)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._stop = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        try:
            os.unlink(self.listen_path)
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []

    def reset(self) -> None:
        """Zero the request counter (fresh per-example determinism for
        property tests that reuse one proxy)."""
        with self._lock:
            self.requests_seen = 0

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- relaying -------------------------------------------------------------

    def _next_index(self) -> int:
        with self._lock:
            index = self.requests_seen
            self.requests_seen += 1
            return index

    def _accept_loop(self) -> None:
        while not self._stop:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_client, args=(client,),
                name="chaos-proxy-conn", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _serve_client(self, client: socket.socket) -> None:
        upstream: Optional[socket.socket] = None
        try:
            while not self._stop:
                raw = _read_raw_frame(client)
                if raw is None:
                    return
                index = self._next_index()
                fault = self.plan.wire_fault(index)
                if fault == "disconnect":
                    self.faults_acted[fault] += 1
                    return                      # EOF before any reply
                if fault == "oversize":
                    self.faults_acted[fault] += 1
                    client.sendall(_HEADER.pack(MAX_FRAME + 1))
                    return
                if fault == "garbage-frame":
                    self.faults_acted[fault] += 1
                    junk = b"\xff\xfenot json at all\x00"
                    client.sendall(_HEADER.pack(len(junk)) + junk)
                    return
                if fault == "stall":
                    self.faults_acted[fault] += 1
                    # Hold the connection open, never reply; block on
                    # the client's own close (its read timeout fires).
                    _recv_exact(client, 1 << 30)
                    return
                if fault == "kill":
                    self.faults_acted[fault] += 1
                    raw = self._poison(raw)
                if upstream is None:
                    upstream = socket.socket(socket.AF_UNIX,
                                             socket.SOCK_STREAM)
                    upstream.connect(self.upstream_path)
                upstream.sendall(raw)
                reply = _read_raw_frame(upstream)
                if reply is None:
                    return                      # daemon died mid-check
                if fault == "torn":
                    self.faults_acted[fault] += 1
                    client.sendall(reply[:max(1, len(reply) // 2)])
                    return
                client.sendall(reply)
        except OSError:
            return
        finally:
            for sock in (client, upstream):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    @staticmethod
    def _poison(raw: bytes) -> bytes:
        """Re-encode a request frame with the ``test_die`` chaos hook
        set, so a test-ops daemon dies mid-check on it."""
        import json
        try:
            payload = json.loads(raw[HEADER_SIZE:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return raw
        if not isinstance(payload, dict):
            return raw
        payload["test_die"] = True
        return encode_frame(payload)
