"""Crash supervision for the check daemon (``vaultc serve --supervise``).

The daemon is designed not to die — worker faults are contained by the
pool supervisor, client faults by the protocol layer — but "designed
not to" is not "cannot": the OOM killer, a bug in a native extension,
or an operator's stray ``kill -9`` all end the process without
warning.  ``--supervise`` runs the real server in a *child* process
and restarts it when it crashes, applying the same discipline the
worker-pool supervisor applies to workers one level down:

* a child that exits **cleanly** (rc 0 — idle timeout, drain,
  ``shutdown`` op) ends supervision: intentional exits are honoured,
  never fought;
* a crash is respawned after **crash-loop backoff** — the delay
  doubles per consecutive quick death (a child that stayed up
  ``healthy_seconds`` resets the streak) up to ``backoff_cap``;
* respawns are **rate-limited**: more than ``max_respawns`` inside
  ``respawn_window`` seconds means the daemon cannot hold (bad config,
  poisoned socket dir) and the supervisor gives up with rc 1 rather
  than flapping forever;
* SIGTERM/SIGINT to the supervisor are **forwarded** to the child, so
  the drain semantics of :func:`repro.server.daemon.serve` work
  unchanged under supervision;
* every respawn is a ``daemon_respawn`` event plus one stderr line —
  the flap history is observable, not silent.

Time sources, sleeping, and process spawning are injectable, so the
whole policy is unit-testable without forking a single real daemon.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from ..obs import Telemetry

__all__ = ["Supervisor", "DEFAULT_BACKOFF_BASE", "DEFAULT_BACKOFF_CAP",
           "DEFAULT_HEALTHY_SECONDS", "DEFAULT_MAX_RESPAWNS",
           "DEFAULT_RESPAWN_WINDOW"]

#: first respawn delay; doubles per consecutive quick crash.
DEFAULT_BACKOFF_BASE = 0.5

#: ceiling on one respawn delay.
DEFAULT_BACKOFF_CAP = 30.0

#: a child alive this long is "healthy": the backoff streak resets.
DEFAULT_HEALTHY_SECONDS = 5.0

#: respawns tolerated inside one window before giving up.
DEFAULT_MAX_RESPAWNS = 8

#: seconds of respawn history the rate limit looks at.
DEFAULT_RESPAWN_WINDOW = 60.0


def _default_spawn(args: Sequence[str]) -> "subprocess.Popen":
    return subprocess.Popen(list(args))


class Supervisor:
    """Respawn a crashing daemon child with backoff and a rate limit.

    ``child_args`` is the full argv of the child (typically this very
    CLI minus ``--supervise``).  ``run()`` blocks until the child exits
    cleanly, the rate limit trips, or a forwarded signal ends the
    child; it returns the supervisor's exit code.
    """

    def __init__(self, child_args: Sequence[str],
                 telemetry: Optional[Telemetry] = None,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 healthy_seconds: float = DEFAULT_HEALTHY_SECONDS,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 respawn_window: float = DEFAULT_RESPAWN_WINDOW,
                 spawn: Callable[[Sequence[str]], object] = _default_spawn,
                 sleep: Callable[[float], None] = time.sleep,
                 monotonic: Callable[[], float] = time.monotonic,
                 stderr=None):
        self.child_args = list(child_args)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.healthy_seconds = healthy_seconds
        self.max_respawns = max_respawns
        self.respawn_window = respawn_window
        self._spawn = spawn
        self._sleep = sleep
        self._monotonic = monotonic
        self._stderr = stderr if stderr is not None else sys.stderr
        self._child = None
        self._stopping = False
        #: monotonic stamps of recent respawns (the rate-limit window).
        self._respawn_times: Deque[float] = deque()
        self.respawns = 0
        self.consecutive_crashes = 0

    # -- policy pieces (pure, unit-tested directly) ---------------------------

    def backoff_delay(self) -> float:
        """Delay before the next respawn given the crash streak."""
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** self.consecutive_crashes))

    def rate_limited(self, now: float) -> bool:
        """Would one more respawn exceed the window's budget?"""
        cutoff = now - self.respawn_window
        while self._respawn_times and self._respawn_times[0] < cutoff:
            self._respawn_times.popleft()
        return len(self._respawn_times) >= self.max_respawns

    # -- signal forwarding ----------------------------------------------------

    def request_stop(self, signum: Optional[int] = None) -> None:
        """Forward a stop to the child and end supervision once it
        exits.  Safe from signal handlers."""
        import signal as _signal
        self._stopping = True
        child = self._child
        if child is not None:
            try:
                child.send_signal(signum if signum is not None
                                  else _signal.SIGTERM)
            except (OSError, AttributeError):
                pass

    # -- the loop -------------------------------------------------------------

    def run(self) -> int:
        import signal

        previous: List = []
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous.append((signum, signal.signal(
                    signum, lambda s, _f: self.request_stop(s))))
        except ValueError:
            pass                      # not the main thread
        try:
            return self._run_loop()
        finally:
            for signum, handler in previous:
                signal.signal(signum, handler)

    def _run_loop(self) -> int:
        while True:
            started = self._monotonic()
            try:
                self._child = self._spawn(self.child_args)
            except OSError as exc:
                print(f"vaultc supervise: cannot spawn daemon: {exc}",
                      file=self._stderr, flush=True)
                return 1
            rc = self._wait_child()
            lived = self._monotonic() - started
            self._child = None
            if self._stopping or rc == 0:
                # A clean exit (idle timeout, drain, shutdown op) or a
                # forwarded stop: supervision is done.
                return 0 if rc == 0 else rc
            if lived >= self.healthy_seconds:
                self.consecutive_crashes = 0
            now = self._monotonic()
            if self.rate_limited(now):
                print(f"vaultc supervise: daemon crashed "
                      f"{self.max_respawns} times in "
                      f"{self.respawn_window:g}s; giving up",
                      file=self._stderr, flush=True)
                self.telemetry.events.emit(
                    "daemon_giveup",
                    f"daemon crash-looped past {self.max_respawns} "
                    f"respawns in {self.respawn_window:g}s",
                    respawns=self.respawns, rc=rc)
                return 1
            delay = self.backoff_delay()
            self.consecutive_crashes += 1
            self.respawns += 1
            self._respawn_times.append(now)
            print(f"vaultc supervise: daemon exited with rc {rc} "
                  f"after {lived:.1f}s; respawning in {delay:.1f}s "
                  f"(respawn #{self.respawns})",
                  file=self._stderr, flush=True)
            self.telemetry.events.emit(
                "daemon_respawn",
                f"daemon exited rc {rc} after {lived:.1f}s; "
                f"respawn #{self.respawns} in {delay:.1f}s",
                rc=rc, lived_seconds=lived, delay_seconds=delay,
                respawn=self.respawns)
            self._sleep(delay)
            if self._stopping:
                return 0

    def _wait_child(self) -> int:
        """Block until the child exits; tolerate interrupted waits
        (a forwarded signal lands while we sit in ``wait``)."""
        while True:
            try:
                return self._child.wait()
            except KeyboardInterrupt:
                self.request_stop()
            except OSError:
                poll = getattr(self._child, "poll", None)
                rc = poll() if poll is not None else None
                return rc if rc is not None else 1
