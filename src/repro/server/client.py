"""Client side of the check daemon: connect, request, fall back.

:class:`DaemonClient` is the raw wire client.  :func:`check_detailed`
is what ``vaultc check --daemon`` uses: it tries the daemon and
**transparently falls back to in-process checking** whenever the
daemon is unreachable, dies mid-request, or replies with something
unusable — with diagnostics byte-identical in both paths (the daemon
runs the same :class:`~repro.pipeline.CheckSession` pipeline, whose
output is pinned byte-for-byte against ``repro.check_source`` by the
golden corpus in ``tests/test_golden.py``).

The only daemon failure that is *not* silently absorbed is a reply of
kind ``vault_error``: that means the daemon successfully determined
the *input* is broken (e.g. a syntax crash), so the client raises the
same :class:`~repro.diagnostics.VaultError` the in-process path would
have raised — identical CLI behaviour, no wasted re-check.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Dict, Optional

from ..diagnostics import VaultError
from .daemon import default_socket_path, unix_sockets_available
from .protocol import (PROTOCOL_VERSION, ProtocolError, normalize_options,
                       recv_frame, send_frame)

#: seconds allowed for connect + ping; actual checks run uncapped (the
#: daemon's watchdog bounds runaway work server-side).
CONNECT_TIMEOUT = 5.0


class DaemonUnavailable(Exception):
    """No usable daemon behind the socket (absent, dead, or talking a
    different protocol) — the cue to check in-process instead."""


def resolve_socket(spec: Optional[str]) -> str:
    """``auto``/``None``/empty -> the default path; else the path."""
    if not spec or spec == "auto":
        return default_socket_path()
    return spec


class DaemonClient:
    """A blocking client for one daemon connection."""

    def __init__(self, socket_path: Optional[str] = None,
                 connect_timeout: float = CONNECT_TIMEOUT):
        if not unix_sockets_available():
            raise DaemonUnavailable("no AF_UNIX support on this platform")
        self.socket_path = resolve_socket(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        try:
            self._sock.connect(self.socket_path)
        except OSError as exc:
            self._sock.close()
            raise DaemonUnavailable(
                f"cannot reach a check daemon at {self.socket_path}: "
                f"{exc}") from None
        # Checks may legitimately take a while; only connect is capped.
        self._sock.settimeout(None)

    def request(self, payload: dict) -> dict:
        """One request/reply round trip; :class:`DaemonUnavailable` on
        any transport-level failure (EOF, reset, garbage frames)."""
        try:
            send_frame(self._sock, payload)
            reply = recv_frame(self._sock)
        except (OSError, ProtocolError) as exc:
            raise DaemonUnavailable(
                f"daemon connection failed mid-request: {exc}") from None
        if reply is None:
            raise DaemonUnavailable("daemon closed the connection "
                                    "without replying")
        return reply

    # -- convenience ops -----------------------------------------------------

    def ping(self) -> dict:
        reply = self.request({"op": "ping"})
        if not reply.get("ok") or reply.get("version") != PROTOCOL_VERSION:
            raise DaemonUnavailable(
                f"daemon speaks protocol {reply.get('version')!r}, "
                f"client speaks {PROTOCOL_VERSION}")
        return reply

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def telemetry(self) -> dict:
        return self.request({"op": "telemetry"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def check(self, source: str, filename: str = "<input>",
              options: Optional[Dict[str, object]] = None) -> dict:
        return self.request({"op": "check", "source": source,
                             "filename": filename,
                             "options": options or {}})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class CheckOutcome:
    """What ``vaultc check`` needs to print, wherever it was computed."""

    ok: bool
    render: str
    errors: int
    via_daemon: bool


def check_via_daemon(source: str, filename: str = "<input>",
                     options: Optional[Dict[str, object]] = None,
                     socket_path: Optional[str] = "auto"
                     ) -> Optional[CheckOutcome]:
    """Try one check through the daemon; ``None`` means "no daemon —
    check in-process yourself".  Raises :class:`VaultError` only when
    the daemon proved the input itself is broken."""
    try:
        with DaemonClient(socket_path) as client:
            reply = client.check(source, filename,
                                 normalize_options(options))
    except DaemonUnavailable:
        return None
    if reply.get("ok") is True and isinstance(reply.get("render"), str):
        return CheckOutcome(ok=bool(reply.get("check_ok")),
                            render=reply["render"],
                            errors=int(reply.get("errors", 0)),
                            via_daemon=True)
    if reply.get("kind") == "vault_error":
        raise VaultError(str(reply.get("error", "daemon check failed")))
    # Unusable reply (internal daemon error, unknown shape): behave as
    # if there were no daemon at all.
    return None


def check_detailed(source: str, filename: str = "<input>",
                   options: Optional[Dict[str, object]] = None,
                   socket_path: Optional[str] = "auto") -> CheckOutcome:
    """Daemon-first check with transparent in-process fallback.

    ``socket_path=None`` skips the daemon entirely.  The fallback
    produces byte-identical output to the daemon path (same pipeline,
    same renderer).
    """
    if socket_path is not None:
        outcome = check_via_daemon(source, filename, options, socket_path)
        if outcome is not None:
            return outcome
    from ..api import check_source
    options = normalize_options(options)
    if options["cache_dir"] or options["jobs"] not in (1, None) \
            or options["shared_cache"]:
        from ..pipeline import CheckSession
        from ..pipeline.scheduler import BREAK_EVEN_SECONDS
        break_even = options["break_even"]
        store = None
        if options["shared_cache"]:
            from ..cache import open_store
            store = open_store(options["shared_cache"])
        try:
            with CheckSession(
                    stdlib=options["stdlib"], units=options["units"],
                    jobs=options["jobs"] or 1,
                    cache_dir=options["cache_dir"],
                    break_even_seconds=BREAK_EVEN_SECONDS
                    if break_even is None else float(break_even),
                    shared_store=store) as session:
                report = session.check(source, filename)
        finally:
            if store is not None:
                store.close()
    else:
        report = check_source(source, filename,
                              stdlib=options["stdlib"],
                              units=options["units"])
    return CheckOutcome(ok=report.ok, render=report.render(),
                        errors=len(report.errors), via_daemon=False)
