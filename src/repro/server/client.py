"""Client side of the check daemon: connect, request, fall back.

:class:`DaemonClient` is the raw wire client.  :func:`check_detailed`
is what ``vaultc check --daemon`` uses: it tries the daemon and
**transparently falls back to in-process checking** whenever the
daemon is unreachable, dies mid-request, or replies with something
unusable — with diagnostics byte-identical in both paths (the daemon
runs the same :class:`~repro.pipeline.CheckSession` pipeline, whose
output is pinned byte-for-byte against ``repro.check_source`` by the
golden corpus in ``tests/test_golden.py``).

The only daemon failure that is *not* silently absorbed is a reply of
kind ``vault_error``: that means the daemon successfully determined
the *input* is broken (e.g. a syntax crash), so the client raises the
same :class:`~repro.diagnostics.VaultError` the in-process path would
have raised — identical CLI behaviour, no wasted re-check.

Resilience contract (the client half of the daemon's admission
control):

* every socket carries a **read timeout** — a *hung* daemon (accepted
  the connection, never replies) surfaces as
  :class:`DaemonUnavailable` after ``read_timeout`` seconds instead of
  wedging the caller forever;
* :func:`check_via_daemon` retries **transport** failures and ``busy``
  replies a bounded number of times with exponential backoff plus full
  jitter (checks are idempotent: the daemon recomputes from the
  request bytes, so a retry can only produce the same reply);
* ``draining`` and ``deadline_exceeded`` replies and exhausted retries
  all collapse to "no daemon" — the caller falls back in-process and
  output stays byte-identical either way.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..diagnostics import VaultError
from .daemon import default_socket_path, unix_sockets_available
from .protocol import (PROTOCOL_VERSION, ProtocolError, normalize_options,
                       recv_frame, send_frame)

#: seconds allowed for connect + ping.
CONNECT_TIMEOUT = 5.0

#: seconds allowed for one reply.  Generous — a cold parallel check of
#: a big module is legitimate work — but finite, so a wedged daemon
#: costs one bounded wait and a fallback, never a hang.
READ_TIMEOUT = 120.0

#: transport-failure / busy retries in :func:`check_via_daemon`.
DEFAULT_RETRIES = 2

#: first backoff window; doubles per attempt, full jitter.
BACKOFF_BASE_SECONDS = 0.05

#: ceiling on honouring a ``busy`` reply's ``retry_after_ms`` hint —
#: the daemon may ask for seconds, but an interactive client prefers
#: falling back to waiting that long.
MAX_BUSY_WAIT_SECONDS = 0.5


def backoff_delay(attempt: int, rng: Callable[[], float]) -> float:
    """Exponential backoff with full jitter: a uniform draw from
    ``[0, BACKOFF_BASE * 2^attempt]`` — retries from a burst of
    clients decorrelate instead of reconverging."""
    return BACKOFF_BASE_SECONDS * (2 ** attempt) * rng()


class DaemonUnavailable(Exception):
    """No usable daemon behind the socket (absent, dead, or talking a
    different protocol) — the cue to check in-process instead."""


def resolve_socket(spec: Optional[str]) -> str:
    """``auto``/``None``/empty -> the default path; else the path."""
    if not spec or spec == "auto":
        return default_socket_path()
    return spec


class DaemonClient:
    """A blocking client for one daemon connection."""

    def __init__(self, socket_path: Optional[str] = None,
                 connect_timeout: float = CONNECT_TIMEOUT,
                 read_timeout: Optional[float] = READ_TIMEOUT):
        if not unix_sockets_available():
            raise DaemonUnavailable("no AF_UNIX support on this platform")
        self.socket_path = resolve_socket(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        try:
            self._sock.connect(self.socket_path)
        except OSError as exc:
            self._sock.close()
            raise DaemonUnavailable(
                f"cannot reach a check daemon at {self.socket_path}: "
                f"{exc}") from None
        # Every round trip stays bounded: a daemon that accepted the
        # connection but never replies (wedged, not dead) must surface
        # as DaemonUnavailable, not hang the caller.
        self._sock.settimeout(read_timeout)

    def request(self, payload: dict) -> dict:
        """One request/reply round trip; :class:`DaemonUnavailable` on
        any transport-level failure (EOF, reset, garbage frames)."""
        try:
            send_frame(self._sock, payload)
            reply = recv_frame(self._sock)
        except (OSError, ProtocolError) as exc:
            raise DaemonUnavailable(
                f"daemon connection failed mid-request: {exc}") from None
        if reply is None:
            raise DaemonUnavailable("daemon closed the connection "
                                    "without replying")
        return reply

    # -- convenience ops -----------------------------------------------------

    def ping(self) -> dict:
        reply = self.request({"op": "ping"})
        if not reply.get("ok") or reply.get("version") != PROTOCOL_VERSION:
            raise DaemonUnavailable(
                f"daemon speaks protocol {reply.get('version')!r}, "
                f"client speaks {PROTOCOL_VERSION}")
        return reply

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def telemetry(self) -> dict:
        return self.request({"op": "telemetry"})

    def health(self) -> dict:
        """Cheap liveness + load: pid, queue depth/limit, drain state."""
        return self.request({"op": "health"})

    def shutdown(self, drain: bool = False) -> dict:
        payload = {"op": "shutdown"}
        if drain:
            payload["drain"] = True
        return self.request(payload)

    def check(self, source: str, filename: str = "<input>",
              options: Optional[Dict[str, object]] = None,
              deadline_ms: Optional[float] = None,
              req_id: object = None) -> dict:
        payload = {"op": "check", "source": source,
                   "filename": filename, "options": options or {}}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if req_id is not None:
            payload["id"] = req_id
        return self.request(payload)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class CheckOutcome:
    """What ``vaultc check`` needs to print, wherever it was computed."""

    ok: bool
    render: str
    errors: int
    via_daemon: bool


def check_via_daemon(source: str, filename: str = "<input>",
                     options: Optional[Dict[str, object]] = None,
                     socket_path: Optional[str] = "auto",
                     retries: int = DEFAULT_RETRIES,
                     read_timeout: Optional[float] = READ_TIMEOUT,
                     _sleep: Callable[[float], None] = time.sleep,
                     _rng: Optional[Callable[[], float]] = None
                     ) -> Optional[CheckOutcome]:
    """Try one check through the daemon; ``None`` means "no daemon —
    check in-process yourself".  Raises :class:`VaultError` only when
    the daemon proved the input itself is broken.

    Transport failures (daemon died mid-reply, torn frame, read
    timeout) and ``busy`` replies are retried up to ``retries`` times
    with exponential backoff plus jitter.  A check request is
    idempotent — the daemon recomputes the reply from the request
    bytes — so a retry can only yield the same diagnostics, never a
    duplicate.  ``draining``/``deadline_exceeded`` replies and an
    exhausted budget fall back (return ``None``) instead of piling
    onto a daemon that asked us to go away."""
    rng = _rng if _rng is not None else random.random
    normalized = normalize_options(options)
    attempt = 0
    while True:
        try:
            with DaemonClient(socket_path,
                              read_timeout=read_timeout) as client:
                reply = client.check(source, filename, normalized)
        except DaemonUnavailable:
            if attempt >= retries:
                return None
            _sleep(backoff_delay(attempt, rng))
            attempt += 1
            continue
        if reply.get("ok") is True and isinstance(reply.get("render"),
                                                  str):
            return CheckOutcome(ok=bool(reply.get("check_ok")),
                                render=reply["render"],
                                errors=int(reply.get("errors", 0)),
                                via_daemon=True)
        kind = reply.get("kind")
        if kind == "vault_error":
            raise VaultError(str(reply.get("error",
                                           "daemon check failed")))
        if kind == "busy" and attempt < retries:
            hint = reply.get("retry_after_ms")
            wait = (float(hint) / 1000.0
                    if isinstance(hint, (int, float))
                    and not isinstance(hint, bool)
                    else BACKOFF_BASE_SECONDS)
            wait = min(wait, MAX_BUSY_WAIT_SECONDS)
            _sleep(wait * (0.5 + 0.5 * rng()))     # jittered hint
            attempt += 1
            continue
        # draining, deadline_exceeded, internal_error, unknown shape,
        # or an exhausted busy budget: behave as if there were no
        # daemon at all.
        return None


def check_detailed(source: str, filename: str = "<input>",
                   options: Optional[Dict[str, object]] = None,
                   socket_path: Optional[str] = "auto") -> CheckOutcome:
    """Daemon-first check with transparent in-process fallback.

    ``socket_path=None`` skips the daemon entirely.  The fallback
    produces byte-identical output to the daemon path (same pipeline,
    same renderer).
    """
    if socket_path is not None:
        outcome = check_via_daemon(source, filename, options, socket_path)
        if outcome is not None:
            return outcome
    from ..api import check_source
    options = normalize_options(options)
    if options["cache_dir"] or options["jobs"] not in (1, None) \
            or options["shared_cache"]:
        from ..pipeline import CheckSession
        from ..pipeline.scheduler import BREAK_EVEN_SECONDS
        break_even = options["break_even"]
        store = None
        if options["shared_cache"]:
            from ..cache import open_store
            store = open_store(options["shared_cache"])
        try:
            with CheckSession(
                    stdlib=options["stdlib"], units=options["units"],
                    jobs=options["jobs"] or 1,
                    cache_dir=options["cache_dir"],
                    break_even_seconds=BREAK_EVEN_SECONDS
                    if break_even is None else float(break_even),
                    shared_store=store) as session:
                report = session.check(source, filename)
        finally:
            if store is not None:
                store.close()
    else:
        report = check_source(source, filename,
                              stdlib=options["stdlib"],
                              units=options["units"])
    return CheckOutcome(ok=report.ok, render=report.render(),
                        errors=len(report.errors), via_daemon=False)
