"""The ``vaultc serve`` check daemon.

A single-threaded selector loop on a Unix domain socket that keeps the
expensive parts of checking — the interpreter itself, the elaborated
stdlib base context, per-unit chunk/context/summary caches, and the
supervised worker pool — **resident** between requests.  A cold
``vaultc check`` pays interpreter start-up plus full elaboration on
every invocation; a daemon check of an unchanged module is a unit-
replay cache hit, typically two orders of magnitude cheaper (see
``benchmarks/bench_server.py``).

Design:

* **warm sessions** — a registry of :class:`repro.pipeline.CheckSession`
  keyed by the stable hash of the session-selecting request options
  (:func:`repro.server.protocol.session_key`); least-recently-used
  sessions are closed and dropped past ``session_limit``;
* **concurrency** — the selector loop accepts any number of clients
  and buffers their frames; checks run one at a time in the loop (they
  are CPU-bound and internally parallel via the worker pool), so
  concurrent clients serialize without interleaving diagnostics;
* **coalescing** — duplicate in-flight ``check`` requests (same
  source, filename and options) are grouped and answered by a single
  run of the checker; just before executing, the loop drains every
  readable socket once more so a burst of identical requests from
  several editors collapses into one check;
* **admission control** — the pending-request queue is bounded
  (``max_queue``): past the bound the daemon *sheds* instead of
  buffering, answering ``busy`` with a ``retry_after_ms`` hint sized
  from the observed check rate, so a burst costs clients one cheap
  round trip each rather than the daemon unbounded memory;
* **deadlines** — a request may carry ``deadline_ms``; one that is
  already expired when its turn comes gets a structured
  ``deadline_exceeded`` reply (with the time it waited) instead of a
  stale result, and never a half-written frame;
* **slow-loris reaping** — connections with bytes pending in either
  direction that make no I/O progress for ``io_timeout`` seconds are
  dropped (``server.conns_reaped``), so a client that trickles half a
  header or never reads its reply cannot pin buffers forever;
* **graceful shutdown** — SIGTERM/SIGINT (via :func:`serve`), the
  ``shutdown`` op, and the idle timeout all funnel into one idempotent
  :meth:`CheckServer.close` that closes client connections, shuts down
  every session's worker pool, and unlinks the socket.  The first
  SIGTERM *drains*: in-flight checks finish and are answered, queued
  requests are shed with ``draining`` replies, then the loop exits (a
  second signal stops immediately);
* **pool hygiene** — each loop tick reaps worker pools that have been
  idle past ``pool_linger`` seconds (the session and its caches stay
  warm; a later parallel check re-forks);
* **shared store** — every warm session plugs into one daemon-wide
  in-memory blob tier (:class:`repro.cache.MemoryTier`), so sessions
  with different options cross-warm each other; ``vaultc serve
  --shared-cache DIR`` adds a persistent CAS tier, and the
  ``cache_get``/``cache_put`` wire ops export the store to remote
  clients (:class:`repro.cache.RemoteTier`).  Uploaded blobs are
  checksum-verified **without unpickling** — the daemon stores bytes,
  it never executes them.

Everything observable is published on the server's telemetry:
``server.*`` metrics, ``server_start``/``server_stop``/
``server_idle_exit``/``client_error`` events, and one
``server.request`` span per executed check.  ``docs/SERVER.md`` has
the protocol and failure-mode reference.
"""

from __future__ import annotations

import base64
import os
import selectors
import socket
import sys
import tempfile
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from ..cache import CASTier, MemoryTier, SharedStore, is_remote_spec
from ..diagnostics import VaultError
from ..obs import (Telemetry, TimeSeriesRing, TraceRing, Tracer,
                   bucket_quantile, render_exposition, write_textfile)
from ..pipeline import CheckSession
from ..pipeline.scheduler import BREAK_EVEN_SECONDS
from .protocol import (PROTOCOL_VERSION, ProtocolError, encode_frame,
                       normalize_options, request_key, session_key,
                       split_frames)

#: seconds a session's worker pool may sit idle before the loop tears
#: it down (the session itself, with all its caches, stays registered).
DEFAULT_POOL_LINGER = 60.0

#: warm sessions kept before the least-recently-used one is closed.
DEFAULT_SESSION_LIMIT = 8

#: pending ``check`` requests buffered before the daemon load-sheds
#: with ``busy`` replies instead of growing the queue.
DEFAULT_MAX_QUEUE = 64

#: seconds a connection with pending bytes (half a frame in, an
#: unread reply out) may stall before it is reaped as a slow loris.
DEFAULT_IO_TIMEOUT = 30.0

#: bounds on the ``retry_after_ms`` hint in ``busy`` replies.
_RETRY_AFTER_MIN_MS = 50.0
_RETRY_AFTER_MAX_MS = 5000.0

#: seconds the drain path spends flushing final replies to slow
#: readers before giving up on them.
_DRAIN_FLUSH_SECONDS = 2.0

#: upper bound on one ``select`` sleep, so stop requests and idle
#: deadlines are honoured promptly even with no socket traffic.
_TICK_SECONDS = 0.5

#: counters pre-registered at start-up so a quiet daemon reports
#: explicit zeros (mirrors the pool's RESILIENCE_COUNTERS idiom).
SERVER_COUNTERS = ("server.connections", "server.requests",
                   "server.checks", "server.coalesced",
                   "server.bad_requests", "server.client_errors",
                   "server.cache_gets", "server.cache_puts",
                   "server.pings", "server.telemetry_requests",
                   "server.slow_requests", "server.shed",
                   "server.deadline_exceeded", "server.drained",
                   "server.conns_reaped", "server.protocol_errors",
                   "server.health_requests")

#: seconds between time-series samples (``--sample-interval``).
DEFAULT_SAMPLE_INTERVAL = 5.0

#: slow-trace files retained in the on-disk ring (keep-newest-N).
DEFAULT_TRACE_KEEP = 32

#: byte budget for one ``cache_get`` reply's base64 payload — kept
#: comfortably under MAX_FRAME so the encoded frame always fits;
#: blobs that would overflow are dropped (the client sees misses).
CACHE_REPLY_BUDGET = 48 << 20


def unix_sockets_available() -> bool:
    return hasattr(socket, "AF_UNIX")


def default_socket_path() -> str:
    """Where ``vaultc serve`` listens and ``--daemon auto`` looks:
    ``$VAULTC_SOCKET`` if set, else a per-user ``vaultc-<uid>/
    daemon.sock`` under ``$XDG_RUNTIME_DIR`` (or the tmp dir)."""
    explicit = os.environ.get("VAULTC_SOCKET")
    if explicit:
        return explicit
    base = os.environ.get("XDG_RUNTIME_DIR") or tempfile.gettempdir()
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(base, f"vaultc-{uid}", "daemon.sock")


class _Conn:
    """One connected client: its socket plus incremental I/O buffers.

    ``last_io`` advances on every byte of progress in either direction
    and anchors slow-loris reaping.  ``closing`` marks a connection
    whose final reply is queued: once the outbuf drains, the daemon
    closes it — the clean-close half of the ``protocol_error`` path.
    """

    __slots__ = ("sock", "inbuf", "outbuf", "closed", "closing",
                 "last_io")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = b""
        self.outbuf = b""
        self.closed = False
        self.closing = False
        self.last_io = time.monotonic()


class _Request:
    """One queued ``check`` request awaiting execution.

    ``req_id`` is the client's optional ``id`` field, echoed in the
    reply so a retrying client can match replies to attempts.
    ``deadline`` is an absolute monotonic time (or ``None``); an
    expired request is answered ``deadline_exceeded``, never checked.
    """

    __slots__ = ("conn", "key", "payload", "req_id", "deadline",
                 "enqueued")

    def __init__(self, conn: _Conn, key: str, payload: dict,
                 req_id: object = None,
                 deadline: Optional[float] = None):
        self.conn = conn
        self.key = key
        self.payload = payload
        self.req_id = req_id
        self.deadline = deadline
        self.enqueued = time.monotonic()


def coalesce_group(queue: Deque[_Request]) -> List[_Request]:
    """Pop the head request plus every queued duplicate (same
    coalescing key).  Pure queue surgery, unit-testable without a
    socket in sight."""
    head = queue.popleft()
    group = [head]
    rest = [req for req in queue if req.key != head.key]
    if len(rest) != len(queue):
        group.extend(req for req in queue if req.key == head.key)
        queue.clear()
        queue.extend(rest)
    return group


class _SessionEntry:
    __slots__ = ("session", "last_used")

    def __init__(self, session: CheckSession):
        self.session = session
        self.last_used = time.monotonic()


class CheckServer:
    """A long-running check daemon on a Unix domain socket.

    Construct, :meth:`bind`, then :meth:`serve_forever` (or use the
    :func:`serve` convenience, which also wires signals).  ``close``
    is idempotent and safe from any point of the lifecycle.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 idle_timeout: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None,
                 session_limit: int = DEFAULT_SESSION_LIMIT,
                 pool_linger: float = DEFAULT_POOL_LINGER,
                 default_jobs: object = 1,
                 enable_test_ops: bool = False,
                 shared_cache_dir: Optional[str] = None,
                 sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
                 prom_file: Optional[str] = None,
                 slow_ms: Optional[float] = None,
                 trace_dir: Optional[str] = None,
                 trace_keep: int = DEFAULT_TRACE_KEEP,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 io_timeout: Optional[float] = DEFAULT_IO_TIMEOUT):
        if not unix_sockets_available():
            raise VaultError(
                "the check daemon needs AF_UNIX sockets, which this "
                "platform does not provide")
        self.socket_path = socket_path or default_socket_path()
        self.idle_timeout = idle_timeout
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.session_limit = max(1, session_limit)
        self.pool_linger = pool_linger
        self.default_jobs = default_jobs
        #: honour ``test_die``/``die`` chaos hooks (never on by
        #: default; ``vaultc serve`` gates it behind
        #: ``$VAULTC_SERVER_TEST_OPS``).
        self.enable_test_ops = enable_test_ops
        #: the daemon-wide shared-cache tiers: every warm session (and
        #: the ``cache_get``/``cache_put`` wire ops) reads and writes
        #: one process-wide memory tier, plus one CAS tier per distinct
        #: directory (``--shared-cache`` and per-request options).
        self.shared_cache_dir = shared_cache_dir
        self.shared_memory = MemoryTier()
        self._cas_tiers: Dict[str, CASTier] = {}
        self._stores: Dict[str, SharedStore] = {}
        self.shared_store = self._store_for(None)
        self._sessions: "OrderedDict[str, _SessionEntry]" = OrderedDict()
        self._queue: Deque[_Request] = deque()
        self._conns: Dict[int, _Conn] = {}
        self._sel: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        self._bound = False
        self._closed = False
        self._stop = False
        #: admission control: queue bound, drain flag, and the running
        #: check-duration average that sizes ``retry_after_ms`` hints.
        self.max_queue = max(1, max_queue)
        self.io_timeout = io_timeout
        self._draining = False
        self._shedding = False
        self._check_count = 0
        self._check_seconds_sum = 0.0
        self._last_activity = time.monotonic()
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        #: the SLO surface: a bounded ring of per-interval rate and
        #: quantile samples over the daemon's registry, fed by the
        #: selector loop, served by the ``telemetry`` op; rewrites the
        #: Prometheus textfile (``--prom-file``) on every sample tick.
        self.sample_interval = sample_interval
        self.prom_file = prom_file
        self.timeseries = TimeSeriesRing(interval=sample_interval) \
            if self.telemetry.metrics.enabled else None
        self._prom_write_failed = False
        #: slow-request capture: requests whose ``server.request`` span
        #: exceeds ``slow_ms`` dump their span tree as Chrome-trace
        #: JSON into a keep-newest-N on-disk ring.  Needs a live
        #: tracer — one is installed if the caller's is the null one.
        self.slow_ms = slow_ms
        self._trace_ring: Optional[TraceRing] = None
        if slow_ms is not None:
            if not self.telemetry.tracer.enabled:
                self.telemetry.tracer = Tracer(process_name="vaultc-daemon")
            directory = trace_dir or os.path.join(
                os.path.dirname(self.socket_path) or ".", "traces")
            self._trace_ring = TraceRing(directory, keep=trace_keep)
        if self.telemetry.metrics.enabled:
            for name in SERVER_COUNTERS:
                self.telemetry.metrics.counter(name)

    # -- lifecycle -----------------------------------------------------------

    def bind(self) -> "CheckServer":
        """Create and listen on the socket.  A stale socket file (a
        previous daemon died without unlinking) is removed; a *live*
        one — something is accepting connections — is an error."""
        directory = os.path.dirname(self.socket_path)
        if directory:
            os.makedirs(directory, mode=0o700, exist_ok=True)
        if os.path.exists(self.socket_path):
            if self._socket_is_live(self.socket_path):
                raise VaultError(
                    f"a check daemon is already listening on "
                    f"{self.socket_path}")
            os.unlink(self.socket_path)
        self._sel = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._listener.bind(self.socket_path)
            self._listener.listen(16)
            self._listener.setblocking(False)
            self._sel.register(self._listener, selectors.EVENT_READ,
                               ("accept", None))
            self._wake_r, self._wake_w = socket.socketpair()
            self._wake_r.setblocking(False)
            self._wake_w.setblocking(False)
            self._sel.register(self._wake_r, selectors.EVENT_READ,
                               ("wake", None))
        except BaseException:
            self.close()
            raise
        self._bound = True
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        self.telemetry.events.emit(
            "server_start",
            f"check daemon (pid {os.getpid()}) listening on "
            f"{self.socket_path}",
            path=self.socket_path, socket=self.socket_path,
            pid=os.getpid(), version=PROTOCOL_VERSION,
            idle_timeout=self.idle_timeout)
        return self

    @staticmethod
    def _socket_is_live(path: str) -> bool:
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.5)
        try:
            probe.connect(path)
        except OSError:
            return False
        finally:
            probe.close()
        return True

    def wakeup_fileno(self) -> int:
        """The write end of the loop's wake-up pipe (for
        ``signal.set_wakeup_fd`` and cross-thread pokes)."""
        assert self._wake_w is not None, "bind() first"
        return self._wake_w.fileno()

    def request_stop(self) -> None:
        """Ask the loop to exit; safe from signal handlers and other
        threads (the selector is poked awake)."""
        self._stop = True
        if self._wake_w is not None:
            try:
                self._wake_w.send(b"\x00")
            except OSError:
                pass

    def request_drain(self) -> None:
        """Ask the loop to drain: finish and answer in-flight checks,
        shed everything still queued with ``draining`` replies, then
        exit.  Safe from signal handlers and other threads."""
        self._draining = True
        if self._wake_w is not None:
            try:
                self._wake_w.send(b"\x00")
            except OSError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining

    def close(self) -> None:
        """Tear everything down; idempotent, callable at any point."""
        if self._closed:
            return
        self._closed = True
        self._stop = True
        for conn in list(self._conns.values()):
            self._drop_conn(conn)
        for sock in (self._listener, self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    if self._sel is not None:
                        self._sel.unregister(sock)
                except (KeyError, ValueError):
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        self._listener = self._wake_r = self._wake_w = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None
        if self._bound:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._bound = False
        for entry in self._sessions.values():
            entry.session.close()
        self._sessions.clear()
        self.telemetry.events.emit(
            "server_stop",
            f"check daemon (pid {os.getpid()}) stopped",
            path=self.socket_path, pid=os.getpid())

    def __enter__(self) -> "CheckServer":
        if not self._bound:
            self.bind()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the loop ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run until a stop request, the idle timeout, or close()."""
        assert self._bound, "bind() before serve_forever()"
        try:
            while not self._stop:
                timeout = _TICK_SECONDS
                if self.idle_timeout is not None and not self._queue:
                    remaining = self.idle_timeout - \
                        (time.monotonic() - self._last_activity)
                    if remaining <= 0:
                        self.telemetry.events.emit(
                            "server_idle_exit",
                            f"no requests for {self.idle_timeout:g}s; "
                            f"shutting down",
                            idle_timeout=self.idle_timeout)
                        break
                    timeout = min(timeout, remaining)
                for key, mask in self._sel.select(timeout):
                    self._handle_event(key, mask)
                if self._queue:
                    self._process_queue()
                if self._draining:
                    self._finish_drain()
                    break
                self._reap_stalled_conns()
                self._reap_idle_pools()
                self._sample_tick()
        finally:
            self.close()

    def _finish_drain(self) -> None:
        """The drain endgame, run once after the loop notices
        ``_draining``: stop accepting, shed whatever is still queued
        with ``draining`` replies, give slow readers a short grace
        window to take their final bytes, then fall through to
        ``close()``."""
        if self._listener is not None:
            try:
                if self._sel is not None:
                    self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        # One last ingest pass so stragglers that arrived during the
        # final check get a structured ``draining`` reply (via
        # _on_frame) instead of a dead socket.
        try:
            self._drain_ready_once()
        except OSError:
            pass
        shed = 0
        while self._queue:
            req = self._queue.popleft()
            self._reply(req.conn, {"ok": False, "kind": "draining",
                                   "error": "daemon is draining; "
                                            "retry or fall back"},
                        req.req_id)
            shed += 1
        if shed and self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("server.drained").inc(shed)
        self.telemetry.events.emit(
            "server_drain",
            f"drained: {shed} queued request(s) shed, "
            f"{len(self._conns)} connection(s) open",
            shed=shed, connections=len(self._conns))
        deadline = time.monotonic() + _DRAIN_FLUSH_SECONDS
        while time.monotonic() < deadline:
            pending = [c for c in self._conns.values() if c.outbuf]
            if not pending:
                break
            for conn in pending:
                self._flush(conn)
            if self._sel is not None:
                try:
                    for key, mask in self._sel.select(0.05):
                        if key.data[0] == "conn" \
                                and mask & selectors.EVENT_WRITE:
                            self._flush(key.data[1])
                except OSError:
                    break

    def _reap_stalled_conns(self) -> None:
        """Drop connections with pending bytes in either direction and
        no I/O progress for ``io_timeout`` seconds — a client trickling
        half a header (slow loris) or never reading its reply."""
        if self.io_timeout is None:
            return
        now = time.monotonic()
        for conn in list(self._conns.values()):
            if not conn.inbuf and not conn.outbuf:
                continue                 # idle-but-quiet is fine
            stalled = now - conn.last_io
            if stalled <= self.io_timeout:
                continue
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("server.conns_reaped").inc()
            self.telemetry.events.emit(
                "conn_reaped",
                f"dropping stalled client after {stalled:.1f}s "
                f"({len(conn.inbuf)}B pending in, "
                f"{len(conn.outbuf)}B pending out)",
                stalled_seconds=stalled,
                pending_in=len(conn.inbuf),
                pending_out=len(conn.outbuf))
            self._drop_conn(conn)

    def _sample_tick(self) -> None:
        """One selector-loop visit to the time-series aggregator: a
        cheap no-op until the sample interval elapses, then one sample
        plus (when configured) an atomic Prometheus textfile rewrite."""
        if self.timeseries is None:
            return
        sample = self.timeseries.maybe_sample(self.telemetry.metrics)
        if sample is None or not self.prom_file:
            return
        try:
            write_textfile(self.prom_file, self.render_exposition())
            self._prom_write_failed = False
        except OSError as exc:
            if not self._prom_write_failed:       # report once per outage
                self._prom_write_failed = True
                self.telemetry.events.emit(
                    "prom_write_failed",
                    f"cannot rewrite {self.prom_file}: {exc}",
                    path=self.prom_file,
                    error=f"{type(exc).__name__}: {exc}")

    def render_exposition(self) -> str:
        """The daemon's registry (plus uptime/queue/session gauges) as
        Prometheus text exposition."""
        extra = {
            "vaultc_uptime_seconds":
                time.monotonic() - self._started_monotonic,
            "vaultc_queue_depth": len(self._queue),
            "vaultc_queue_limit": self.max_queue,
            "vaultc_draining": 1.0 if self._draining else 0.0,
            "vaultc_sessions": len(self._sessions),
        }
        return render_exposition(self.telemetry.metrics.snapshot(),
                                 extra_gauges=extra)

    def _handle_event(self, key: selectors.SelectorKey, mask: int) -> None:
        kind, conn = key.data
        if kind == "accept":
            self._accept()
        elif kind == "wake":
            try:
                self._wake_r.recv(4096)
            except OSError:
                pass
        elif kind == "conn":
            if mask & selectors.EVENT_WRITE:
                self._flush(conn)
            if mask & selectors.EVENT_READ and not conn.closed:
                self._on_readable(conn)

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            conn = _Conn(sock)
            self._conns[sock.fileno()] = conn
            self._sel.register(sock, selectors.EVENT_READ, ("conn", conn))
            self._last_activity = time.monotonic()
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("server.connections").inc()

    def _on_readable(self, conn: _Conn) -> None:
        if conn.closed:
            return
        try:
            chunk = conn.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_conn(conn)
            return
        if not chunk:
            # Client hung up.  Any of its requests still queued are
            # left in place; replying to a closed connection is a
            # tolerated no-op (see _send), so a disconnect mid-request
            # never disturbs the daemon or its other clients.
            self._drop_conn(conn)
            return
        conn.inbuf += chunk
        conn.last_io = time.monotonic()
        if conn.closing:
            # Already condemned (protocol error): ignore further input,
            # just let the final reply drain.
            conn.inbuf = b""
            return
        try:
            frames, conn.inbuf = split_frames(conn.inbuf)
        except ProtocolError as exc:
            self._client_error(conn, exc)
            return
        for frame in frames:
            self._on_frame(conn, frame)

    def _client_error(self, conn: _Conn, exc: Exception) -> None:
        """An unframeable byte stream (oversized or malformed frame):
        answer with a structured ``protocol_error`` so a conforming
        client can report *why*, then close cleanly — the reply is
        flushed first (``closing``), never a silent RST."""
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("server.client_errors").inc()
            self.telemetry.metrics.counter("server.protocol_errors").inc()
        self.telemetry.events.emit(
            "client_error",
            f"dropping client after protocol error: {exc}",
            error=f"{type(exc).__name__}: {exc}")
        conn.inbuf = b""
        conn.closing = True
        self._send(conn, {"ok": False, "kind": "protocol_error",
                          "error": str(exc)})

    def _drop_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.pop(conn.sock.fileno(), None)
        try:
            if self._sel is not None:
                self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- request handling ----------------------------------------------------

    def _on_frame(self, conn: _Conn, frame: dict) -> None:
        self._last_activity = time.monotonic()
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("server.requests").inc()
        op = frame.get("op")
        req_id = frame.get("id")
        if op == "check":
            source = frame.get("source")
            filename = frame.get("filename", "<input>")
            if not isinstance(source, str) or not isinstance(filename, str):
                self._bad_request(conn, "check needs string 'source' "
                                        "(and optional string 'filename')",
                                  req_id)
                return
            options = frame.get("options")
            if options is not None and not isinstance(options, dict):
                self._bad_request(conn, "'options' must be an object",
                                  req_id)
                return
            deadline_ms = frame.get("deadline_ms")
            deadline: Optional[float] = None
            if deadline_ms is not None:
                if isinstance(deadline_ms, bool) \
                        or not isinstance(deadline_ms, (int, float)) \
                        or deadline_ms < 0:
                    self._bad_request(
                        conn, "'deadline_ms' must be a non-negative "
                              "number", req_id)
                    return
                deadline = time.monotonic() + float(deadline_ms) / 1000.0
            if self._draining:
                self._reply(conn, {"ok": False, "kind": "draining",
                                   "error": "daemon is draining; "
                                            "retry or fall back"},
                            req_id)
                return
            if len(self._queue) >= self.max_queue:
                self._shed(conn, req_id)
                return
            self._shedding = False
            options = normalize_options(options, self.default_jobs)
            frame["options"] = options
            self._queue.append(_Request(
                conn, request_key(source, filename, options), frame,
                req_id=req_id, deadline=deadline))
            return
        if op == "ping":
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("server.pings").inc()
            self._send(conn, {"ok": True, "pid": os.getpid(),
                              "version": PROTOCOL_VERSION,
                              "socket": self.socket_path,
                              "uptime_seconds": time.monotonic()
                              - self._started_monotonic})
            return
        if op == "health":
            # Cheap liveness for external orchestration (supervisors,
            # load balancers): no session or store access, one frame.
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter(
                    "server.health_requests").inc()
            self._reply(conn, {"ok": True, "pid": os.getpid(),
                               "version": PROTOCOL_VERSION,
                               "queue_depth": len(self._queue),
                               "queue_limit": self.max_queue,
                               "draining": self._draining,
                               "connections": len(self._conns),
                               "sessions": len(self._sessions),
                               "uptime_seconds": time.monotonic()
                               - self._started_monotonic}, req_id)
            return
        if op == "stats":
            self._send(conn, {"ok": True, "stats": self._stats()})
            return
        if op == "telemetry":
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter(
                    "server.telemetry_requests").inc()
            self._send(conn, {"ok": True, **self._telemetry_payload()})
            return
        if op == "cache_get":
            keys = frame.get("keys")
            if not isinstance(keys, list) \
                    or not all(isinstance(k, str) for k in keys):
                self._bad_request(
                    conn, "cache_get needs a list of string 'keys'")
                return
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("server.cache_gets").inc()
            blobs = self.shared_store.get_blobs(keys)
            out: Dict[str, str] = {}
            budget = CACHE_REPLY_BUDGET
            for key, blob in blobs.items():
                encoded = base64.b64encode(blob).decode("ascii")
                if len(encoded) > budget:
                    continue          # dropped blob = ordinary miss
                budget -= len(encoded)
                out[key] = encoded
            self._send(conn, {"ok": True, "blobs": out})
            return
        if op == "cache_put":
            blobs = frame.get("blobs")
            if not isinstance(blobs, dict):
                self._bad_request(
                    conn, "cache_put needs an object 'blobs' of "
                          "base64 strings")
                return
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("server.cache_puts").inc()
            decoded: Dict[str, bytes] = {}
            for key, encoded in blobs.items():
                if not isinstance(key, str) or not isinstance(encoded, str):
                    continue
                try:
                    decoded[key] = base64.b64decode(encoded, validate=True)
                except (TypeError, ValueError):
                    continue
            # put_blobs re-validates every key (well-formed store keys
            # only — client strings never reach a file path otherwise)
            # and every envelope checksum, without unpickling anything.
            stored = self.shared_store.put_blobs(decoded)
            self._send(conn, {"ok": True, "stored": stored})
            return
        if op == "shutdown":
            if frame.get("drain"):
                self._send(conn, {"ok": True, "stopping": True,
                                  "draining": True})
                self.request_drain()
            else:
                self._send(conn, {"ok": True, "stopping": True})
                self.request_stop()
            return
        if op == "die" and self.enable_test_ops:
            # Chaos hook (tests only): drop dead without replying, as
            # an OOM-killed or SIGKILLed daemon would.
            os._exit(86)
        self._bad_request(conn, f"unknown op {op!r}")

    def _bad_request(self, conn: _Conn, message: str,
                     req_id: object = None) -> None:
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("server.bad_requests").inc()
        self._reply(conn, {"ok": False, "kind": "bad_request",
                           "error": message}, req_id)

    def _reply(self, conn: _Conn, obj: dict, req_id: object) -> None:
        """Send a reply, echoing the client's request ``id`` if it
        supplied one."""
        if req_id is not None:
            obj = dict(obj, id=req_id)
        self._send(conn, obj)

    def _retry_after_ms(self) -> float:
        """Size the ``busy`` hint from observed behaviour: roughly how
        long until the current queue drains, given the running average
        check duration, clamped to a sane band."""
        avg = (self._check_seconds_sum / self._check_count) \
            if self._check_count else 0.05
        estimate = len(self._queue) * avg * 1000.0
        return max(_RETRY_AFTER_MIN_MS,
                   min(_RETRY_AFTER_MAX_MS, estimate))

    def _shed(self, conn: _Conn, req_id: object) -> None:
        """Load-shed one check request: the queue is at ``max_queue``,
        so answer ``busy`` (with a data-driven ``retry_after_ms``)
        instead of buffering without bound."""
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("server.shed").inc()
        if not self._shedding:
            # Edge-triggered: one event per episode of overload, not
            # one per shed request.
            self._shedding = True
            self.telemetry.events.emit(
                "request_shed",
                f"queue full ({self.max_queue}); shedding with busy "
                f"replies",
                queue_limit=self.max_queue)
        self._reply(conn, {"ok": False, "kind": "busy",
                           "error": "daemon queue is full",
                           "queue_depth": len(self._queue),
                           "retry_after_ms": self._retry_after_ms()},
                    req_id)

    def _process_queue(self) -> None:
        while self._queue and not self._stop and not self._draining:
            # Coalescing window: ingest whatever already arrived so a
            # burst of identical requests is grouped before we commit
            # to a check.  Bounded rounds — a firehose client must not
            # starve the queue.
            for _ in range(8):
                if not self._drain_ready_once():
                    break
            if not self._queue:
                break
            group = coalesce_group(self._queue)
            live = [req for req in group if not self._expire(req)]
            if not live:
                continue          # whole group expired: skip the check
            response = self._execute_check(live[0].payload)
            # A deadline that expires *mid-check* still gets the
            # result: the work is done, and a late result beats a
            # wasted check plus a retry of the same bytes.
            blob: Optional[bytes] = None
            for req in live:
                if req.req_id is not None:
                    self._reply(req.conn, response, req.req_id)
                else:
                    # id-less members of a coalesced group share one
                    # encoded blob — the byte-identity fast path.
                    if blob is None:
                        blob = encode_frame(response)
                    self._send_bytes(req.conn, blob)
            if len(live) > 1 and self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter(
                    "server.coalesced").inc(len(live) - 1)
            self._last_activity = time.monotonic()

    def _expire(self, req: _Request) -> bool:
        """Answer ``deadline_exceeded`` (and return True) if the
        request's deadline passed while it sat in the queue."""
        if req.deadline is None or time.monotonic() <= req.deadline:
            return False
        waited_ms = (time.monotonic() - req.enqueued) * 1000.0
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter(
                "server.deadline_exceeded").inc()
        self.telemetry.events.emit(
            "deadline_exceeded",
            f"request expired after {waited_ms:.1f} ms in queue",
            waited_ms=waited_ms)
        self._reply(req.conn,
                    {"ok": False, "kind": "deadline_exceeded",
                     "error": "deadline expired before the check "
                              "started",
                     "waited_ms": waited_ms}, req.req_id)
        return True

    def _drain_ready_once(self) -> bool:
        """One zero-timeout selector pass; True if anything was ready."""
        events = self._sel.select(0)
        for key, mask in events:
            self._handle_event(key, mask)
        return bool(events)

    # -- replies -------------------------------------------------------------

    def _send(self, conn: _Conn, obj: dict) -> None:
        self._send_bytes(conn, encode_frame(obj))

    def _send_bytes(self, conn: _Conn, blob: bytes) -> None:
        """Queue a reply and push as much as the socket takes now; the
        rest drains via EVENT_WRITE.  Sending to a client that already
        hung up is a tolerated no-op — a disconnect mid-request must
        not disturb the run that was checking on its behalf."""
        if conn.closed:
            return
        conn.outbuf += blob
        self._flush(conn)

    def _flush(self, conn: _Conn) -> None:
        try:
            while conn.outbuf:
                sent = conn.sock.send(conn.outbuf)
                conn.outbuf = conn.outbuf[sent:]
                if sent:
                    conn.last_io = time.monotonic()
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._drop_conn(conn)
            return
        if conn.closing and not conn.outbuf:
            # Final reply delivered: complete the clean close.
            self._drop_conn(conn)
            return
        mask = selectors.EVENT_READ
        if conn.outbuf:
            mask |= selectors.EVENT_WRITE
        try:
            self._sel.modify(conn.sock, mask, ("conn", conn))
        except (KeyError, ValueError):
            pass

    def _execute_check(self, payload: dict) -> dict:
        source = payload["source"]
        filename = payload.get("filename", "<input>")
        options = payload["options"]
        if self.enable_test_ops and payload.get("test_die"):
            # Chaos hook (tests only): die mid-request, after the
            # client has committed to waiting for this reply.
            os._exit(86)
        session = self._session_for(options)
        started = time.perf_counter()
        response: Optional[dict] = None
        try:
            with self.telemetry.tracer.span("server.request",
                                            filename=filename):
                if self.enable_test_ops and payload.get("test_sleep"):
                    # Chaos hook (tests only): a deterministically slow
                    # request, for exercising the slow-trace ring.
                    time.sleep(float(payload["test_sleep"]))
                report = session.check(source, filename)
        except VaultError as exc:
            # Checker *input* errors (syntax crashes, bad units) are a
            # normal reply; the client re-raises locally so the CLI
            # output is byte-identical to the in-process path.
            response = {"ok": False, "kind": "vault_error",
                        "error": str(exc)}
        except Exception as exc:                     # noqa: BLE001
            self.telemetry.events.emit(
                "check_aborted",
                f"daemon check of {filename} raised: {exc}",
                filename=filename,
                error=f"{type(exc).__name__}: {exc}")
            response = {"ok": False, "kind": "internal_error",
                        "error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - started
        self._check_count += 1
        self._check_seconds_sum += elapsed
        if response is None:
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter("server.checks").inc()
                self.telemetry.metrics.histogram(
                    "server.check_seconds").observe(elapsed)
            response = {"ok": True,
                        "check_ok": report.ok,
                        "render": report.render(),
                        "errors": len(report.errors),
                        "diagnostics": len(report.diagnostics),
                        "seconds": elapsed}
        self._capture_slow(filename, elapsed)
        return response

    def _capture_slow(self, filename: str, elapsed: float) -> None:
        """Slow-request capture: drain the request's span tree off the
        shared tracer (bounding tracer memory whether or not the
        request was slow) and, past the ``--slow-ms`` threshold, land
        it in the on-disk trace ring as Chrome-trace JSON."""
        if self._trace_ring is None:
            return
        events = self.telemetry.tracer.drain()
        if elapsed * 1000.0 < self.slow_ms:
            return
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        try:
            path = self._trace_ring.write(payload)
        except OSError as exc:
            self.telemetry.events.emit(
                "trace_write_failed",
                f"cannot write a slow trace for {filename}: {exc}",
                filename=filename,
                error=f"{type(exc).__name__}: {exc}")
            return
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("server.slow_requests").inc()
        self.telemetry.events.emit(
            "slow_request",
            f"check of {filename} took {elapsed * 1000:.1f} ms "
            f"(threshold {self.slow_ms:g} ms); trace at {path}",
            filename=filename, seconds=elapsed,
            slow_ms=self.slow_ms, trace=path)

    # -- warm sessions -------------------------------------------------------

    def _store_for(self, spec: Optional[object]) -> SharedStore:
        """The shared store serving one ``shared_cache`` option value.

        Every store stacks on the daemon-wide memory tier; a directory
        spec (from ``--shared-cache`` or the request options) adds a
        CAS tier, deduplicated per path.  A *remote* spec is ignored —
        a single-threaded daemon dialing a daemon (possibly itself)
        for cache traffic would deadlock; remote tiers are strictly a
        client-side construct.
        """
        spec = spec if isinstance(spec, str) and spec else None
        if is_remote_spec(spec):
            spec = None
        key = spec or ""
        store = self._stores.get(key)
        if store is None:
            tiers: List[object] = [self.shared_memory]
            directory = spec or self.shared_cache_dir
            if directory:
                tier = self._cas_tiers.get(directory)
                if tier is None:
                    tier = CASTier(directory)
                    self._cas_tiers[directory] = tier
                tiers.append(tier)
            store = SharedStore(tiers, telemetry=self.telemetry)
            self._stores[key] = store
        return store

    def _session_for(self, options: Dict[str, object]) -> CheckSession:
        key = session_key(options)
        entry = self._sessions.get(key)
        if entry is not None:
            entry.last_used = time.monotonic()
            self._sessions.move_to_end(key)
            return entry.session
        break_even = options.get("break_even")
        session = CheckSession(
            stdlib=bool(options.get("stdlib", True)),
            units=options.get("units"),
            jobs=options.get("jobs", 1),
            cache_dir=options.get("cache_dir"),
            break_even_seconds=BREAK_EVEN_SECONDS if break_even is None
            else float(break_even),
            # Sessions share the daemon's metrics/events/tracer but
            # keep their own profile and stats surfaces: sharing one
            # Telemetry object across sessions would cross-wire the
            # pool's per-session resilience accounting.
            telemetry=Telemetry(tracer=self.telemetry.tracer,
                                registry=self.telemetry.metrics,
                                events=self.telemetry.events),
            shared_store=self._store_for(options.get("shared_cache")))
        while len(self._sessions) >= self.session_limit:
            _evicted_key, evicted = self._sessions.popitem(last=False)
            evicted.session.close()
        self._sessions[key] = _SessionEntry(session)
        return session

    def _reap_idle_pools(self) -> None:
        if self.pool_linger is None:
            return
        for entry in self._sessions.values():
            entry.session.reap_idle_pool(self.pool_linger)

    def _session_rows(self) -> List[dict]:
        """One row per warm session, in LRU order (oldest first)."""
        sessions = []
        for key, entry in self._sessions.items():
            stats = entry.session.stats
            sessions.append({
                "key": key[:16],
                "checks": stats.checks,
                "functions_checked": stats.functions_checked,
                "functions_replayed": stats.functions_replayed,
                "shared_unit_hits": stats.shared_unit_hits,
                "shared_summary_hits": stats.shared_summary_hits,
                "shared_puts": stats.shared_puts,
                "pool_alive": entry.session.pool_alive,
                "idle_seconds": time.monotonic() - entry.last_used,
            })
        return sessions

    def _telemetry_payload(self) -> dict:
        """The ``telemetry`` op's reply body: live counters, latency
        quantiles, the time-series window, and per-session LRU state —
        everything ``vaultc top`` renders, as one frame."""
        counters: Dict[str, float] = {}
        quantiles: Dict[str, dict] = {}
        gauges: Dict[str, float] = {}
        for name, data in sorted(self.telemetry.metrics.snapshot().items()):
            kind = data.get("type")
            if kind == "counter":
                counters[name] = data["value"]
            elif kind == "gauge":
                gauges[name] = data["value"]
            elif kind == "histogram":
                bounds = data["bounds"]
                bucket_counts = data["bucket_counts"]
                quantiles[name] = {
                    "count": data["count"],
                    "sum": data["sum"],
                    "p50": bucket_quantile(bounds, bucket_counts, 0.5),
                    "p95": bucket_quantile(bounds, bucket_counts, 0.95),
                    "p99": bucket_quantile(bounds, bucket_counts, 0.99),
                }
        out = {
            "pid": os.getpid(),
            "version": PROTOCOL_VERSION,
            "socket": self.socket_path,
            "started": self._started_wall,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "queue_depth": len(self._queue),
            "queue_limit": self.max_queue,
            "draining": self._draining,
            "connections": len(self._conns),
            "counters": counters,
            "gauges": gauges,
            "quantiles": quantiles,
            "sessions": self._session_rows(),
            "session_limit": self.session_limit,
            "event_counts": self.telemetry.events.counts(),
            "timeseries": self.timeseries.describe()
            if self.timeseries is not None else None,
            # Per-tier shared-store rows (includes the remote tier's
            # breaker state when a session configured one).
            "shared_cache": {
                spec or "<default>": store.stats_snapshot()
                for spec, store in self._stores.items()},
        }
        if self._trace_ring is not None:
            out["slow_traces"] = {
                "slow_ms": self.slow_ms,
                "directory": self._trace_ring.directory,
                "keep": self._trace_ring.keep,
                "files": len(self._trace_ring.paths()),
            }
        return out

    def _stats(self) -> dict:
        out = self.telemetry.snapshot()
        out["sessions"] = self._session_rows()
        out["pid"] = os.getpid()
        out["socket"] = self.socket_path
        # Per-tier shared-store traffic, one block per distinct store
        # (the default store first) — what `vaultc cache stats` reads.
        out["shared_cache"] = {
            spec or "<default>": store.stats_snapshot()
            for spec, store in self._stores.items()}
        return out


def serve(socket_path: Optional[str] = None,
          idle_timeout: Optional[float] = None,
          telemetry: Optional[Telemetry] = None,
          default_jobs: object = 1,
          ready_out=None,
          shared_cache_dir: Optional[str] = None,
          sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
          prom_file: Optional[str] = None,
          slow_ms: Optional[float] = None,
          trace_dir: Optional[str] = None,
          trace_keep: int = DEFAULT_TRACE_KEEP,
          max_queue: int = DEFAULT_MAX_QUEUE,
          io_timeout: Optional[float] = DEFAULT_IO_TIMEOUT) -> int:
    """Run a daemon in the calling (main) thread until shutdown.

    Wires SIGTERM/SIGINT to a graceful *drain* through the server's
    wake-up pipe (a signal landing mid-``select`` interrupts the sleep
    immediately instead of waiting out the tick): in-flight checks
    finish and are answered, queued requests are shed with
    ``draining`` replies, then the process exits.  A second signal
    stops immediately.  Returns the process exit code.
    """
    import signal

    server = CheckServer(
        socket_path=socket_path, idle_timeout=idle_timeout,
        telemetry=telemetry, default_jobs=default_jobs,
        enable_test_ops=bool(os.environ.get("VAULTC_SERVER_TEST_OPS")),
        shared_cache_dir=shared_cache_dir,
        sample_interval=sample_interval, prom_file=prom_file,
        slow_ms=slow_ms, trace_dir=trace_dir, trace_keep=trace_keep,
        max_queue=max_queue, io_timeout=io_timeout)
    server.bind()
    previous: List[Tuple[int, object]] = []
    old_wakeup = None

    def _on_signal(_signum, _frame):
        if server.draining:
            server.request_stop()
        else:
            server.request_drain()

    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous.append((signum, signal.signal(signum, _on_signal)))
        old_wakeup = signal.set_wakeup_fd(server.wakeup_fileno(),
                                          warn_on_full_buffer=False)
    except ValueError:
        # Not the main thread: signals stay with whoever owns them.
        pass
    if ready_out is not None:
        print(f"vaultc daemon (pid {os.getpid()}) listening on "
              f"{server.socket_path}", file=ready_out, flush=True)
    try:
        server.serve_forever()
    finally:
        server.close()
        if old_wakeup is not None:
            try:
                signal.set_wakeup_fd(old_wakeup)
            except ValueError:
                pass
        for signum, handler in previous:
            signal.signal(signum, handler)
    return 0
