"""Wire protocol for the ``vaultc`` check daemon.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (one object per frame).  The format is the socket
twin of the worker pool's pipe frames (:mod:`repro.pipeline.workers`),
with JSON instead of pickle because daemon clients are untrusted peers
on a shared socket: a hostile frame can at worst fail to decode, never
execute code.

Requests are objects with an ``op`` field:

``{"op": "check", "source": ..., "filename": ..., "options": {...}}``
    Protocol-check one compilation unit.  ``options`` may carry
    ``stdlib``, ``units``, ``jobs``, ``cache_dir``, ``break_even``
    (seconds) and ``shared_cache`` (a shared-store directory); unknown
    keys are ignored so older clients keep working.  Two optional
    top-level fields: ``deadline_ms`` (a non-negative number — a
    request still queued when it expires is answered
    ``deadline_exceeded`` instead of checked) and ``id`` (any JSON
    value, echoed verbatim in the reply so a retrying client can match
    replies to attempts).
``{"op": "ping"}``
    Liveness probe; the reply carries the daemon pid, the protocol
    version, the socket path, and ``uptime_seconds``.
``{"op": "health"}``
    Load-aware liveness for orchestration (supervisors, balancers):
    ``queue_depth``, ``queue_limit``, ``draining``, ``connections``,
    ``sessions``, ``uptime_seconds`` — no session or store access, so
    it stays cheap under load.
``{"op": "stats"}``
    The daemon's telemetry snapshot plus its session registry.
``{"op": "telemetry"}``
    The live SLO surface: flat ``counters``, per-histogram latency
    ``quantiles`` (count/sum/p50/p95/p99), the bounded ``timeseries``
    window of per-interval rate samples, per-session LRU ``sessions``
    rows, ``queue_depth``, uptime, and (when slow-request capture is
    on) the ``slow_traces`` ring state.  What ``vaultc top`` polls.
``{"op": "cache_get", "keys": [...]}``
    Fetch blobs from the daemon's shared store (the remote cache
    tier's read path); the reply maps each found key to base64 blob
    bytes, capped below the frame limit (dropped keys are misses).
``{"op": "cache_put", "blobs": {key: base64}}``
    Store blobs into the daemon's shared store.  Each key must be a
    well-formed store key and each blob a checksummed envelope — the
    daemon verifies the checksum *without unpickling* and silently
    drops anything malformed; the reply carries ``stored``.
``{"op": "shutdown"}``
    Ask the daemon to exit after replying; ``{"drain": true}`` asks
    for a graceful drain (finish in-flight, shed queued) instead of an
    immediate stop.

Replies always carry ``"ok"``: ``true`` with op-specific fields
(a ``check`` reply has ``check_ok``, ``render``, ``errors``), or
``false`` with ``error`` and a machine-readable ``kind``:

``"vault_error"``
    checker *input* errors (the client re-raises locally);
``"bad_request"``
    a well-framed request the daemon cannot honour;
``"protocol_error"``
    an unframeable byte stream (oversized or malformed frame) — sent
    as the connection's final frame before a clean close;
``"busy"``
    load shed: the pending queue is at its bound; carries
    ``retry_after_ms`` (a data-driven hint) and ``queue_depth``;
``"deadline_exceeded"``
    the request's ``deadline_ms`` expired in the queue; carries
    ``waited_ms``;
``"draining"``
    the daemon is shutting down gracefully; retry elsewhere or fall
    back;
``"internal_error"``
    the check itself raised (a daemon bug, reported not hidden).

See ``docs/SERVER.md`` for the full schema.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Dict, List, Optional, Tuple

#: bump when a frame or reply changes incompatibly; ``ping`` replies
#: carry it so clients can refuse to talk across versions.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("!I")
HEADER_SIZE = _HEADER.size

#: payloads above this are rejected before allocation — a daemon on a
#: world-readable socket must not be OOM-able by one bogus header.
MAX_FRAME = 64 << 20


class ProtocolError(Exception):
    """A malformed frame (bad length, bad JSON, or a truncated read)."""


def encode_frame(obj: object) -> bytes:
    """One request/reply as wire bytes (header + canonical JSON)."""
    payload = json.dumps(obj, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}")
    return obj


def split_frames(buffer: bytes) -> Tuple[List[dict], bytes]:
    """Decode every complete frame in ``buffer``; return the decoded
    objects and the unconsumed tail (the server's incremental reader —
    a slow client's half-written frame just stays buffered)."""
    frames: List[dict] = []
    while len(buffer) >= HEADER_SIZE:
        (length,) = _HEADER.unpack(buffer[:HEADER_SIZE])
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame header announces {length} bytes "
                f"(limit {MAX_FRAME})")
        end = HEADER_SIZE + length
        if len(buffer) < end:
            break
        frames.append(_decode_payload(buffer[HEADER_SIZE:end]))
        buffer = buffer[end:]
    return frames, buffer


# -- blocking-socket helpers (the client side) -------------------------------

def send_frame(sock: socket.socket, obj: object) -> None:
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    parts: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if parts:
                raise ProtocolError(
                    "peer closed the connection mid-frame")
            return None                      # clean EOF: the peer is gone
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """One decoded frame, or ``None`` on a clean EOF before the first
    header byte.  EOF mid-frame is a :class:`ProtocolError` (the peer
    died mid-reply — distinguishable from "no reply at all")."""
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame header announces {length} bytes (limit {MAX_FRAME})")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("peer closed the connection mid-frame")
    return _decode_payload(payload)


# -- stable keys --------------------------------------------------------------

def _canonical(obj: object) -> bytes:
    return json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


#: option keys that select a :class:`~repro.pipeline.CheckSession`; two
#: requests differing only in other keys share one warm session.
SESSION_OPTION_KEYS = ("stdlib", "units", "jobs", "cache_dir",
                       "break_even", "shared_cache")


def normalize_options(options: Optional[Dict[str, object]],
                      default_jobs: object = 1) -> Dict[str, object]:
    """The session-selecting view of a request's ``options``: known
    keys only, defaults filled in, so equivalent requests normalize to
    the same dict (and therefore the same session and request keys)."""
    options = options or {}
    units = options.get("units")
    return {
        "stdlib": bool(options.get("stdlib", True)),
        "units": list(units) if units is not None else None,
        "jobs": options.get("jobs", default_jobs),
        "cache_dir": options.get("cache_dir"),
        "break_even": options.get("break_even"),
        "shared_cache": options.get("shared_cache"),
    }


def session_key(options: Dict[str, object]) -> str:
    """Registry key for the warm session serving these options (the
    same stable content hashing the summary cache uses — see
    :func:`repro.pipeline.fingerprint.cache_checksum`)."""
    from ..pipeline.fingerprint import cache_checksum
    return cache_checksum(_canonical(
        {key: options.get(key) for key in SESSION_OPTION_KEYS}))


def request_key(source: str, filename: str,
                options: Dict[str, object]) -> str:
    """Coalescing key: two in-flight ``check`` requests with the same
    key are answered by one run of the checker."""
    h = hashlib.sha256()
    h.update(_canonical({key: options.get(key)
                         for key in SESSION_OPTION_KEYS}))
    h.update(b"\x00")
    h.update(filename.encode("utf-8", "surrogateescape"))
    h.update(b"\x00")
    h.update(source.encode("utf-8", "surrogateescape"))
    return h.hexdigest()
