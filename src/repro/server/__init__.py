"""The persistent check daemon (``vaultc serve``) and its clients.

The paper's pitch is protocol checking *in the compile loop*; in a
modern editor/CI loop that means a resident service, not a cold batch
process.  This package keeps the whole warm stack of the pipeline —
stdlib base context, chunk/context/summary caches, the supervised
worker pool — alive in a daemon behind a Unix domain socket:

* :class:`CheckServer` / :func:`serve` — the daemon (selector loop,
  warm-session registry, request coalescing, idle timeout, graceful
  shutdown);
* :class:`DaemonClient`, :func:`check_detailed` — the wire client and
  the daemon-first/in-process-fallback check used by
  ``vaultc check --daemon`` (bounded timeouts, jittered retry);
* :class:`Supervisor` — ``vaultc serve --supervise``, crash-loop
  respawn of the daemon with backoff and rate limiting;
* :class:`ChaosProxy` — the test-only wire-fault injector behind
  ``make daemon-chaos-smoke``;
* :class:`Watcher` / :func:`run_watch` — ``vaultc watch DIR``,
  mtime-polling re-check of changed ``.vlt`` files;
* :func:`run_top` / :func:`render_top` — ``vaultc top``, a live
  dashboard over the daemon's ``telemetry`` wire op (throughput,
  latency quantiles, cache hit rates, session LRU, slow traces);
* :mod:`repro.server.protocol` — the length-prefixed JSON frame
  format shared by both sides.

See ``docs/SERVER.md`` for the protocol reference, lifecycle and
failure modes.
"""

from .chaos import ChaosProxy
from .client import (CheckOutcome, DaemonClient, DaemonUnavailable,
                     check_detailed, check_via_daemon, resolve_socket)
from .daemon import (CheckServer, default_socket_path, serve,
                     unix_sockets_available)
from .supervise import Supervisor
from .protocol import (MAX_FRAME, PROTOCOL_VERSION, ProtocolError,
                       encode_frame, normalize_options, recv_frame,
                       request_key, send_frame, session_key, split_frames)
from .top import render_top, run_top
from .watch import Watcher, render_outcome, run_watch, scan_tree

__all__ = [
    "ChaosProxy",
    "CheckOutcome",
    "CheckServer",
    "DaemonClient",
    "DaemonUnavailable",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Supervisor",
    "Watcher",
    "check_detailed",
    "check_via_daemon",
    "default_socket_path",
    "encode_frame",
    "normalize_options",
    "recv_frame",
    "render_outcome",
    "render_top",
    "request_key",
    "resolve_socket",
    "run_top",
    "run_watch",
    "scan_tree",
    "send_frame",
    "serve",
    "session_key",
    "split_frames",
    "unix_sockets_available",
]
