"""``vaultc watch DIR`` — mtime-polling re-check of a source tree.

A :class:`Watcher` scans a directory for ``*.vlt`` files and re-checks
whichever changed since the last poll (new file, new mtime/size, or a
deletion, which is simply forgotten).  Checks route through the
daemon when one is reachable and fall back to a process-local warm
:class:`~repro.pipeline.CheckSession` otherwise — either way the
per-file output is byte-identical to ``vaultc check FILE``.

``poll()`` is a pure step function (scan once, check what changed,
return the outcomes), so tests drive the watcher deterministically
without threads or sleeps; the CLI loop just calls it on an interval.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from .client import CheckOutcome, check_detailed

#: default seconds between polls.
DEFAULT_INTERVAL = 0.5


def scan_tree(root: str) -> Dict[str, Tuple[float, int]]:
    """``path -> (mtime, size)`` for every ``.vlt`` under ``root``,
    in sorted path order (deterministic check order)."""
    found: Dict[str, Tuple[float, int]] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".vlt"):
                continue
            path = os.path.join(dirpath, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue                     # raced with a delete
            found[path] = (stat.st_mtime, stat.st_size)
    return found


class Watcher:
    """Stateful change detector + checker for one directory tree."""

    def __init__(self, root: str, socket_path: Optional[str] = "auto",
                 options: Optional[Dict[str, object]] = None):
        if not os.path.isdir(root):
            raise NotADirectoryError(root)
        self.root = root
        self.socket_path = socket_path
        self.options = dict(options or {})
        self._seen: Dict[str, Tuple[float, int]] = {}

    def poll(self) -> List[Tuple[str, CheckOutcome]]:
        """One scan: check every new/changed file, forget deletions.
        The first poll checks the whole tree (everything is "new")."""
        current = scan_tree(self.root)
        changed = [path for path, stamp in current.items()
                   if self._seen.get(path) != stamp]
        self._seen = current
        outcomes: List[Tuple[str, CheckOutcome]] = []
        for path in changed:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                continue                     # raced with a delete
            display = os.path.relpath(path, self.root)
            outcomes.append((display, check_detailed(
                source, display, self.options, self.socket_path)))
        return outcomes


def render_outcome(display: str, outcome: CheckOutcome) -> str:
    """Exactly what ``vaultc check <display>`` prints to stdout."""
    if outcome.ok:
        return f"{display}: OK (protocols verified)"
    return (outcome.render + "\n"
            f"{display}: {outcome.errors} error(s)")


def run_watch(root: str, interval: float = DEFAULT_INTERVAL,
              cycles: int = 0, socket_path: Optional[str] = "auto",
              options: Optional[Dict[str, object]] = None,
              out=None) -> int:
    """The CLI loop: poll, print, sleep; ``cycles=0`` runs until
    interrupted.  Returns 1 if the most recent state of any watched
    file has errors, else 0."""
    out = out if out is not None else sys.stdout
    watcher = Watcher(root, socket_path, options)
    failing: set = set()
    print(f"watching {root} for .vlt changes "
          f"(poll every {interval:g}s, Ctrl-C to stop)", file=sys.stderr)
    completed = 0
    try:
        while True:
            for display, outcome in watcher.poll():
                print(render_outcome(display, outcome), file=out,
                      flush=True)
                (failing.discard if outcome.ok else failing.add)(display)
            completed += 1
            if cycles and completed >= cycles:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 1 if failing else 0
