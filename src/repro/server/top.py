"""``vaultc top`` — a live terminal dashboard for the check daemon.

Polls the ``telemetry`` wire op and renders the daemon's SLO surface
in place: request/check throughput (off the newest time-series
sample), check-latency quantiles, cache-tier hit rates, the worker
pool and session-LRU state, and slow-request capture activity.  Two
modes:

* **live** (default) — redraw every ``--interval`` seconds until
  Ctrl-C, using the ANSI clear/home sequence (no curses dependency);
* **one-shot** (``--once``, optionally ``--json``) — fetch one
  telemetry frame and print it, for scripts and tests.

Rendering is a pure function of one telemetry reply
(:func:`render_top`), so the screen layout is unit-testable without a
daemon in sight.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, List, Optional

from .client import DaemonClient, DaemonUnavailable

#: ANSI: clear screen + cursor home (what ``watch(1)`` effectively does).
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_seconds(seconds: float) -> str:
    seconds = max(0, int(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.1f}ms"


def _rate(sample: Optional[dict], name: str) -> float:
    if not sample:
        return 0.0
    return float(sample.get("rates", {}).get(name, 0.0))


def _hit_rate(counters: Dict[str, float], hits: str, misses: str
              ) -> Optional[float]:
    h = counters.get(hits, 0)
    total = h + counters.get(misses, 0)
    if total <= 0:
        return None
    return h / total


def render_top(reply: dict) -> str:
    """One telemetry reply as the dashboard screen (no ANSI codes)."""
    lines: List[str] = []
    counters: Dict[str, float] = reply.get("counters", {}) or {}
    quantiles: Dict[str, dict] = reply.get("quantiles", {}) or {}
    timeseries = reply.get("timeseries") or {}
    samples = timeseries.get("samples") or []
    newest = samples[-1] if samples else None

    lines.append(
        f"vaultc daemon  pid {reply.get('pid', '?')}  "
        f"up {_fmt_seconds(reply.get('uptime_seconds', 0))}  "
        f"proto v{reply.get('version', '?')}  "
        f"socket {reply.get('socket', '?')}")
    queue = f"queue {reply.get('queue_depth', 0)}"
    if reply.get("queue_limit") is not None:
        queue += f"/{reply['queue_limit']}"
    lines.append(
        queue
        + ("  DRAINING" if reply.get("draining") else "")
        + f"  connections {reply.get('connections', 0)}  "
        f"sessions {len(reply.get('sessions') or [])}"
        f"/{reply.get('session_limit', '?')}  "
        f"samples {len(samples)}"
        + (f" @{timeseries.get('interval', 0):g}s" if timeseries else ""))
    lines.append("")

    lines.append(f"throughput   requests/s {_rate(newest, 'server.requests'):8.2f}"
                 f"   checks/s {_rate(newest, 'server.checks'):8.2f}"
                 f"   (over the newest sample window)")
    check = quantiles.get("server.check_seconds")
    if check:
        lines.append(f"check latency   p50 {_fmt_ms(check['p50']):>10}"
                     f"   p95 {_fmt_ms(check['p95']):>10}"
                     f"   p99 {_fmt_ms(check['p99']):>10}"
                     f"   n={check['count']}")
    lines.append("")

    lines.append("counters")
    for name in sorted(counters):
        lines.append(f"  {name:<32} {counters[name]:>12g}")
    lines.append("")

    cache_rows = []
    for label in ("memory", "cas", "remote"):
        rate = _hit_rate(counters, f"cache.shared.{label}.hits",
                         f"cache.shared.{label}.misses")
        if rate is not None:
            cache_rows.append(f"  {label:<8} hit rate {rate * 100:6.1f}%")
    for store in (reply.get("shared_cache") or {}).values():
        for tier in (store or {}).get("tiers", []):
            if not isinstance(tier, dict) or not tier.get("breaker_open"):
                continue
            why = tier.get("last_error") or "transport failure"
            cache_rows.append(
                f"  remote   breaker OPEN, retry in "
                f"{tier.get('retry_in_seconds', 0):g}s ({why})")
    if cache_rows:
        lines.append("shared cache")
        lines.extend(cache_rows)
        lines.append("")

    sessions = reply.get("sessions") or []
    if sessions:
        lines.append(f"{'session':<18} {'checks':>7} {'replayed':>9} "
                     f"{'pool':>5} {'idle':>8}")
        for row in sessions:
            pool = "live" if row.get("pool_alive") else "-"
            lines.append(f"{row.get('key', '?'):<18} "
                         f"{row.get('checks', 0):>7} "
                         f"{row.get('functions_replayed', 0):>9} "
                         f"{pool:>5} "
                         f"{_fmt_seconds(row.get('idle_seconds', 0)):>8}")

    slow = reply.get("slow_traces")
    if slow:
        lines.append("")
        lines.append(
            f"slow traces  threshold {slow.get('slow_ms', 0):g}ms  "
            f"captured {counters.get('server.slow_requests', 0):g}  "
            f"on disk {slow.get('files', 0)}/{slow.get('keep', '?')}  "
            f"in {slow.get('directory', '?')}")
    return "\n".join(lines) + "\n"


def run_top(socket_path: Optional[str] = "auto", interval: float = 2.0,
            once: bool = False, as_json: bool = False,
            out=None) -> int:
    """Drive the dashboard; the process exit code."""
    out = out if out is not None else sys.stdout

    def _fetch() -> dict:
        # Short read timeout: a wedged daemon turns into one rc-1
        # error line, not a dashboard that hangs forever.
        with DaemonClient(socket_path, read_timeout=10.0) as client:
            return client.telemetry()

    try:
        if once:
            reply = _fetch()
            if as_json:
                print(json.dumps(reply, indent=2, sort_keys=True), file=out)
            else:
                print(render_top(reply), end="", file=out)
            return 0
        while True:
            reply = _fetch()
            print(_CLEAR + render_top(reply), end="", file=out, flush=True)
            time.sleep(max(0.1, interval))
    except DaemonUnavailable as exc:
        print(f"vaultc top: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(file=out)
        return 0
