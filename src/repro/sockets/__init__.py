"""Loopback socket simulator substrate (paper §2.3)."""

from .sim import STATES, SimSocket, SocketNetwork

__all__ = ["STATES", "SimSocket", "SocketNetwork"]
