"""A loopback socket simulator — the substrate for paper §2.3.

Implements connection-oriented sockets with the exact state machine the
Vault interface encodes in key states::

    raw --bind--> named --listen--> listening --accept--> (new) ready

plus ``connect`` (client side: raw -> ready against a listening
server), ``send``/``receive`` on ready sockets, and ``close``.

Misuse raises :class:`~repro.diagnostics.RuntimeProtocolError` with the
same determinism a real socket library returns EINVAL/ENOTCONN —
giving the dynamic baseline something to observe when an unchecked
program runs a faulty path.  :meth:`SocketNetwork.audit` reports
sockets never closed (descriptor leaks).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..diagnostics import Code, RuntimeProtocolError

_socket_ids = itertools.count(1)

#: The socket protocol states, mirroring the key states of socket.vlt.
STATES = ("raw", "named", "listening", "ready", "closed")


class SimSocket:
    def __init__(self, domain: str, style: str, network: "SocketNetwork"):
        self.id = next(_socket_ids)
        self.domain = domain
        self.style = style
        self.network = network
        self.state = "raw"
        self.address: Optional[Tuple[str, int]] = None
        self.backlog: Deque["SimSocket"] = deque()
        self.max_backlog = 0
        self.peer: Optional["SimSocket"] = None
        self.inbox: Deque[bytes] = deque()

    def _require(self, *states: str) -> None:
        if self.state not in states:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"socket {self.id} is '{self.state}', operation requires "
                f"{' or '.join(repr(s) for s in states)}")

    def __repr__(self) -> str:
        return f"sock{self.id}[{self.state}]"


class SocketNetwork:
    """The loopback 'network' connecting simulated sockets."""

    def __init__(self) -> None:
        self.sockets: List[SimSocket] = []
        self.bound: Dict[Tuple[str, int], SimSocket] = {}

    # -- lifecycle ----------------------------------------------------------

    def socket(self, domain: str = "INET", style: str = "STREAM") -> SimSocket:
        sock = SimSocket(domain, style, self)
        self.sockets.append(sock)
        return sock

    def bind(self, sock: SimSocket, host: str, port: int) -> None:
        sock._require("raw")
        addr = (host, port)
        if addr in self.bound and self.bound[addr].state != "closed":
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL, f"address {host}:{port} already in use")
        self.bound[addr] = sock
        sock.address = addr
        sock.state = "named"

    def bind_checked(self, sock: SimSocket, host: str,
                     port: int) -> Optional[int]:
        """Failure-aware bind: returns an error code instead of raising
        when the address is in use (the paper's §2.3 status variant)."""
        sock._require("raw")
        addr = (host, port)
        if addr in self.bound and self.bound[addr].state != "closed":
            return 98  # EADDRINUSE
        self.bound[addr] = sock
        sock.address = addr
        sock.state = "named"
        return None

    def listen(self, sock: SimSocket, backlog: int) -> None:
        sock._require("named")
        sock.max_backlog = max(backlog, 1)
        sock.state = "listening"

    def connect(self, sock: SimSocket, host: str, port: int) -> None:
        sock._require("raw")
        server = self.bound.get((host, port))
        if server is None or server.state != "listening":
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"connection refused to {host}:{port}")
        if len(server.backlog) >= server.max_backlog:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"backlog full on {host}:{port}")
        # Create the server-side endpoint now; accept() hands it out.
        endpoint = self.socket(server.domain, server.style)
        endpoint.state = "ready"
        endpoint.peer = sock
        sock.peer = endpoint
        sock.state = "ready"
        server.backlog.append(endpoint)

    def accept(self, sock: SimSocket) -> SimSocket:
        sock._require("listening")
        if not sock.backlog:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"accept on socket {sock.id} with no pending connection")
        return sock.backlog.popleft()

    def close(self, sock: SimSocket) -> None:
        if sock.state == "closed":
            raise RuntimeProtocolError(
                Code.RT_DOUBLE_FREE, f"socket {sock.id} closed twice")
        if sock.address is not None and \
                self.bound.get(sock.address) is sock:
            del self.bound[sock.address]
        sock.state = "closed"

    # -- data transfer -----------------------------------------------------------

    def send(self, sock: SimSocket, data: bytes) -> None:
        sock._require("ready")
        if sock.peer is None or sock.peer.state == "closed":
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL, f"socket {sock.id} has no live peer")
        sock.peer.inbox.append(bytes(data))

    def receive(self, sock: SimSocket, max_len: int = 1 << 16) -> bytes:
        sock._require("ready")
        if not sock.inbox:
            return b""
        return sock.inbox.popleft()[:max_len]

    # -- audits ---------------------------------------------------------------------

    def audit(self) -> List[int]:
        """Descriptor-leak report: ids of sockets never closed."""
        return [s.id for s in self.sockets if s.state != "closed"]

    def assert_no_leaks(self) -> None:
        leaked = self.audit()
        if leaked:
            raise RuntimeProtocolError(
                Code.RT_LEAK,
                f"socket(s) never closed: {leaked}")

    def reset(self) -> None:
        self.sockets.clear()
        self.bound.clear()
