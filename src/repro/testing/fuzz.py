"""The fuzz loop: generate, differentially check, shrink on divergence.

``run_fuzz(count, seed)`` derives one sub-seed per program from the
master seed, generates each program, pushes it through every checking
path via :class:`~repro.testing.differential.DifferentialHarness`, and
tallies what came back.  Whenever two paths disagree on the bytes, the
offending program is shrunk to a minimal still-diverging reproducer
and recorded; ``vaultc fuzz`` turns those records into exit status 1.

Replay contract: ``derive_seed(seed, i)`` is a pure function, so
``vaultc fuzz --seed S --count N`` always fuzzes the same N programs,
and any single one can be regenerated from its printed program seed
with ``generate_program(program_seed)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import check_source
from repro.testing.differential import DifferentialHarness
from repro.testing.generate import generate_program
from repro.testing.shrink import shrink

__all__ = ["DivergenceRecord", "FuzzReport", "derive_seed", "run_fuzz"]


def derive_seed(seed: int, index: int) -> int:
    """The per-program seed for position ``index`` of a run.  A fixed
    affine mix keeps neighbouring runs' program sets disjoint while
    staying trivially reproducible by hand."""
    return (seed * 1_000_003 + index * 7_919 + 12_289) & 0x7FFF_FFFF


@dataclass
class DivergenceRecord:
    """One byte-level disagreement between checking paths."""

    program_seed: int
    paths: List[str]              # the paths that differ from serial
    outputs: Dict[str, str]       # path -> canonical stdout
    source: str                   # the full generated program
    shrunk: str                   # minimal still-diverging reproducer


@dataclass
class FuzzReport:
    """Summary of one ``run_fuzz`` invocation."""

    seed: int
    count: int
    paths: List[str] = field(default_factory=list)
    skipped_paths: List[str] = field(default_factory=list)
    programs_ok: int = 0          # checked clean
    programs_rejected: int = 0    # checked with diagnostics
    diagnostics: Dict[str, int] = field(default_factory=dict)
    divergences: List[DivergenceRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "paths": self.paths,
            "skipped_paths": self.skipped_paths,
            "programs_ok": self.programs_ok,
            "programs_rejected": self.programs_rejected,
            "diagnostics": dict(sorted(self.diagnostics.items())),
            "divergences": [
                {"program_seed": d.program_seed, "paths": d.paths,
                 "shrunk": d.shrunk}
                for d in self.divergences
            ],
        }


def _diverges(harness: DifferentialHarness, rel: str) -> Callable[[str], bool]:
    def predicate(candidate: str) -> bool:
        return harness.check(candidate, rel).divergent
    return predicate


def run_fuzz(count: int, seed: int, jobs: int = 2, use_daemon: bool = True,
             use_parallel: bool = True,
             on_program: Optional[Callable[[int, int, str], None]] = None,
             ) -> FuzzReport:
    """Fuzz ``count`` programs derived from ``seed``.

    ``on_program(index, program_seed, verdict)`` is invoked after each
    program with verdict ``"ok"``, ``"rejected"`` or ``"DIVERGED"`` —
    the CLI uses it for progress output.
    """
    report = FuzzReport(seed=seed, count=count)
    tally: Counter = Counter()
    with DifferentialHarness(jobs=jobs, use_daemon=use_daemon,
                             use_parallel=use_parallel) as harness:
        report.paths = harness.paths
        report.skipped_paths = list(harness.skipped)
        for index in range(count):
            program_seed = derive_seed(seed, index)
            program = generate_program(program_seed)
            rel = f"fuzz-{program_seed}.vlt"
            result = harness.check(program.source, rel)

            serial = check_source(program.source, filename=rel)
            if serial.ok:
                report.programs_ok += 1
            else:
                report.programs_rejected += 1
            tally.update(c.value for c in serial.codes())

            verdict = "ok" if serial.ok else "rejected"
            if result.divergent:
                verdict = "DIVERGED"
                shrunk = shrink(program.source,
                                _diverges(harness, rel))
                final = harness.check(shrunk, rel)
                report.divergences.append(DivergenceRecord(
                    program_seed=program_seed,
                    paths=result.divergent_paths,
                    outputs=final.outputs,
                    source=program.source,
                    shrunk=shrunk))
            if on_program is not None:
                on_program(index, program_seed, verdict)
    report.diagnostics = dict(tally)
    return report
