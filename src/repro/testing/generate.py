"""Seeded generator of adversarial Vault protocol programs.

Each generated unit is self-contained: it declares its own protocol
interfaces (random keyed state machines in the style of the stdlib
vault units), backs them with ``extern module`` declarations, and then
emits client functions drawn from a fixed catalogue of *intents* —
clients that follow the protocol, and clients that violate it in each
of the ways the paper's checker is supposed to catch:

========================  =======================================
intent                    expected diagnostic family
========================  =======================================
``ok``                    none — checks clean
``wrong_state``           V0301 KEY_WRONG_STATE
``leak``                  V0302 KEY_LEAKED
``double_drop``           V0303 KEY_CONSUMED_MISSING
``use_after_drop``        V0300/V0303 (key gone at access)
``switch_ok``             none — keyed-variant capture/restore
``switch_bad``            V0301 inside one switch arm
``interleave``            none — two protocols, two live keys
========================  =======================================

On top of the intent catalogue the generator applies structural
stressors: gratuitous nested ``if`` pyramids around the data flow,
wide units padded with filler functions, and *near-miss* twin
interfaces whose operations share names with the real ones but demand
shifted states.

Everything is a pure function of ``random.Random(seed)``: the same
``(seed, config)`` pair reproduces the same program text byte for
byte (``tests/test_properties.py`` pins this).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["GenConfig", "ProtocolSpec", "GeneratedProgram",
           "generate_program", "random_config", "INTENTS"]

#: every client intent the generator knows how to emit.
INTENTS = ("ok", "wrong_state", "leak", "double_drop", "use_after_drop",
           "switch_ok", "switch_bad", "interleave")

#: intents that deliberately break the protocol.
VIOLATION_INTENTS = ("wrong_state", "leak", "double_drop",
                     "use_after_drop", "switch_bad")

_MODULE_POOL = ("Disk", "Lockbox", "Port", "Pool", "Tape", "Pipeline",
                "Camera", "Busline", "Radio", "Vaultd")


@dataclass(frozen=True)
class GenConfig:
    """Knobs for one generated program.  Frozen so it can be replayed."""

    n_protocols: int = 2          # independent keyed state machines
    max_states: int = 5           # states per machine (min 3)
    extra_transitions: int = 2    # random edges beyond the backbone
    n_clients: int = 6            # client functions drawn from INTENTS
    p_variant: float = 0.7        # chance a protocol gets a keyed probe
    p_violation: float = 0.5      # chance a client is adversarial
    nesting_depth: int = 2        # if-pyramid depth around data flow
    wide_fillers: int = 2         # trivial padding functions
    near_miss: bool = True        # emit twin interfaces w/ shifted states


def random_config(rng: random.Random) -> GenConfig:
    """Draw a configuration; used by the fuzz loop to vary shape."""
    return GenConfig(
        n_protocols=rng.randint(1, 3),
        max_states=rng.randint(3, 6),
        extra_transitions=rng.randint(0, 3),
        n_clients=rng.randint(3, 8),
        p_variant=rng.choice((0.0, 0.5, 1.0)),
        p_violation=rng.choice((0.0, 0.4, 0.7)),
        nesting_depth=rng.randint(0, 3),
        wide_fillers=rng.randint(0, 4),
        near_miss=rng.random() < 0.5,
    )


@dataclass(frozen=True)
class ProtocolSpec:
    """One random keyed state machine and its interface surface."""

    index: int
    module: str                   # "Disk0"
    sig: str                      # "DISK0_SIG"
    res: str                      # "disk0_res"
    states: Tuple[str, ...]       # ("q0", "q1", ...)
    transitions: Tuple[Tuple[int, int], ...]   # op go_{a}_{b}
    observers: Tuple[int, ...]    # states with peek_{a}
    drop_state: int               # drop() consumes at this state
    variant: Optional[str] = None           # variant type name
    variant_ctors: Tuple[Tuple[str, int, bool], ...] = ()
    # ... (ctor name, restored-state index, has int payload)
    probe_state: int = 0          # ask() consumes at this state

    def op(self, a: int, b: int) -> str:
        return f"go_{a}_{b}"


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated unit plus the metadata needed to reason about it."""

    seed: int
    config: GenConfig
    source: str
    protocols: Tuple[ProtocolSpec, ...]
    intents: Tuple[str, ...]      # intent of each client, in order

    @property
    def adversarial(self) -> bool:
        return any(i in VIOLATION_INTENTS for i in self.intents)


# ---------------------------------------------------------------------------
# Protocol construction
# ---------------------------------------------------------------------------

def _build_protocol(rng: random.Random, idx: int, cfg: GenConfig) -> ProtocolSpec:
    n = rng.randint(3, max(3, cfg.max_states))
    states = tuple(f"q{i}" for i in range(n))
    # Backbone chain q0 -> q1 -> ... -> q{n-1} guarantees every state
    # can reach every later one; extra edges add cycles and shortcuts.
    edges = [(i, i + 1) for i in range(n - 1)]
    for _ in range(cfg.extra_transitions):
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b and (a, b) not in edges:
            edges.append((a, b))
    observers = tuple(sorted(rng.sample(range(n), k=rng.randint(1, n - 1))))
    drop_state = n - 1

    module = f"{rng.choice(_MODULE_POOL)}{idx}"
    spec = ProtocolSpec(
        index=idx,
        module=module,
        sig=f"{module.upper()}_SIG",
        res=f"{module.lower()}_res",
        states=states,
        transitions=tuple(edges),
        observers=observers,
        drop_state=drop_state,
    )
    if rng.random() < cfg.p_variant and n >= 3:
        probe_state = rng.randrange(1, n - 1)
        # Restored states may be anywhere: the backbone still reaches
        # drop_state from either arm.
        ctors = (
            (f"{module}Go", rng.randrange(n - 1), False),
            (f"{module}Halt", rng.randrange(n - 1), True),
        )
        spec = replace(spec, variant=f"{module.lower()}_ev",
                       variant_ctors=ctors, probe_state=probe_state)
    return spec


def _shortest_path(spec: ProtocolSpec, frm: int, to: int) -> List[Tuple[int, int]]:
    """BFS over the transition edges; the backbone guarantees a path
    whenever ``frm <= to``."""
    if frm == to:
        return []
    adj: Dict[int, List[int]] = {}
    for a, b in spec.transitions:
        adj.setdefault(a, []).append(b)
    prev: Dict[int, int] = {frm: frm}
    queue = deque([frm])
    while queue:
        cur = queue.popleft()
        if cur == to:
            break
        for nxt in adj.get(cur, ()):
            if nxt not in prev:
                prev[nxt] = cur
                queue.append(nxt)
    if to not in prev:
        raise AssertionError(
            f"generator invariant broken: no path {frm}->{to} in "
            f"{spec.module}")
    hops: List[Tuple[int, int]] = []
    cur = to
    while cur != frm:
        hops.append((prev[cur], cur))
        cur = prev[cur]
    hops.reverse()
    return hops


# ---------------------------------------------------------------------------
# Declaration rendering
# ---------------------------------------------------------------------------

def _render_interface(spec: ProtocolSpec, lines: List[str]) -> None:
    if spec.variant is not None:
        arms = []
        for name, restored, payload in spec.variant_ctors:
            pay = "(int)" if payload else ""
            arms.append(f"'{name}{pay} {{K@{spec.states[restored]}}}")
        lines.append(f"variant {spec.variant}<key K> [ {' | '.join(arms)} ];")
    lines.append(f"interface {spec.sig} {{")
    lines.append(f"    type {spec.res};")
    lines.append(f"    tracked(@{spec.states[0]}) {spec.res} acquire(int tag);")
    for a, b in spec.transitions:
        lines.append(f"    void {spec.op(a, b)}(tracked(K) {spec.res} r) "
                     f"[K@{spec.states[a]}->{spec.states[b]}];")
    for a in spec.observers:
        lines.append(f"    int peek_{a}(tracked(K) {spec.res} r) "
                     f"[K@{spec.states[a]}];")
    if spec.variant is not None:
        lines.append(f"    tracked {spec.variant}<K> ask(tracked(K) "
                     f"{spec.res} r) [-K@{spec.states[spec.probe_state]}];")
    lines.append(f"    void drop(tracked(K) {spec.res} r) "
                 f"[-K@{spec.states[spec.drop_state]}];")
    lines.append("}")
    lines.append(f"extern module {spec.module} : {spec.sig};")
    lines.append("")


def _render_near_miss(spec: ProtocolSpec, lines: List[str]) -> None:
    """A twin interface: same operation names, shifted states.  Never
    called by generated clients — it exists to stress name resolution
    with near-identical signatures in scope."""
    n = len(spec.states)
    lines.append(f"interface {spec.sig}X {{")
    lines.append(f"    type {spec.res}x;")
    lines.append(f"    tracked(@{spec.states[n - 1]}) {spec.res}x "
                 f"acquire(int tag);")
    for a, b in spec.transitions:
        ra, rb = n - 1 - a, n - 1 - b
        lines.append(f"    void {spec.op(a, b)}(tracked(K) {spec.res}x r) "
                     f"[K@{spec.states[ra]}->{spec.states[rb]}];")
    lines.append(f"    void drop(tracked(K) {spec.res}x r) "
                 f"[-K@{spec.states[0]}];")
    lines.append("}")
    lines.append(f"extern module {spec.module}X : {spec.sig}X;")
    lines.append("")


# ---------------------------------------------------------------------------
# Client bodies
# ---------------------------------------------------------------------------

class _Body:
    """Statement accumulator with an indentation cursor."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 1

    def emit(self, stmt: str) -> None:
        self.lines.append("    " * self.depth + stmt)

    def open(self, head: str) -> None:
        self.emit(head + " {")
        self.depth += 1

    def close(self, tail: str = "}") -> None:
        self.depth -= 1
        self.emit(tail)


def _emit_noise(body: _Body, rng: random.Random, cfg: GenConfig,
                var: str) -> None:
    """A balanced if-pyramid mutating only data: stresses parsing and
    the checker's join logic without touching any key."""
    depth = rng.randint(0, cfg.nesting_depth)
    for level in range(depth):
        body.open(f"if ({var} > {rng.randint(0, 9)})")
    if depth:
        body.emit(f"{var} = {var} + {rng.randint(1, 5)};")
    for level in range(depth):
        body.close()
        body.open("else")
        body.emit(f"{var} = {var} - {rng.randint(1, 5)};")
        body.close()


def _emit_walk(body: _Body, rng: random.Random, cfg: GenConfig,
               spec: ProtocolSpec, handle: str, acc: str,
               frm: int, to: int) -> None:
    """Advance ``handle`` from state ``frm`` to ``to`` along real
    transitions, peeking through observers on the way."""
    for a, b in _shortest_path(spec, frm, to):
        if a in spec.observers and rng.random() < 0.5:
            body.emit(f"{acc} = {acc} + {spec.module}.peek_{a}({handle});")
        body.emit(f"{spec.module}.{spec.op(a, b)}({handle});")
        if rng.random() < 0.3:
            _emit_noise(body, rng, cfg, acc)


def _acquire(body: _Body, spec: ProtocolSpec, handle: str, key: str,
             tag: str) -> None:
    body.emit(f"tracked({key}) {spec.res} {handle} = "
              f"{spec.module}.acquire({tag});")


def _gen_client(rng: random.Random, cfg: GenConfig, name: str,
                intent: str, specs: Sequence[ProtocolSpec]) -> List[str]:
    spec = rng.choice(list(specs))
    body = _Body()
    body.emit("int acc = x;")
    _emit_noise(body, rng, cfg, "acc")

    if intent == "interleave" and len(specs) >= 2:
        other = rng.choice([s for s in specs if s is not spec])
        _acquire(body, spec, "ha", "KA", "x")
        _acquire(body, other, "hb", "KB", "x + 1")
        walk_a = _shortest_path(spec, 0, spec.drop_state)
        walk_b = _shortest_path(other, 0, other.drop_state)
        while walk_a or walk_b:
            for hops, sp, hd in ((walk_a, spec, "ha"), (walk_b, other, "hb")):
                if hops:
                    a, b = hops.pop(0)
                    body.emit(f"{sp.module}.{sp.op(a, b)}({hd});")
        body.emit(f"{spec.module}.drop(ha);")
        body.emit(f"{other.module}.drop(hb);")
        body.emit("return acc;")
        return body.lines

    _acquire(body, spec, "h", "K", "x")

    if intent in ("switch_ok", "switch_bad") and spec.variant is not None:
        _emit_walk(body, rng, cfg, spec, "h", "acc", 0, spec.probe_state)
        body.open(f"switch ({spec.module}.ask(h))")
        bad_arm = rng.randrange(len(spec.variant_ctors))
        for i, (ctor, restored, payload) in enumerate(spec.variant_ctors):
            pat = f"'{ctor}(code)" if payload else f"'{ctor}"
            body.open(f"case {pat}:")
            if payload:
                body.emit("acc = acc + code;")
            if intent == "switch_bad" and i == bad_arm:
                # An operation legal from some *other* state than the
                # one this constructor restored the key at.
                wrong = [(a, b) for a, b in spec.transitions if a != restored]
                if wrong:
                    a, b = rng.choice(wrong)
                    body.emit(f"{spec.module}.{spec.op(a, b)}(h);"
                              "    // violation: key restored at "
                              f"{spec.states[restored]}")
            _emit_walk(body, rng, cfg, spec, "h", "acc",
                       restored, spec.drop_state)
            body.emit(f"{spec.module}.drop(h);")
            body.emit("return acc;")
            body.close()
        body.close()
        return body.lines

    if intent == "wrong_state":
        mid = rng.randrange(0, spec.drop_state)
        _emit_walk(body, rng, cfg, spec, "h", "acc", 0, mid)
        wrong = [(a, b) for a, b in spec.transitions if a != mid]
        a, b = rng.choice(wrong) if wrong else spec.transitions[0]
        body.emit(f"{spec.module}.{spec.op(a, b)}(h);"
                  f"    // violation: key is at {spec.states[mid]}")
        body.emit("return acc;")
        return body.lines

    if intent == "leak":
        mid = rng.randrange(0, spec.drop_state + 1)
        _emit_walk(body, rng, cfg, spec, "h", "acc", 0, mid)
        body.emit("return acc;    // violation: h never dropped")
        return body.lines

    # The remaining intents all complete the protocol first.
    _emit_walk(body, rng, cfg, spec, "h", "acc", 0, spec.drop_state)
    body.emit(f"{spec.module}.drop(h);")
    if intent == "double_drop":
        body.emit(f"{spec.module}.drop(h);    // violation: dropped twice")
    elif intent == "use_after_drop":
        obs = spec.observers[0]
        body.emit(f"acc = acc + {spec.module}.peek_{obs}(h);"
                  "    // violation: key already consumed")
    body.emit("return acc;")
    return body.lines


def _pick_intent(rng: random.Random, cfg: GenConfig,
                 specs: Sequence[ProtocolSpec]) -> str:
    if rng.random() < cfg.p_violation:
        choices = list(VIOLATION_INTENTS)
        if not any(s.variant for s in specs):
            choices.remove("switch_bad")
        return rng.choice(choices)
    choices = ["ok", "switch_ok", "interleave"]
    if not any(s.variant for s in specs):
        choices.remove("switch_ok")
    if len(specs) < 2:
        choices.remove("interleave")
    return rng.choice(choices)


# ---------------------------------------------------------------------------
# Whole units
# ---------------------------------------------------------------------------

def generate_program(seed: int,
                     config: Optional[GenConfig] = None) -> GeneratedProgram:
    """Generate one adversarial protocol program.

    Deterministic: ``generate_program(s)`` always returns the same
    bytes, and ``generate_program(s, cfg)`` the same for any fixed
    ``cfg``.  When ``config`` is omitted it is itself drawn from the
    seed, so a bare integer fully identifies a program.
    """
    rng = random.Random(seed)
    cfg = config if config is not None else random_config(rng)

    specs = tuple(_build_protocol(rng, i, cfg)
                  for i in range(max(1, cfg.n_protocols)))

    lines: List[str] = [
        f"// generated by repro.testing.generate (seed={seed})",
        "// adversarial protocol program: do not edit by hand",
        "",
    ]
    for spec in specs:
        _render_interface(spec, lines)
        if cfg.near_miss:
            _render_near_miss(spec, lines)

    intents: List[str] = []
    client_names: List[str] = []
    for i in range(max(1, cfg.n_clients)):
        intent = _pick_intent(rng, cfg, specs)
        # switch intents silently degrade to plain walks when the
        # chosen protocol has no variant; resolve that here so the
        # recorded intent stays truthful.
        if intent in ("switch_ok", "switch_bad"):
            with_variant = [s for s in specs if s.variant is not None]
            if not with_variant:
                intent = "ok" if intent == "switch_ok" else "wrong_state"
        name = f"client_{intent}_{i}"
        client_names.append(name)
        intents.append(intent)
        chosen = specs
        if intent in ("switch_ok", "switch_bad"):
            chosen = tuple(s for s in specs if s.variant is not None)
        lines.append(f"int {name}(int x) {{")
        lines.extend(_gen_client(random.Random(rng.randrange(1 << 30)),
                                 cfg, name, intent, chosen))
        lines.append("}")
        lines.append("")

    for k in range(cfg.wide_fillers):
        c1, c2 = rng.randint(2, 9), rng.randint(0, 99)
        lines.append(f"int filler_{k}(int x) {{")
        lines.append(f"    return (x * {c1} + {c2}) - (x / {c1 + 1});")
        lines.append("}")
        lines.append("")

    lines.append("int main() {")
    terms = " + ".join(f"{n}({i + 1})" for i, n in enumerate(client_names))
    lines.append(f"    return {terms};")
    lines.append("}")
    lines.append("")

    return GeneratedProgram(seed=seed, config=cfg,
                            source="\n".join(lines),
                            protocols=specs, intents=tuple(intents))
