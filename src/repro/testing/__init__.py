"""Adversarial protocol-program generation and differential fuzzing.

This package turns the checker on itself:

* :mod:`repro.testing.generate` — a seeded, grammar-driven generator
  that emits syntactically valid Vault programs: random keyed protocol
  state machines plus client functions that follow them, violate them,
  leak them, or consume them twice, under structural stress (deep
  nesting, wide units, near-miss signatures).
* :mod:`repro.testing.differential` — a harness that checks one
  program through every execution path the repo ships (serial,
  parallel worker pool, cached session replay, live check daemon) and
  compares the canonical CLI bytes each path produces.
* :mod:`repro.testing.shrink` — greedy delta-debugging of a divergent
  program down to a minimal reproducer.
* :mod:`repro.testing.fuzz` — the loop tying them together, exposed on
  the command line as ``vaultc fuzz``.

Everything is deterministic from a single integer seed: the same seed
and configuration reproduce the same programs, byte for byte.
"""

from repro.testing.generate import (GenConfig, GeneratedProgram,
                                    generate_program, random_config)
from repro.testing.differential import (DifferentialHarness,
                                        DifferentialResult,
                                        canonical_stdout)
from repro.testing.shrink import shrink
from repro.testing.fuzz import (DivergenceRecord, FuzzReport,
                                derive_seed, run_fuzz)

__all__ = [
    "GenConfig", "GeneratedProgram", "generate_program", "random_config",
    "DifferentialHarness", "DifferentialResult", "canonical_stdout",
    "shrink",
    "DivergenceRecord", "FuzzReport", "derive_seed", "run_fuzz",
]
