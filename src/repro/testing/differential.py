"""Differential byte-identity harness over the four checking paths.

One source program is checked through every execution path the repo
ships — plain serial :func:`repro.check_source`, the forked worker
pool, a warm :class:`CheckSession` cache replay, and a live check
daemon over its socket — and each path's output is rendered to the
exact bytes ``vaultc check`` would print.  Any disagreement between
paths is a *divergence*: the checker's diagnostics are supposed to be
a pure function of the source, however they were computed.

Paths that the platform cannot support (no ``os.fork`` for the worker
pool, no ``AF_UNIX`` for the daemon) are skipped and recorded, never
silently dropped.
"""

from __future__ import annotations

import socket
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import check_source
from repro.pipeline import CheckSession, fork_available

__all__ = ["ALL_PATHS", "DifferentialHarness", "DifferentialResult",
           "canonical_stdout", "daemon_available"]

#: every path the harness knows, in baseline-first order.
ALL_PATHS = ("serial", "parallel", "cached", "daemon")


def canonical_stdout(ok: bool, render: str, errors: int, rel: str) -> str:
    """Exactly what ``vaultc check <rel>`` writes to stdout (the same
    bytes ``tests/golden`` pins)."""
    if ok:
        return f"{rel}: OK (protocols verified)\n"
    return f"{render}\n{rel}: {errors} error(s)\n"


def daemon_available() -> bool:
    return hasattr(socket, "AF_UNIX")


@dataclass
class DifferentialResult:
    """Outputs of one program across all runnable paths."""

    rel: str
    outputs: Dict[str, str]                  # path name -> stdout bytes
    skipped: Tuple[str, ...] = ()

    @property
    def baseline(self) -> str:
        return self.outputs["serial"]

    @property
    def divergent_paths(self) -> List[str]:
        return [p for p, out in self.outputs.items()
                if p != "serial" and out != self.baseline]

    @property
    def divergent(self) -> bool:
        return bool(self.divergent_paths)


class DifferentialHarness:
    """Reusable harness: sessions and the daemon are created once and
    shared across every checked program.

    Use as a context manager::

        with DifferentialHarness() as harness:
            result = harness.check(source, "fuzz-42.vlt")
            assert not result.divergent
    """

    def __init__(self, jobs: int = 2, use_daemon: bool = True,
                 use_parallel: bool = True, use_cache: bool = True) -> None:
        self._parallel: Optional[CheckSession] = None
        self._cached: Optional[CheckSession] = None
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._socket: Optional[str] = None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self.skipped: List[str] = []

        if use_parallel and fork_available():
            self._parallel = CheckSession(jobs=jobs, break_even_seconds=0.0)
        elif use_parallel:
            self.skipped.append("parallel")
        if use_cache:
            self._tmp = tempfile.TemporaryDirectory(prefix="vault-diff-")
            self._cached = CheckSession(cache_dir=self._tmp.name + "/cache")
        if use_daemon and daemon_available():
            from repro.server import CheckServer
            if self._tmp is None:
                self._tmp = tempfile.TemporaryDirectory(prefix="vault-diff-")
            self._socket = self._tmp.name + "/check.sock"
            self._server = CheckServer(socket_path=self._socket)
            self._server.bind()
            self._server_thread = threading.Thread(
                target=self._server.serve_forever, daemon=True)
            self._server_thread.start()
        elif use_daemon:
            self.skipped.append("daemon")

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "DifferentialHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._server is not None:
            self._server.request_stop()
            if self._server_thread is not None:
                self._server_thread.join(10)
            self._server.close()
            self._server = None
        for session in (self._parallel, self._cached):
            if session is not None:
                session.close()
        self._parallel = self._cached = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    @property
    def paths(self) -> List[str]:
        """The paths this harness will actually run."""
        return [p for p in ALL_PATHS if p not in self.skipped
                and not (p == "parallel" and self._parallel is None)
                and not (p == "cached" and self._cached is None)
                and not (p == "daemon" and self._server is None)]

    # -- checking -----------------------------------------------------

    def check(self, source: str, rel: str) -> DifferentialResult:
        outputs: Dict[str, str] = {}

        report = check_source(source, filename=rel)
        outputs["serial"] = canonical_stdout(
            report.ok, report.render(), len(report.errors), rel)

        if self._parallel is not None:
            rep = self._parallel.check(source, filename=rel)
            outputs["parallel"] = canonical_stdout(
                rep.ok, rep.render(), len(rep.errors), rel)

        if self._cached is not None:
            self._cached.check(source, filename=rel)   # populate
            rep = self._cached.check(source, filename=rel)   # warm replay
            outputs["cached"] = canonical_stdout(
                rep.ok, rep.render(), len(rep.errors), rel)

        if self._server is not None:
            from repro.server import DaemonClient
            with DaemonClient(self._socket) as client:
                reply = client.check(source, filename=rel)
            if reply.get("ok"):
                outputs["daemon"] = canonical_stdout(
                    reply["check_ok"], reply["render"],
                    reply["errors"], rel)
            else:
                outputs["daemon"] = f"<daemon error: {reply!r}>\n"

        return DifferentialResult(rel=rel, outputs=outputs,
                                  skipped=tuple(self.skipped))
