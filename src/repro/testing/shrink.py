"""Greedy shrinking of a divergent program to a minimal reproducer.

Classic delta-debugging, specialised to Vault's surface syntax: first
drop whole top-level declarations, then drop single statements inside
the survivors, for as long as the caller's *predicate* (usually "the
four checking paths still disagree") keeps holding on the smaller
program.  The predicate owns validity too — a candidate that no longer
parses simply fails the predicate and is discarded.
"""

from __future__ import annotations

from typing import Callable, List

__all__ = ["shrink", "split_decls"]

Predicate = Callable[[str], bool]


def split_decls(source: str) -> List[str]:
    """Split a unit into top-level declaration chunks.

    Tracks bracket depth (``{}``, ``[]``, ``()`` combined — variant
    declarations nest braces inside brackets) outside strings, chars
    and comments; a chunk ends at a ``;`` or ``}`` at depth zero.
    Leading comment/blank lines stick to the declaration after them.
    """
    chunks: List[str] = []
    buf: List[str] = []
    depth = 0
    i = 0
    n = len(source)
    in_line_comment = in_block_comment = False
    in_string = in_char = False
    while i < n:
        ch = source[i]
        buf.append(ch)
        if in_line_comment:
            if ch == "\n":
                in_line_comment = False
        elif in_block_comment:
            if ch == "*" and i + 1 < n and source[i + 1] == "/":
                buf.append("/")
                i += 1
                in_block_comment = False
        elif in_string:
            if ch == "\\" and i + 1 < n:
                buf.append(source[i + 1])
                i += 1
            elif ch == '"':
                in_string = False
        elif in_char:
            if ch == "\\" and i + 1 < n:
                buf.append(source[i + 1])
                i += 1
            elif ch == "'":
                in_char = False
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            in_line_comment = True
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            in_block_comment = True
        elif ch == '"':
            in_string = True
        elif ch == "'" and i + 1 < n and source[i + 1] != "'" and (
                i + 2 < n and source[i + 2] == "'"):
            # only a real char literal ('x'); tick-constructors ('Ok)
            # never close with a tick after one character
            in_char = True
        elif ch in "{[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                # include an optional trailing ";" (variant decls)
                j = i + 1
                while j < n and source[j] in " \t":
                    j += 1
                if j < n and source[j] == ";":
                    buf.append(source[i + 1:j + 1])
                    i = j
                chunks.append("".join(buf))
                buf = []
        elif ch == ";" and depth == 0:
            chunks.append("".join(buf))
            buf = []
        i += 1
    tail = "".join(buf)
    if tail.strip():
        chunks.append(tail)
    elif tail and chunks:
        chunks[-1] += tail          # keep trailing whitespace: the
    elif tail:                      # chunks must round-trip exactly
        chunks.append(tail)
    return chunks


def _join(chunks: List[str]) -> str:
    return "".join(chunks).strip("\n") + "\n"


def _shrink_decls(chunks: List[str], predicate: Predicate) -> List[str]:
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(chunks):
            candidate = chunks[:i] + chunks[i + 1:]
            if candidate and predicate(_join(candidate)):
                chunks = candidate
                changed = True
            else:
                i += 1
    return chunks


def _shrink_lines(chunks: List[str], predicate: Predicate) -> List[str]:
    changed = True
    while changed:
        changed = False
        for ci, chunk in enumerate(chunks):
            lines = chunk.split("\n")
            li = 0
            while li < len(lines):
                stripped = lines[li].strip()
                # only plain statements are individually removable
                if not stripped.endswith(";") or stripped.startswith(
                        ("interface", "extern", "variant", "type",
                         "struct", "key", "stateset")):
                    li += 1
                    continue
                candidate_lines = lines[:li] + lines[li + 1:]
                candidate = chunks[:ci] + ["\n".join(candidate_lines)] \
                    + chunks[ci + 1:]
                if predicate(_join(candidate)):
                    lines = candidate_lines
                    chunks[ci] = "\n".join(lines)
                    changed = True
                else:
                    li += 1
    return chunks


def _safe(predicate: Predicate) -> Predicate:
    """Candidates that crash the predicate (typically: no longer
    parse, so ``check_source`` raises) simply don't qualify."""
    def guarded(candidate: str) -> bool:
        try:
            return predicate(candidate)
        except Exception:
            return False
    return guarded


def shrink(source: str, predicate: Predicate) -> str:
    """Return the smallest source (greedy, not global) for which
    ``predicate`` still holds.  ``predicate(source)`` must be true on
    entry; otherwise the input is returned unchanged."""
    predicate = _safe(predicate)
    if not predicate(source):
        return source
    chunks = split_decls(source)
    if not predicate(_join(chunks)):
        return source
    # Alternate the two phases to a fixpoint: dropping a statement can
    # make a whole declaration (e.g. a variant only a removed probe
    # call used) removable, and vice versa.
    before = None
    while before != _join(chunks):
        before = _join(chunks)
        chunks = _shrink_decls(chunks, predicate)
        chunks = _shrink_lines(chunks, predicate)
    return _join(chunks)
