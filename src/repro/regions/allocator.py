"""A region (arena) allocator — the substrate for paper §2.2.

Objects are allocated individually from a region and deallocated all at
once when the region is deleted (Tofte/Talpin regions, Gay/Aiken
arenas).  The allocator enforces its protocol at run time the way a
real arena misbehaves deterministically in our simulation:

* access through an object whose region was deleted raises
  ``RT_DANGLING`` (a real program reads garbage / crashes);
* deleting a region twice raises ``RT_DOUBLE_FREE``;
* :meth:`RegionManager.audit` reports regions never deleted (leaks).

The static checker makes all three impossible in checked programs
(Figure 2); the dynamic baseline relies on these run-time checks.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..diagnostics import Code, RuntimeProtocolError

_region_ids = itertools.count(1)


class Region:
    """One region: a named bag of objects with a live/dead flag."""

    def __init__(self, name: Optional[str] = None):
        self.id = next(_region_ids)
        self.name = name or f"region{self.id}"
        self.alive = True
        self.objects: List[Any] = []

    def allocate(self, obj: Any) -> Any:
        if not self.alive:
            raise RuntimeProtocolError(
                Code.RT_DANGLING,
                f"allocation from deleted region '{self.name}'")
        self.objects.append(obj)
        return obj

    def delete(self) -> None:
        if not self.alive:
            raise RuntimeProtocolError(
                Code.RT_DOUBLE_FREE,
                f"region '{self.name}' deleted twice")
        self.alive = False

    @property
    def size(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:
        status = "live" if self.alive else "deleted"
        return f"Region({self.name}, {status}, {self.size} objects)"


class RegionManager:
    """Tracks every region created during one program run."""

    def __init__(self) -> None:
        self.regions: List[Region] = []

    def create(self, name: Optional[str] = None) -> Region:
        region = Region(name)
        self.regions.append(region)
        return region

    def delete(self, region: Region) -> None:
        region.delete()

    def live_regions(self) -> List[Region]:
        return [r for r in self.regions if r.alive]

    def audit(self) -> List[str]:
        """Leak report: names of regions that were never deleted."""
        return [r.name for r in self.live_regions()]

    def assert_no_leaks(self) -> None:
        leaked = self.audit()
        if leaked:
            raise RuntimeProtocolError(
                Code.RT_LEAK,
                f"region(s) never deleted: {', '.join(leaked)}")

    def reset(self) -> None:
        self.regions.clear()
