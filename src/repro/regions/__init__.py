"""Region-based memory management substrate (paper §2.2)."""

from .allocator import Region, RegionManager

__all__ = ["Region", "RegionManager"]
