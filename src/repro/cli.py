"""``vaultc`` — the command-line front end.

Subcommands::

    vaultc check   file.vlt            # parse + protocol-check
    vaultc run     file.vlt [--entry main]   # check then interpret
    vaultc compile file.vlt [-o out.py]      # check then emit Python
    vaultc erase   file.vlt                  # print the key-erased source
    vaultc stats   file.vlt                  # size/annotation metrics
    vaultc mutate  file.vlt [--limit N]      # seeded-fault study
    vaultc fuzz    [--count N --seed S]      # differential path fuzzing
    vaultc serve   [--socket PATH]           # persistent check daemon
    vaultc top     [SOCKET] [--once --json]  # live daemon dashboard
    vaultc watch   DIR                       # re-check changed .vlt files
    vaultc cache   stats|gc                  # shared result store ops
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.metrics import compare_sizes, format_table
from .analysis.mutation import run_study
from .api import check_source, load_context
from .core import check_program
from .diagnostics import RuntimeProtocolError, VaultError
from .lower import compile_to_python, erase_program, load_compiled
from .stdlib.hostimpl import create_host, make_interpreter
from .syntax import parse_program, pretty


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_jobs(value: str) -> "int | str":
    """``--jobs`` accepts an explicit count or ``auto`` (one worker
    per CPU available to this process)."""
    text = value.strip().lower()
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --jobs value {value!r} (expected a count or 'auto')")


def _fault_plan(spec: "str | None"):
    """Parse ``--inject-faults`` / ``VAULTC_FAULTS`` (test use only)."""
    if not spec:
        return None
    from .pipeline.faults import FaultError, FaultPlan
    try:
        return FaultPlan.parse(spec)
    except FaultError as exc:
        raise VaultError(f"bad fault spec: {exc}") from None


def cmd_check(args: argparse.Namespace) -> int:
    source = _read(args.file)
    instrumented = args.trace or args.metrics
    faults = args.inject_faults or os.environ.get("VAULTC_FAULTS")
    shared = args.shared_cache
    if shared:
        from .cache import is_remote_spec
        shared_remote = is_remote_spec(shared)
    else:
        shared_remote = False
    # The daemon path only carries what the wire protocol can express;
    # introspection flags (--trace/--metrics/--profile) and the chaos
    # harness are inherently local, so they check in-process as before.
    # A *remote* shared-cache spec means "use the daemon as a cache
    # tier, check locally" — the opposite of daemon routing.
    if args.daemon is not None and not args.profile and not instrumented \
            and not faults and args.batch_timeout is None \
            and not shared_remote:
        from .server.client import check_via_daemon
        outcome = check_via_daemon(
            source, args.file,
            {"jobs": args.jobs, "cache_dir": args.cache,
             "break_even": None if args.break_even is None
             else args.break_even / 1000.0,
             "shared_cache": shared},
            args.daemon)
        if outcome is not None:
            if outcome.ok:
                print(f"{args.file}: OK (protocols verified)")
                return 0
            print(outcome.render)
            print(f"{args.file}: {outcome.errors} error(s)")
            return 1
        # No reachable daemon: transparent fallback to the identical
        # in-process pipeline below.
    if args.jobs != 1 or args.cache or args.profile or instrumented \
            or args.break_even is not None \
            or args.batch_timeout is not None or faults or shared:
        from .obs import Telemetry
        from .pipeline import CheckSession
        from .pipeline.scheduler import (BREAK_EVEN_SECONDS,
                                         DEFAULT_BATCH_TIMEOUT)
        # --profile turns metrics on too: the quantile lines in the
        # profile read off the check.function_seconds histogram.
        telemetry = Telemetry(trace=bool(args.trace),
                              metrics=bool(args.metrics) or args.profile)
        break_even = BREAK_EVEN_SECONDS if args.break_even is None \
            else args.break_even / 1000.0
        batch_timeout = DEFAULT_BATCH_TIMEOUT \
            if args.batch_timeout is None else args.batch_timeout
        store = None
        if shared:
            from .cache import open_store
            store = open_store(shared, telemetry)
        try:
            with CheckSession(jobs=args.jobs, cache_dir=args.cache,
                              telemetry=telemetry,
                              break_even_seconds=break_even,
                              batch_timeout=batch_timeout,
                              fault_plan=_fault_plan(faults),
                              shared_store=store) as session:
                try:
                    report = session.check(source, filename=args.file)
                finally:
                    # The trace is most valuable for the run that
                    # failed: write whatever was recorded even on a
                    # crash.
                    if args.trace:
                        telemetry.tracer.export(args.trace)
                if args.profile:
                    _print_profile(session, file=sys.stderr)
                if args.metrics:
                    _write_metrics(telemetry, args.metrics)
        finally:
            if store is not None:
                store.close()
    else:
        report = check_source(source, filename=args.file)
    if report.ok:
        print(f"{args.file}: OK (protocols verified)")
        return 0
    print(report.render())
    print(f"{args.file}: {len(report.errors)} error(s)")
    return 1


def _write_metrics(telemetry, destination: str) -> None:
    """``--metrics -`` renders a table to stderr; any other value is
    a path that receives the snapshot as JSON."""
    if destination == "-":
        print("metrics:", file=sys.stderr)
        print(telemetry.metrics.render(), file=sys.stderr)
        return
    import json
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(telemetry.metrics.snapshot(), handle, indent=2)
        handle.write("\n")


def _print_profile(session, file) -> int:
    profile = session.last_profile
    stats = session.stats
    print("profile:", file=file)
    for key in ("context_seconds", "check_seconds"):
        if key in profile:
            label = key.replace("_seconds", "")
            print(f"  {label:<22} {profile[key] * 1000:8.1f} ms", file=file)
    if "plan" in profile:
        print(f"  {'schedule':<22} {profile['plan']}", file=file)
    print(f"  {'functions checked':<22} {stats.functions_checked:8d}",
          file=file)
    print(f"  {'functions replayed':<22} {stats.functions_replayed:8d}",
          file=file)
    metrics = session.telemetry.metrics
    if metrics.enabled:
        snapshot = metrics.snapshot().get("check.function_seconds")
        if snapshot and snapshot.get("count"):
            from .obs import bucket_quantile
            bounds = snapshot["bounds"]
            counts = snapshot["bucket_counts"]
            quants = " / ".join(
                f"p{int(q * 100)} "
                f"{bucket_quantile(bounds, counts, q) * 1000:.1f} ms"
                for q in (0.5, 0.95, 0.99))
            print(f"  {'function latency':<22} {quants}", file=file)
    token_total = stats.token_hits + stats.token_misses
    if token_total:
        print(f"  {'token cache':<22} {stats.token_hits:8d} hits / "
              f"{stats.token_misses} misses "
              f"({stats.token_hits / token_total:.0%})", file=file)
    if stats.relex_splices or stats.relex_fallbacks:
        print(f"  {'relex splices':<22} {stats.relex_splices:8d} "
              f"({stats.relex_fallbacks} fallbacks)", file=file)
    if stats.fingerprints_memoized:
        print(f"  {'fingerprints memoized':<22} "
              f"{stats.fingerprints_memoized:8d}", file=file)
    if stats.shared_unit_hits or stats.shared_summary_hits \
            or stats.shared_puts:
        print(f"  {'shared unit replays':<22} "
              f"{stats.shared_unit_hits:8d}", file=file)
        print(f"  {'shared summary hits':<22} "
              f"{stats.shared_summary_hits:8d} hits / "
              f"{stats.shared_summary_misses} misses", file=file)
        print(f"  {'shared puts':<22} {stats.shared_puts:8d}", file=file)
    if stats.pool_spawns:
        print(f"  {'worker pools forked':<22} {stats.pool_spawns:8d}",
              file=file)
    recovered = [(label, getattr(stats, name, 0)) for label, name in
                 (("worker respawns", "respawns"),
                  ("batch retries", "retries"),
                  ("batch bisections", "bisections"),
                  ("watchdog timeouts", "timeouts"),
                  ("poisoned functions", "poisoned"),
                  ("cache quarantines", "cache_quarantines"))]
    if any(count for _label, count in recovered):
        for label, count in recovered:
            print(f"  {label:<22} {count:8d}", file=file)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _read(args.file)
    ctx, report = load_context(source, filename=args.file)
    if report.ok and not args.unchecked:
        check_program(ctx, report)
    if not report.ok:
        print(report.render())
        return 1
    if args.monitor:
        from .runtime.monitor import make_monitored
        interp = make_monitored(ctx)
        host = interp.vault_host
    else:
        host = create_host()
        interp = make_interpreter(ctx, host)
    try:
        result = interp.call(args.entry)
    except RuntimeProtocolError as err:
        print(f"runtime protocol violation: {err}")
        return 2
    print(f"{args.entry}() -> {result!r}")
    leaks = host.audit()
    if args.monitor:
        leaks = leaks + interp.monitor.audit()
    if leaks:
        print("leaked resources:", "; ".join(leaks))
        return 3
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    source = _read(args.file)
    report = check_source(source, filename=args.file)
    if not report.ok:
        print(report.render())
        return 1
    code = compile_to_python(parse_program(source, args.file))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(code)
        print(f"wrote {args.output}")
    else:
        print(code)
    return 0


def cmd_erase(args: argparse.Namespace) -> int:
    source = _read(args.file)
    program = parse_program(source, args.file)
    print(pretty(erase_program(program)), end="")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    source = _read(args.file)
    cmp = compare_sizes(source)
    rows = [[metric, str(v), str(e), f"{o:+.1%}"]
            for metric, v, e, o in cmp.rows()]
    print(format_table(["metric", "vault", "erased", "overhead"], rows))

    from .core import program_cfgs
    cfgs = program_cfgs(parse_program(source, args.file))
    if cfgs:
        print()
        cfg_rows = []
        for name, cfg in sorted(cfgs.items()):
            stats = cfg.stats()
            cfg_rows.append([name, str(stats["blocks"]),
                             str(stats["edges"]), str(stats["loops"]),
                             str(stats["unreachable"])])
        print(format_table(
            ["function", "blocks", "edges", "loops", "unreachable"],
            cfg_rows))

    # A metrics-instrumented check of the same file: the session's
    # telemetry snapshot (cache traffic, scheduler verdict, worker
    # resilience counters, diagnostic code counts) as one more stats
    # table.  ``--jobs`` > 1 exercises the supervised pool, whose
    # ``resilience.*`` counters then show up (zero on healthy runs);
    # $VAULTC_FAULTS is honoured so chaos runs are inspectable here.
    from .obs import Telemetry
    from .pipeline import CheckSession
    from .pipeline.scheduler import BREAK_EVEN_SECONDS
    telemetry = Telemetry(metrics=True)
    # Asking for workers on a stats run means "show me the pool": zero
    # break-even forces it even though one file is a tiny workload.
    break_even = 0.0 if args.jobs != 1 else BREAK_EVEN_SECONDS
    with CheckSession(telemetry=telemetry, jobs=args.jobs,
                      break_even_seconds=break_even,
                      fault_plan=_fault_plan(
                          os.environ.get("VAULTC_FAULTS"))) as session:
        session.check(source, filename=args.file)
    metric_rows = [[name, value]
                   for name, value in telemetry.metrics.render_rows()]
    if metric_rows:
        print()
        print("checker metrics (one cold check):")
        print(format_table(["metric", "value"], metric_rows))
    return 0


def cmd_fmt(args: argparse.Namespace) -> int:
    source = _read(args.file)
    formatted = pretty(parse_program(source, args.file))
    if args.in_place:
        with open(args.file, "w", encoding="utf-8") as handle:
            handle.write(formatted)
        print(f"formatted {args.file}")
    else:
        print(formatted, end="")
    return 0


def cmd_cfg(args: argparse.Namespace) -> int:
    from .core import program_cfgs
    source = _read(args.file)
    cfgs = program_cfgs(parse_program(source, args.file))
    if args.function:
        cfg = cfgs.get(args.function)
        if cfg is None:
            print(f"no function '{args.function}' in {args.file}",
                  file=sys.stderr)
            return 1
        print(cfg.render())
        return 0
    for name in sorted(cfgs):
        print(cfgs[name].render())
        print()
    return 0


def cmd_mutate(args: argparse.Namespace) -> int:
    source = _read(args.file)
    summary = run_study(source, limit=args.limit)
    rows = [[name, str(n), f"{rate:.0%}"] for name, n, rate in summary.rows()]
    rows.append(["(benign / undetected)", str(summary.benign), ""])
    print(f"{summary.total} mutants")
    print(format_table(["oracle", "detected", "rate"], rows))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import derive_seed, generate_program, run_fuzz

    if args.emit is not None:
        sys.stdout.write(generate_program(args.emit).source)
        return 0

    def progress(index: int, program_seed: int, verdict: str) -> None:
        if verdict == "DIVERGED":
            print(f"[{index + 1}/{args.count}] seed {program_seed}: "
                  f"DIVERGED", flush=True)
        elif not args.quiet and (index + 1) % 25 == 0:
            print(f"[{index + 1}/{args.count}] ...", flush=True)

    report = run_fuzz(args.count, seed=args.seed, jobs=args.jobs,
                      use_daemon=not args.no_daemon,
                      use_parallel=not args.no_parallel,
                      on_program=progress)

    print(f"fuzz: seed {report.seed}, {report.count} programs via "
          f"{'/'.join(report.paths)}"
          + (f" (skipped: {'/'.join(report.skipped_paths)})"
             if report.skipped_paths else ""))
    print(f"  {report.programs_ok} checked clean, "
          f"{report.programs_rejected} rejected")
    if report.diagnostics:
        tally = ", ".join(f"{code}x{n}" for code, n
                          in sorted(report.diagnostics.items()))
        print(f"  diagnostics: {tally}")

    if args.out:
        import json
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")

    if report.divergences:
        os.makedirs(args.repro_dir, exist_ok=True)
        for record in report.divergences:
            path = os.path.join(args.repro_dir,
                                f"repro-{record.program_seed}.vlt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(record.shrunk)
            print(f"  DIVERGENCE seed {record.program_seed} "
                  f"(paths {', '.join(record.paths)}): shrunk "
                  f"reproducer written to {path}")
            print(f"    replay: vaultc fuzz --emit {record.program_seed}")
        print(f"fuzz: {len(report.divergences)} divergence(s) — the "
              f"checking paths are NOT byte-identical")
        return 1
    print("fuzz: all paths byte-identical on every program")
    return 0


def _serve_child_args(args: argparse.Namespace) -> list:
    """Rebuild the ``serve`` argv for a supervised child — this very
    invocation minus ``--supervise``."""
    argv = [sys.executable, "-m", "repro.cli", "serve"]
    if args.socket:
        argv += ["--socket", args.socket]
    if args.idle_timeout is not None:
        argv += ["--idle-timeout", str(args.idle_timeout)]
    argv += ["--jobs", str(args.jobs)]
    if args.shared_cache:
        argv += ["--shared-cache", args.shared_cache]
    argv += ["--sample-interval", str(args.sample_interval)]
    if args.prom_file:
        argv += ["--prom-file", args.prom_file]
    if args.slow_ms is not None:
        argv += ["--slow-ms", str(args.slow_ms)]
    if args.trace_dir:
        argv += ["--trace-dir", args.trace_dir]
    if args.event_log:
        argv += ["--event-log", args.event_log]
    argv += ["--max-queue", str(args.max_queue),
             "--io-timeout", str(args.io_timeout)]
    return argv


def cmd_serve(args: argparse.Namespace) -> int:
    from .obs import Telemetry, open_event_log
    from .server import serve
    if args.supervise:
        from .server import Supervisor
        telemetry = Telemetry(metrics=True)
        writer = open_event_log(args.event_log and args.event_log
                                + ".supervisor", telemetry.events)
        try:
            return Supervisor(_serve_child_args(args),
                              telemetry=telemetry).run()
        finally:
            if writer is not None:
                writer.close()
    telemetry = Telemetry(metrics=True)
    # Subscribe the audit sink before serve() so server_start itself
    # lands in the log.
    writer = open_event_log(args.event_log, telemetry.events)
    try:
        return serve(socket_path=args.socket,
                     idle_timeout=args.idle_timeout,
                     telemetry=telemetry,
                     default_jobs=args.jobs,
                     ready_out=sys.stderr,
                     shared_cache_dir=args.shared_cache,
                     sample_interval=args.sample_interval,
                     prom_file=args.prom_file,
                     slow_ms=args.slow_ms,
                     trace_dir=args.trace_dir,
                     max_queue=args.max_queue,
                     io_timeout=args.io_timeout or None)
    finally:
        if writer is not None:
            writer.close()


def cmd_top(args: argparse.Namespace) -> int:
    from .server.top import run_top
    return run_top(socket_path=args.socket, interval=args.interval,
                   once=args.once or args.json, as_json=args.json)


def cmd_cache(args: argparse.Namespace) -> int:
    import json
    if args.cache_cmd == "stats":
        if args.dir:
            from .cache import CASTier
            print(json.dumps(CASTier(args.dir).stats_snapshot(),
                             indent=2, sort_keys=True))
            return 0
        from .server.client import DaemonClient, DaemonUnavailable
        try:
            # Short read timeout: a wedged daemon is an rc-1 error,
            # not a hung CLI.
            with DaemonClient(args.daemon, read_timeout=10.0) as client:
                reply = client.stats()
        except DaemonUnavailable as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        stats = reply.get("stats") if reply.get("ok") else None
        if not isinstance(stats, dict):
            print("error: daemon returned no stats", file=sys.stderr)
            return 1
        block = stats.get("shared_cache")
        if block is None:
            print("error: daemon predates the shared cache "
                  "(no shared_cache stats block)", file=sys.stderr)
            return 1
        print(json.dumps(block, indent=2, sort_keys=True))
        return 0
    if args.cache_cmd == "gc":
        from .cache import CASTier, DEFAULT_MAX_BYTES
        max_bytes = DEFAULT_MAX_BYTES if args.max_bytes is None \
            else args.max_bytes
        report = CASTier(args.dir, max_bytes=max_bytes).gc(force=True)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    raise VaultError(f"unknown cache subcommand {args.cache_cmd!r}")


def cmd_watch(args: argparse.Namespace) -> int:
    from .server.watch import run_watch
    try:
        return run_watch(args.dir, interval=args.interval,
                         cycles=args.cycles, socket_path=args.daemon,
                         options={"jobs": args.jobs,
                                  "cache_dir": args.cache})
    except NotADirectoryError:
        print(f"error: {args.dir} is not a directory", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vaultc",
        description="Vault protocol checker/compiler "
                    "(PLDI 2001 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse and protocol-check a file")
    p.add_argument("file")
    p.add_argument("--jobs", "-j", type=_parse_jobs, default=1,
                   metavar="N|auto",
                   help="check functions with N parallel workers, or "
                        "'auto' for one per CPU (output is identical "
                        "to serial mode; small workloads stay serial)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="persist function summaries under DIR so "
                        "unchanged functions are not re-checked")
    p.add_argument("--shared-cache", default=None,
                   metavar="DIR|daemon[:SOCKET]",
                   help="share summaries and unit results across "
                        "sessions through a content-addressed store: "
                        "a directory (crash-safe on-disk CAS) or "
                        "'daemon'/'daemon:SOCKET' (a running 'vaultc "
                        "serve' as a remote cache tier); a second "
                        "cold check of identical code replays at "
                        "warm speed")
    p.add_argument("--profile", action="store_true",
                   help="print phase timings and the scheduler's "
                        "verdict to stderr")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record a span trace of the check and write "
                        "Chrome trace-event JSON to FILE (load it in "
                        "chrome://tracing or ui.perfetto.dev; pool "
                        "workers appear as separate tracks)")
    p.add_argument("--metrics", default=None, metavar="FILE|-",
                   help="record pipeline metrics (cache hit rates, "
                        "scheduler verdicts, diagnostic-code counts); "
                        "'-' prints a table to stderr, anything else "
                        "is a path that receives JSON")
    p.add_argument("--break-even", type=float, default=None, metavar="MS",
                   help="override the scheduler's break-even threshold "
                        "in milliseconds (0 forces the worker pool; "
                        "default 50)")
    p.add_argument("--batch-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="floor for the per-batch watchdog deadline: a "
                        "worker that holds a batch longer than "
                        "max(SECONDS, cost-model estimate with headroom) "
                        "is killed and respawned (default 30)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic chaos harness (TEST USE ONLY): "
                        "inject worker crashes/hangs/pipe EOFs/pickle "
                        "garbage and cache bit-flips, e.g. "
                        "'crash@0,hang@2,flip-cache,seed=7'; also read "
                        "from $VAULTC_FAULTS")
    p.add_argument("--daemon", nargs="?", const="auto", default=None,
                   metavar="auto|SOCKET",
                   help="route the check through a running 'vaultc "
                        "serve' daemon ('auto' or no value uses the "
                        "default socket); falls back to an in-process "
                        "check, with byte-identical diagnostics, when "
                        "no daemon is reachable")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("run", help="check then interpret a file")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--unchecked", action="store_true",
                   help="skip static checking (testing baseline)")
    p.add_argument("--monitor", action="store_true",
                   help="enforce effect clauses dynamically at run time")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compile", help="check then emit Python")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("erase", help="print the key-erased source")
    p.add_argument("file")
    p.set_defaults(fn=cmd_erase)

    p = sub.add_parser("stats", help="annotation-overhead metrics")
    p.add_argument("file")
    p.add_argument("--jobs", "-j", type=_parse_jobs, default=1,
                   metavar="N|auto",
                   help="run the instrumented check with N pool workers "
                        "so the resilience counters (respawns, retries, "
                        "bisections, timeouts) are exercised and shown")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("fmt", help="pretty-print (normalise) a file")
    p.add_argument("file")
    p.add_argument("-i", "--in-place", action="store_true")
    p.set_defaults(fn=cmd_fmt)

    p = sub.add_parser("cfg", help="print control-flow graphs")
    p.add_argument("file")
    p.add_argument("--function", "-f", default=None)
    p.set_defaults(fn=cmd_cfg)

    p = sub.add_parser("mutate", help="seeded-fault detection study")
    p.add_argument("file")
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(fn=cmd_mutate)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated protocol programs must "
             "check byte-identically through every execution path "
             "(see docs/PROTOCOLS.md)")
    p.add_argument("--count", "-n", type=int, default=50, metavar="N",
                   help="number of programs to generate (default 50)")
    p.add_argument("--seed", type=int, default=0, metavar="S",
                   help="master seed; the same seed and count replay "
                        "exactly the same programs (default 0)")
    p.add_argument("--jobs", "-j", type=int, default=2, metavar="N",
                   help="worker count for the parallel path (default 2)")
    p.add_argument("--no-daemon", action="store_true",
                   help="skip the check-daemon path")
    p.add_argument("--no-parallel", action="store_true",
                   help="skip the forked worker-pool path")
    p.add_argument("--out", default=None, metavar="REPORT.json",
                   help="write the full machine-readable report here")
    p.add_argument("--repro-dir", default=".", metavar="DIR",
                   help="where shrunk reproducers are written on "
                        "divergence (default: current directory)")
    p.add_argument("--emit", type=int, default=None, metavar="SEED",
                   help="print the program for one *program* seed "
                        "(as reported in a divergence) and exit")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="no periodic progress lines")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the persistent check daemon (warm caches, worker "
             "pool, Unix-socket protocol; see docs/SERVER.md)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="Unix socket to listen on (default: "
                        "$VAULTC_SOCKET or a per-user runtime path)")
    p.add_argument("--idle-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="exit after this long with no requests "
                        "(default: run until SIGTERM/Ctrl-C)")
    p.add_argument("--jobs", "-j", type=_parse_jobs, default=1,
                   metavar="N|auto",
                   help="default worker count for requests that do "
                        "not specify one")
    p.add_argument("--shared-cache", default=None, metavar="DIR",
                   help="back the daemon-wide shared cache with a "
                        "persistent on-disk CAS under DIR (all warm "
                        "sessions and the cache_get/cache_put wire "
                        "ops read and write it)")
    p.add_argument("--sample-interval", type=float, default=5.0,
                   metavar="SECONDS",
                   help="seconds between time-series samples of the "
                        "daemon's metrics (default 5; the 'telemetry' "
                        "op and 'vaultc top' read the sampled window)")
    p.add_argument("--prom-file", default=None, metavar="PATH",
                   help="atomically rewrite PATH with Prometheus text "
                        "exposition on every sample tick (point a "
                        "textfile collector at it)")
    p.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                   help="capture a Chrome-trace span tree for every "
                        "request slower than MS milliseconds into a "
                        "bounded on-disk ring (see --trace-dir)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="directory for slow-request traces (default: "
                        "'traces' beside the socket; newest 32 kept)")
    p.add_argument("--event-log", default=None, metavar="PATH",
                   help="append every daemon event to a size-rotated "
                        "JSONL audit log at PATH")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="pending check requests buffered before the "
                        "daemon load-sheds with busy replies "
                        "(default 64)")
    p.add_argument("--io-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="reap connections that stall mid-frame for "
                        "this long (slow-loris guard; default 30, "
                        "0 disables)")
    p.add_argument("--supervise", action="store_true",
                   help="run the daemon in a child process and "
                        "respawn it on crash (crash-loop backoff, "
                        "rate-limited; clean exits end supervision)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "top",
        help="live dashboard over a running daemon's telemetry op "
             "(throughput, latency quantiles, cache hit rates, "
             "sessions, slow traces)")
    p.add_argument("socket", nargs="?", default="auto",
                   metavar="SOCKET",
                   help="daemon socket to poll (default 'auto')")
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECONDS", help="refresh interval")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="print the raw telemetry reply as JSON "
                        "(implies --once)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "cache",
        help="inspect or collect a shared result store "
             "(see --shared-cache)")
    cache_sub = p.add_subparsers(dest="cache_cmd", required=True)
    pc = cache_sub.add_parser(
        "stats", help="per-tier hit/miss/occupancy counters")
    pc.add_argument("--dir", default=None, metavar="DIR",
                    help="inspect an on-disk CAS directory instead of "
                         "a live daemon")
    pc.add_argument("--daemon", nargs="?", const="auto", default="auto",
                    metavar="auto|SOCKET",
                    help="daemon socket to query (default 'auto')")
    pc.set_defaults(fn=cmd_cache)
    pc = cache_sub.add_parser(
        "gc", help="collect an on-disk CAS down to its size budget")
    pc.add_argument("dir", metavar="DIR")
    pc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="size budget to collect toward (default "
                         "512 MiB); oldest objects are deleted first")
    pc.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "watch",
        help="re-check .vlt files under DIR whenever they change "
             "(through the daemon when one is reachable)")
    p.add_argument("dir")
    p.add_argument("--interval", type=float, default=0.5,
                   metavar="SECONDS", help="mtime poll interval")
    p.add_argument("--cycles", type=int, default=0, metavar="N",
                   help="stop after N polls (0 = run until Ctrl-C)")
    p.add_argument("--daemon", nargs="?", const="auto", default="auto",
                   metavar="auto|SOCKET",
                   help="daemon socket to check through (default "
                        "'auto'; checks fall back in-process when no "
                        "daemon is reachable)")
    p.add_argument("--jobs", "-j", type=_parse_jobs, default=1,
                   metavar="N|auto")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="summary-cache directory for in-process "
                        "fallback checks")
    p.set_defaults(fn=cmd_watch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except VaultError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
