"""Incremental sub-chunk relexing.

When an edit dirties a chunk, :func:`relex` splices a fresh lex of just
the changed region into the chunk's cached token stream instead of
re-lexing the whole chunk:

1. The old and new chunk texts are diffed to a common byte prefix of
   length ``P`` and a common byte suffix of length ``S`` (clamped so
   they never overlap).
2. Old tokens that end **strictly** before ``P`` are kept as-is (one
   extra token is dropped as a safety margin).  Strictness matters: a
   token ending exactly at ``P`` can be extended by the edit (``ab`` +
   inserted ``c``), and the one-character-lookahead decisions the lexer
   makes at a token's end are only stable while the lookahead character
   itself sits inside the common prefix.  The two-character decision —
   ``/`` followed by ``*`` opening a comment — always involves a ``/``
   token whose end offset equals the boundary, which strict ``<``
   excludes.
3. The changed region is re-lexed from the end of the last kept token
   using the lexer's ``first_line``/``first_col`` slice seeding.  The
   lexer carries no state across token boundaries beyond line tracking,
   so restarting there reproduces the full lex.  The window over the
   new text starts just past the changed region and grows (doubling) if
   it cuts a token in half — a :class:`LexError` from a window-truncated
   string or comment just grows the window, and tokens touching the
   window's edge are never trusted.
4. Fresh tokens are scanned for an **offset alignment**: a fresh token
   whose start, shifted back by ``delta = len(new) - len(old)``, lands
   on an old token start inside the old text's common suffix.  From
   that point the remaining texts are byte-identical modulo ``delta``,
   so the old suffix tokens are reused with spans rebased: offsets
   shift by ``delta``, lines by the aligned pair's line difference, and
   columns shift only for tokens still on the aligned token's line
   (later lines re-derive their columns from unchanged line starts).
   Both shifts are derived from the aligned token pair, never from raw
   newline counts, so the splice agrees with the lexer's own line
   tracking even for texts that exercise its escaped-newline-in-string
   quirk.
5. When every shift is zero (a same-length edit on one line), the old
   suffix token objects are shared outright.

Any anomaly — no alignment, a kind/text mismatch at the alignment
point, a lex error that survives growing the window to the full text —
returns ``None`` and the caller falls back to a full
:func:`~repro.syntax.lexer.tokenize`, which also re-raises lex errors
with canonical coordinates.  The splice is therefore an optimization
only; it can never change observable output.
"""

from __future__ import annotations

from typing import List, Optional

from ..diagnostics import LexError
from .lexer import tokenize
from .tokens import T, Token

#: Fresh-lex margin past the changed region, and the initial window cap.
_WINDOW_SLACK = 256


class RelexResult:
    """A spliced token stream plus reuse accounting."""

    __slots__ = ("tokens", "reused", "fresh")

    def __init__(self, tokens: List[Token], reused: int, fresh: int):
        self.tokens = tokens
        self.reused = reused
        self.fresh = fresh


def _common_prefix(old: str, new: str) -> int:
    limit = min(len(old), len(new))
    # Block compare first (C speed), then binary-narrow the first
    # differing block; the final few bytes are checked directly.
    lo = 0
    step = 4096
    while lo < limit and old[lo:lo + step] == new[lo:lo + step]:
        lo += step
    hi = min(limit, lo + step)
    while lo < hi:
        mid = (lo + hi) // 2
        if old[lo:mid + 1] == new[lo:mid + 1]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _common_suffix(old: str, new: str, prefix: int) -> int:
    limit = min(len(old), len(new)) - prefix
    lo = 0
    step = 4096
    while lo < limit and old[len(old) - lo - step:len(old) - lo] == \
            new[len(new) - lo - step:len(new) - lo]:
        lo += step
    hi = min(limit, lo + step)
    while lo < hi:
        mid = (lo + hi) // 2
        if old[len(old) - mid - 1:len(old) - lo] == \
                new[len(new) - mid - 1:len(new) - lo]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def relex(old_text: str, old_tokens: List[Token], new_text: str,
          filename: str = "<input>", first_line: int = 1,
          first_col: int = 1) -> Optional[RelexResult]:
    """Splice a fresh lex of the changed region into ``old_tokens``.

    ``old_tokens`` must be the exact ``tokenize`` output for
    ``old_text`` with the same seeding.  Returns ``None`` when the
    splice cannot be performed safely; the caller should then fall back
    to a full lex.  On success the result's ``tokens`` are guaranteed
    equal (:meth:`Token.__eq__`, spans included) to
    ``tokenize(new_text, filename, first_line, first_col)``.
    """
    if not old_tokens or old_tokens[-1].kind is not T.EOF:
        return None
    if old_text == new_text:
        return RelexResult(old_tokens, len(old_tokens), 0)

    prefix = _common_prefix(old_text, new_text)
    suffix = _common_suffix(old_text, new_text, prefix)
    delta = len(new_text) - len(old_text)

    # Keep old tokens ending strictly inside the common prefix, minus
    # one margin token (see module docstring).
    keep = 0
    for tok in old_tokens:
        if tok.kind is T.EOF or tok.end_offset >= prefix:
            break
        keep += 1
    if keep:
        keep -= 1
    kept = old_tokens[:keep]

    if kept:
        last = kept[-1]
        restart = last.end_offset
        seed_line, seed_col = last.line, last.end_col
    else:
        restart = 0
        seed_line, seed_col = first_line, first_col

    # Old token starts inside the old common suffix, for alignment.
    old_suffix_start = len(old_text) - suffix
    starts = {}
    for idx in range(len(old_tokens) - 1, -1, -1):
        off = old_tokens[idx].offset
        if off < old_suffix_start:
            break
        starts[off] = idx
    new_suffix_start = len(new_text) - suffix

    window_end = min(len(new_text),
                     max(new_suffix_start + _WINDOW_SLACK,
                         restart + _WINDOW_SLACK))
    while True:
        try:
            fresh_slice = tokenize(new_text[restart:window_end], filename,
                                   seed_line, seed_col)
        except LexError:
            if window_end == len(new_text):
                return None
            window_end = min(len(new_text), restart + 2 * (window_end - restart))
            continue

        full_window = window_end == len(new_text)
        fresh: List[Token] = []
        align_at: Optional[int] = None  # old index aligned to fresh[-1]
        for tok in fresh_slice:
            if tok.kind is T.EOF:
                if full_window:
                    fresh.append(Token(T.EOF, "", tok.line, tok.col,
                                       tok.end_col, tok.offset + restart,
                                       tok.end_offset + restart, tok.filename))
                break
            if not full_window and tok.end_offset + restart >= window_end:
                break  # possibly truncated by the window edge
            abs_off = tok.offset + restart
            if abs_off >= new_suffix_start:
                idx = starts.get(abs_off - delta)
                if idx is not None:
                    old_tok = old_tokens[idx]
                    if old_tok.kind is tok.kind and old_tok.text == tok.text:
                        align_at = idx
                        fresh.append(Token(tok.kind, tok.text, tok.line,
                                           tok.col, tok.end_col, abs_off,
                                           tok.end_offset + restart,
                                           tok.filename))
                        break
            fresh.append(Token(tok.kind, tok.text, tok.line, tok.col,
                               tok.end_col, abs_off, tok.end_offset + restart,
                               tok.filename))

        if align_at is not None:
            anchor = fresh.pop()
            old_anchor = old_tokens[align_at]
            line_shift = anchor.line - old_anchor.line
            col_shift = anchor.col - old_anchor.col
            tail: List[Token]
            if delta == 0 and line_shift == 0 and col_shift == 0:
                tail = old_tokens[align_at:]
            else:
                anchor_line = old_anchor.line
                tail = [
                    Token(t.kind, t.text, t.line + line_shift,
                          t.col + (col_shift if t.line == anchor_line else 0),
                          t.end_col + (col_shift if t.line == anchor_line else 0),
                          t.offset + delta, t.end_offset + delta, t.filename)
                    for t in old_tokens[align_at:]
                ]
            tokens = kept + fresh + tail
            return RelexResult(tokens, len(kept) + len(tail), len(fresh))

        if full_window:
            # No alignment: the fresh lex already covers the whole
            # remainder, EOF included.
            return RelexResult(kept + fresh, len(kept), len(fresh))
        window_end = min(len(new_text), restart + 2 * (window_end - restart))
