"""Recursive-descent parser for the Vault surface language.

The grammar is C-like (paper §2.1).  The classic declaration-versus-
expression ambiguity (``FILE input;`` vs. ``input;``) is resolved by
speculative parsing with backtracking: at statement level we first try
to parse ``type IDENT`` and fall back to an expression statement.

Vault-specific syntax handled here:

* guarded types            ``K:FILE``, ``K@open:FILE``,
                           ``(IRQL @ (level<=APC_LEVEL)):T``
* tracked types            ``tracked(K) T``, ``tracked(K@st) T``,
                           ``tracked(@raw) T``, ``tracked T``
* effect clauses           ``[K@a->b]``, ``[-K@a]``, ``[+K@b]``,
                           ``[new K@b]``, ``[IRQL@(l<=DISPATCH)->DISPATCH]``
* variants with keys       ``variant opt_key<key K> ['NoKey | 'SomeKey{K}];``
* constructor application  ``'SomeKey{F}``, ``'Cons(rgn, 'Nil)``
* switch pattern matching  ``case 'Error(code): ...``
* statesets / global keys  ``stateset L = [a < b]; key IRQL @ L;``
* allocation               ``new tracked point {x=3; y=4;}``,
                           ``new(rgn) point {...}``
* nested function defs     (Figure 7's ``RegainIrp``)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..diagnostics import ParseError, Span
from ..obs.trace import current_tracer
from . import ast
from .intern import AST_POOL
from .lexer import tokenize
from .tokens import BASE_TYPE_TOKENS, T, Token


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<input>"):
        self.toks = tokens
        self.pos = 0
        self.filename = filename
        self._last = len(tokens) - 1   # index of the EOF sentinel

    # -- token helpers ------------------------------------------------------

    # ``self.pos <= self._last`` is an invariant: the cursor only moves
    # past non-EOF tokens, so ``self.toks[self.pos]`` is always valid
    # and the zero-lookahead helpers need no clamping.

    def _peek(self, ahead: int = 0) -> Token:
        if ahead:
            i = self.pos + ahead
            return self.toks[i if i < self._last else self._last]
        return self.toks[self.pos]

    def _at(self, kind: T, ahead: int = 0) -> bool:
        if ahead:
            i = self.pos + ahead
            return self.toks[i if i < self._last else self._last].kind is kind
        return self.toks[self.pos].kind is kind

    def _advance(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind is not T.EOF:
            self.pos += 1
        return tok

    def _accept(self, kind: T) -> Optional[Token]:
        tok = self.toks[self.pos]
        if tok.kind is kind:
            if kind is not T.EOF:
                self.pos += 1
            return tok
        return None

    def _expect(self, kind: T, what: str = "") -> Token:
        tok = self.toks[self.pos]
        if tok.kind is kind:
            if kind is not T.EOF:
                self.pos += 1
            return tok
        wanted = what or kind.value
        raise ParseError(f"expected {wanted}, found {tok.kind.value} {tok.text!r}",
                         tok.span)

    def _span_from(self, start: Span) -> Span:
        # The last consumed token always ends at or after ``start`` (a
        # construct consumes its first token before widening), so the
        # covering span is just (start.start, last.end) — no min/max
        # comparison or fresh ``Pos`` pair as ``Span.merge`` would pay.
        end = self.toks[self.pos - 1 if self.pos else 0].span.end
        s = start.start
        if end.line < s.line or (end.line == s.line and end.col < s.col):
            return start.merge(self.toks[self.pos - 1 if self.pos else 0].span)
        return Span(s, end, self.filename)

    # -- entry points ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self._peek().span
        decls: List[ast.Decl] = []
        while not self._at(T.EOF):
            decls.append(self.parse_topdecl())
        return ast.Program(self._span_from(start), decls, self.filename)

    # -- top-level declarations ----------------------------------------------

    def parse_topdecl(self) -> ast.Decl:
        if self._at(T.KW_INTERFACE):
            return self.parse_interface()
        if self._at(T.KW_EXTERN) or self._at(T.KW_MODULE):
            return self.parse_module()
        if self._at(T.KW_TYPE):
            return self.parse_type_decl()
        if self._at(T.KW_VARIANT):
            return self.parse_variant_decl()
        if self._at(T.KW_STRUCT):
            return self.parse_struct_decl()
        if self._at(T.KW_STATESET):
            return self.parse_stateset_decl()
        if self._at(T.KW_KEY):
            return self.parse_key_decl()
        return self.parse_fun(allow_body=True)

    def parse_interface(self) -> ast.InterfaceDecl:
        start = self._expect(T.KW_INTERFACE).span
        name = self._expect(T.IDENT).text
        self._expect(T.LBRACE)
        decls: List[ast.Decl] = []
        while not self._at(T.RBRACE):
            if self._at(T.KW_TYPE):
                decls.append(self.parse_type_decl())
            elif self._at(T.KW_VARIANT):
                decls.append(self.parse_variant_decl())
            elif self._at(T.KW_STRUCT):
                decls.append(self.parse_struct_decl())
            elif self._at(T.KW_STATESET):
                decls.append(self.parse_stateset_decl())
            elif self._at(T.KW_KEY):
                decls.append(self.parse_key_decl())
            else:
                decls.append(self.parse_fun(allow_body=False))
        self._expect(T.RBRACE)
        return ast.InterfaceDecl(self._span_from(start), name, decls)

    def parse_module(self) -> ast.ModuleDecl:
        start = self._peek().span
        is_extern = bool(self._accept(T.KW_EXTERN))
        self._expect(T.KW_MODULE)
        name = self._expect(T.IDENT).text
        iface = None
        if self._accept(T.COLON):
            iface = self._expect(T.IDENT).text
        decls: List[ast.Decl] = []
        if is_extern:
            self._expect(T.SEMI)
        else:
            self._expect(T.LBRACE)
            while not self._at(T.RBRACE):
                decls.append(self.parse_topdecl())
            self._expect(T.RBRACE)
        return ast.ModuleDecl(self._span_from(start), name, iface, decls, is_extern)

    def parse_type_decl(self) -> ast.TypeAliasDecl:
        start = self._expect(T.KW_TYPE).span
        name = self._expect(T.IDENT).text
        params = self.parse_type_params()
        rhs: Optional[ast.Type] = None
        if self._accept(T.ASSIGN):
            rhs = self.parse_type()
            # Function-type alias: ``= rettype Name(params) [effect]``
            if self._at(T.IDENT) and self._at(T.LPAREN, 1):
                fname = self._advance().text
                params_list = self.parse_params()
                effect = self.parse_effect_opt()
                rhs = ast.FunType(self._span_from(start), rhs, params_list,
                                  effect, fname)
        self._expect(T.SEMI)
        return ast.TypeAliasDecl(self._span_from(start), name, params, rhs)

    def parse_variant_decl(self) -> ast.VariantDecl:
        start = self._expect(T.KW_VARIANT).span
        name = self._expect(T.IDENT).text
        params = self.parse_type_params()
        self._expect(T.LBRACKET)
        ctors = [self.parse_ctor_decl()]
        while self._accept(T.PIPE):
            ctors.append(self.parse_ctor_decl())
        self._expect(T.RBRACKET)
        self._expect(T.SEMI)
        return ast.VariantDecl(self._span_from(start), name, params, ctors)

    def parse_ctor_decl(self) -> ast.CtorDecl:
        tok = self._expect(T.CTOR, "constructor name")
        args: List[ast.Type] = []
        keys: List[Tuple[str, Optional[ast.StateExpr]]] = []
        if self._accept(T.LPAREN):
            if not self._at(T.RPAREN):
                args.append(self.parse_type())
                while self._accept(T.COMMA):
                    args.append(self.parse_type())
            self._expect(T.RPAREN)
        if self._accept(T.LBRACE):
            while not self._at(T.RBRACE):
                kname = self._expect(T.IDENT).text
                kstate = None
                if self._accept(T.AT):
                    kstate = self.parse_state_expr()
                keys.append((kname, kstate))
                if not self._accept(T.COMMA):
                    break
            self._expect(T.RBRACE)
        return ast.CtorDecl(tok.span, tok.text, args, keys)

    def parse_struct_decl(self) -> ast.StructDecl:
        start = self._expect(T.KW_STRUCT).span
        name = self._expect(T.IDENT).text
        params = self.parse_type_params()
        self._expect(T.LBRACE)
        fields: List[ast.StructField] = []
        while not self._at(T.RBRACE):
            fstart = self._peek().span
            ftype = self.parse_type()
            fname = self._expect(T.IDENT).text
            self._expect(T.SEMI)
            fields.append(ast.StructField(self._span_from(fstart), ftype, fname))
        self._expect(T.RBRACE)
        self._accept(T.SEMI)
        return ast.StructDecl(self._span_from(start), name, params, fields)

    def parse_stateset_decl(self) -> ast.StateSetDecl:
        start = self._expect(T.KW_STATESET).span
        name = self._expect(T.IDENT).text
        self._expect(T.ASSIGN)
        self._expect(T.LBRACKET)
        states: List[str] = []
        order: List[Tuple[str, str]] = []

        def parse_chain() -> None:
            prev = self._expect(T.IDENT).text
            if prev not in states:
                states.append(prev)
            while self._accept(T.LT):
                nxt = self._expect(T.IDENT).text
                if nxt not in states:
                    states.append(nxt)
                order.append((prev, nxt))
                prev = nxt

        parse_chain()
        while self._accept(T.COMMA):
            parse_chain()
        self._expect(T.RBRACKET)
        self._expect(T.SEMI)
        return ast.StateSetDecl(self._span_from(start), name, states, order)

    def parse_key_decl(self) -> ast.KeyDecl:
        start = self._expect(T.KW_KEY).span
        name = self._expect(T.IDENT).text
        stateset = None
        initial = None
        if self._accept(T.AT):
            stateset = self._expect(T.IDENT).text
        if self._accept(T.ASSIGN):
            initial = self._expect(T.IDENT).text
        self._expect(T.SEMI)
        return ast.KeyDecl(self._span_from(start), name, stateset, initial)

    # -- functions -------------------------------------------------------------

    def parse_type_params(self) -> List[ast.TypeParam]:
        params: List[ast.TypeParam] = []
        if not self._at(T.LT):
            return params
        self._advance()
        while True:
            tok = self._peek()
            if tok.kind is T.KW_TYPE:
                self._advance()
                name = self._expect(T.IDENT).text
                params.append(ast.TypeParam(tok.span, "type", name))
            elif tok.kind is T.KW_KEY:
                self._advance()
                name = self._expect(T.IDENT).text
                params.append(ast.TypeParam(tok.span, "key", name))
            elif tok.kind is T.KW_STATE:
                self._advance()
                name = self._expect(T.IDENT).text
                params.append(ast.TypeParam(tok.span, "state", name))
            else:
                raise ParseError("expected 'type', 'key' or 'state' parameter",
                                 tok.span)
            if not self._accept(T.COMMA):
                break
        self._expect(T.GT)
        return params

    def parse_params(self) -> List[ast.Param]:
        self._expect(T.LPAREN)
        params: List[ast.Param] = []
        if not self._at(T.RPAREN):
            params.append(self.parse_param())
            while self._accept(T.COMMA):
                params.append(self.parse_param())
        self._expect(T.RPAREN)
        return params

    def parse_param(self) -> ast.Param:
        start = self._peek().span
        ptype = self.parse_type()
        name = None
        if self._at(T.IDENT):
            name = self._advance().text
        return ast.Param(self._span_from(start), ptype, name)

    def parse_fun(self, allow_body: bool) -> ast.Decl:
        start = self._peek().span
        ret = self.parse_type()
        name = self._expect(T.IDENT, "function name").text
        type_params = self.parse_type_params()
        params = self.parse_params()
        effect = self.parse_effect_opt()
        decl = ast.FunDecl(self._span_from(start), ret, name, params, effect,
                           type_params)
        if self._accept(T.SEMI):
            return decl
        if not allow_body:
            self._expect(T.SEMI)
        body = self.parse_block()
        return ast.FunDef(self._span_from(start), decl, body)

    # -- effect clauses ----------------------------------------------------------

    def parse_effect_opt(self) -> Optional[ast.EffectClause]:
        if not self._at(T.LBRACKET):
            return None
        start = self._advance().span
        items: List[ast.EffectItem] = []
        if not self._at(T.RBRACKET):
            items.append(self.parse_effect_item())
            while self._accept(T.COMMA):
                items.append(self.parse_effect_item())
        self._expect(T.RBRACKET)
        return ast.EffectClause(self._span_from(start), items)

    def parse_effect_item(self) -> ast.EffectItem:
        start = self._peek().span
        if self._accept(T.MINUS):
            key = self._expect(T.IDENT).text
            pre = self.parse_state_expr() if self._accept(T.AT) else None
            return ast.EffectItem(self._span_from(start), "consume", key, pre, None)
        if self._accept(T.PLUS):
            key = self._expect(T.IDENT).text
            post = self.parse_state_expr() if self._accept(T.AT) else None
            return ast.EffectItem(self._span_from(start), "produce", key, None, post)
        if self._accept(T.KW_NEW):
            key = self._expect(T.IDENT).text
            post = self.parse_state_expr() if self._accept(T.AT) else None
            return ast.EffectItem(self._span_from(start), "fresh", key, None, post)
        key = self._expect(T.IDENT).text
        pre = None
        post = None
        if self._accept(T.AT):
            pre = self.parse_state_expr()
            if self._accept(T.ARROW):
                post = self.parse_state_expr()
        return ast.EffectItem(self._span_from(start), "keep", key, pre, post)

    def parse_state_expr(self) -> ast.StateExpr:
        if self._at(T.LPAREN):
            start = self._advance().span
            var = self._expect(T.IDENT).text
            self._expect(T.LE)
            bound = self._expect(T.IDENT).text
            self._expect(T.RPAREN)
            return ast.StateBound(self._span_from(start), var, bound)
        return AST_POOL.state_ref(self._expect(T.IDENT, "state name"))

    # -- types ---------------------------------------------------------------------

    def parse_type(self) -> ast.Type:
        start = self._peek().span
        if self._at(T.KW_TRACKED):
            self._advance()
            key = None
            state = None
            if self._accept(T.LPAREN):
                if self._accept(T.AT):
                    state = self.parse_state_expr()
                else:
                    key = self._expect(T.IDENT).text
                    if self._accept(T.AT):
                        state = self.parse_state_expr()
                self._expect(T.RPAREN)
            inner = self.parse_type()
            return ast.TrackedType(self._span_from(start), key, inner, state)

        # Parenthesised guard: (IRQL @ (level<=APC_LEVEL)) : T
        if (self._at(T.LPAREN) and self._at(T.IDENT, 1) and self._at(T.AT, 2)):
            self._advance()
            key = self._expect(T.IDENT).text
            self._expect(T.AT)
            state = self.parse_state_expr()
            self._expect(T.RPAREN)
            self._expect(T.COLON)
            inner = self.parse_type()
            return ast.GuardedType(self._span_from(start), key, state, inner)

        base = self.parse_base_type()

        # Guard prefix: ``K : T`` or ``K@st : T`` (base must be a bare name).
        if isinstance(base, ast.NamedType) and not base.args:
            if self._at(T.COLON):
                self._advance()
                inner = self.parse_type()
                return ast.GuardedType(self._span_from(start), base.name,
                                       None, inner)
            if self._at(T.AT):
                save = self.pos
                self._advance()
                try:
                    state = self.parse_state_expr()
                except ParseError:
                    self.pos = save
                else:
                    if self._accept(T.COLON):
                        inner = self.parse_type()
                        return ast.GuardedType(self._span_from(start),
                                               base.name, state, inner)
                    self.pos = save

        # Array suffixes.
        while self._at(T.LBRACKET) and self._at(T.RBRACKET, 1):
            self._advance()
            self._advance()
            base = ast.ArrayType(self._span_from(start), base)
        return base

    def parse_base_type(self) -> ast.Type:
        tok = self._peek()
        if tok.kind in BASE_TYPE_TOKENS:
            self._advance()
            return AST_POOL.base_type(tok)
        if tok.kind is T.IDENT:
            self._advance()
            if self._at(T.LT):
                return ast.NamedType(tok.span, tok.text,
                                     self.parse_type_args())
            return AST_POOL.named_type(tok)
        raise ParseError(f"expected a type, found {tok.kind.value} {tok.text!r}",
                         tok.span)

    def parse_type_args(self) -> List[ast.TypeArg]:
        self._expect(T.LT)
        args = [self.parse_type_arg()]
        while self._accept(T.COMMA):
            args.append(self.parse_type_arg())
        self._expect(T.GT)
        return args

    def parse_type_arg(self) -> ast.TypeArg:
        start = self._peek().span
        ty = self.parse_type()
        name = ty.name if isinstance(ty, ast.NamedType) and not ty.args else None
        return ast.TypeArg(self._span_from(start), ty, name)

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self._expect(T.LBRACE).span
        stmts: List[ast.Stmt] = []
        toks = self.toks
        parse_stmt = self.parse_stmt
        while toks[self.pos].kind is not T.RBRACE:
            stmts.append(parse_stmt())
        self._expect(T.RBRACE)
        return ast.Block(self._span_from(start), stmts)

    def parse_stmt(self) -> ast.Stmt:
        tok = self.toks[self.pos]
        if tok.kind is T.LBRACE:
            return self.parse_block()
        if tok.kind is T.KW_IF:
            return self.parse_if()
        if tok.kind is T.KW_WHILE:
            return self.parse_while()
        if tok.kind is T.KW_SWITCH:
            return self.parse_switch()
        if tok.kind is T.KW_RETURN:
            self._advance()
            value = None if self._at(T.SEMI) else self.parse_expr()
            self._expect(T.SEMI)
            return ast.Return(self._span_from(tok.span), value)
        if tok.kind is T.KW_FREE:
            self._advance()
            self._expect(T.LPAREN)
            target = self.parse_expr()
            self._expect(T.RPAREN)
            self._expect(T.SEMI)
            return ast.Free(self._span_from(tok.span), target)
        if tok.kind is T.KW_BREAK:
            self._advance()
            self._expect(T.SEMI)
            return ast.Break(tok.span)
        if tok.kind is T.KW_CONTINUE:
            self._advance()
            self._expect(T.SEMI)
            return ast.Continue(tok.span)

        # Try a declaration (variable or nested function); fall back to
        # an expression statement.  Fast path for the dominant forms:
        # when the two-token prefix cannot start a declaration, the
        # speculative attempt below provably fails (and restores the
        # cursor), so skip straight to the expression parse and save
        # the raise/backtrack round trip per call/assignment statement.
        kind = tok.kind
        if kind in self._NEVER_DECL_START:
            return self.parse_expr_stmt()
        if kind is T.IDENT:
            toks = self.toks
            last = self._last
            i = self.pos + 1
            k1 = toks[i if i < last else last].kind
            if k1 in self._EXPR_AFTER_IDENT or (
                    k1 is T.LBRACKET
                    and toks[i + 1 if i + 1 < last else last].kind
                    is not T.RBRACKET):
                return self.parse_expr_stmt()
        decl = self._try_parse_decl_stmt()
        if decl is not None:
            return decl
        return self.parse_expr_stmt()

    #: statement-leading tokens that can never begin a declaration
    #: (``parse_type`` rejects them outright).
    _NEVER_DECL_START = frozenset({
        T.INT, T.FLOAT, T.STRING, T.CHAR, T.CTOR, T.KW_TRUE, T.KW_FALSE,
        T.KW_NULL, T.KW_NEW, T.MINUS, T.BANG, T.LBRACKET,
    })

    #: second tokens after a leading IDENT that rule out a declaration:
    #: ``parse_type`` yields the bare name and the declarator name is
    #: then missing.  ``<`` (type arguments), ``@``/``:`` (guards) and
    #: ``[`` (array suffix, handled separately) stay speculative.
    _EXPR_AFTER_IDENT = frozenset({
        T.ASSIGN, T.DOT, T.LPAREN, T.SEMI, T.PLUSEQ, T.MINUSEQ,
        T.PLUSPLUS, T.MINUSMINUS, T.PLUS, T.MINUS, T.STAR, T.SLASH,
        T.PERCENT, T.EQ, T.NE, T.GT, T.LE, T.GE, T.AMPAMP, T.PIPEPIPE,
    })

    def _try_parse_decl_stmt(self) -> Optional[ast.Stmt]:
        save = self.pos
        start = self._peek().span
        try:
            dtype = self.parse_type()
            name_tok = self._expect(T.IDENT)
        except ParseError:
            self.pos = save
            return None
        if self._at(T.LPAREN):
            # Nested function definition (Figure 7).
            try:
                params = self.parse_params()
                effect = self.parse_effect_opt()
                body = self.parse_block()
            except ParseError:
                self.pos = save
                return None
            decl = ast.FunDecl(self._span_from(start), dtype, name_tok.text,
                               params, effect, [])
            return ast.LocalFun(self._span_from(start),
                                ast.FunDef(self._span_from(start), decl, body))
        if self._accept(T.ASSIGN):
            init = self.parse_expr()
            self._expect(T.SEMI)
            return ast.VarDecl(self._span_from(start), dtype, name_tok.text, init)
        if self._accept(T.SEMI):
            return ast.VarDecl(self._span_from(start), dtype, name_tok.text, None)
        self.pos = save
        return None

    def parse_expr_stmt(self) -> ast.Stmt:
        toks = self.toks
        start = toks[self.pos].span
        expr = self.parse_expr()
        tok = toks[self.pos]
        kind = tok.kind
        if kind is T.ASSIGN or kind is T.PLUSEQ or kind is T.MINUSEQ:
            self.pos += 1
            value = self.parse_expr()
            if toks[self.pos].kind is T.SEMI:
                self.pos += 1
            else:
                self._expect(T.SEMI)
            return ast.Assign(self._span_from(start), expr, tok.text, value)
        if kind is T.PLUSPLUS or kind is T.MINUSMINUS:
            self.pos += 1
            if toks[self.pos].kind is T.SEMI:
                self.pos += 1
            else:
                self._expect(T.SEMI)
            return ast.IncDec(self._span_from(start), expr, tok.text)
        if kind is T.SEMI:
            self.pos += 1
        else:
            self._expect(T.SEMI)
        return ast.ExprStmt(self._span_from(start), expr)

    def parse_if(self) -> ast.If:
        start = self._expect(T.KW_IF).span
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        then = self.parse_stmt()
        orelse = None
        if self._accept(T.KW_ELSE):
            orelse = self.parse_stmt()
        return ast.If(self._span_from(start), cond, then, orelse)

    def parse_while(self) -> ast.While:
        start = self._expect(T.KW_WHILE).span
        self._expect(T.LPAREN)
        cond = self.parse_expr()
        self._expect(T.RPAREN)
        body = self.parse_stmt()
        return ast.While(self._span_from(start), cond, body)

    def parse_switch(self) -> ast.Switch:
        start = self._expect(T.KW_SWITCH).span
        self._expect(T.LPAREN)
        scrutinee = self.parse_expr()
        self._expect(T.RPAREN)
        self._expect(T.LBRACE)
        cases: List[ast.Case] = []
        while not self._at(T.RBRACE):
            cases.append(self.parse_case())
        self._expect(T.RBRACE)
        return ast.Switch(self._span_from(start), scrutinee, cases)

    def parse_case(self) -> ast.Case:
        start = self._peek().span
        if self._accept(T.KW_DEFAULT):
            self._expect(T.COLON)
            pattern = ast.Pattern(start, None, [])
        else:
            self._expect(T.KW_CASE)
            ctor = self._expect(T.CTOR, "constructor pattern").text
            binders: List[Optional[str]] = []
            if self._accept(T.LPAREN):
                while not self._at(T.RPAREN):
                    if self._accept(T.UNDERSCORE):
                        binders.append(None)
                    else:
                        binders.append(self._expect(T.IDENT).text)
                    if not self._accept(T.COMMA):
                        break
                self._expect(T.RPAREN)
            self._expect(T.COLON)
            pattern = ast.Pattern(self._span_from(start), ctor, binders)
        body: List[ast.Stmt] = []
        while not (self._at(T.KW_CASE) or self._at(T.KW_DEFAULT)
                   or self._at(T.RBRACE)):
            body.append(self.parse_stmt())
        return ast.Case(self._span_from(start), pattern, body)

    # -- expressions -------------------------------------------------------------

    #: binary operator precedence (all left-associative), replacing the
    #: or/and/equality/relational/additive/multiplicative cascade: the
    #: cascade cost six nested calls per operand even for plain
    #: identifiers, a measurable slice of whole-check time.
    _BIN_PREC = {
        T.PIPEPIPE: 1, T.AMPAMP: 2, T.EQ: 3, T.NE: 3,
        T.LT: 4, T.GT: 4, T.LE: 4, T.GE: 4,
        T.PLUS: 5, T.MINUS: 5, T.STAR: 6, T.SLASH: 6, T.PERCENT: 6,
    }

    def parse_expr(self) -> ast.Expr:
        return self._parse_binary(self.parse_unary(), 1)

    def _parse_binary(self, left: ast.Expr, min_prec: int) -> ast.Expr:
        """Precedence climbing over :data:`_BIN_PREC`."""
        prec_of = self._BIN_PREC.get
        toks = self.toks
        filename = self.filename
        while True:
            tok = toks[self.pos]
            prec = prec_of(tok.kind)
            if prec is None or prec < min_prec:
                return left
            self.pos += 1
            right = self.parse_unary()
            while True:
                nxt = prec_of(toks[self.pos].kind)
                if nxt is None or nxt <= prec:
                    break
                right = self._parse_binary(right, prec + 1)
            left = ast.Binary(Span(left.span.start, right.span.end,
                                   filename), tok.text, left, right)

    def parse_unary(self) -> ast.Expr:
        tok = self.toks[self.pos]
        kind = tok.kind
        if kind is T.BANG or kind is T.MINUS:
            self.pos += 1
            operand = self.parse_unary()
            return ast.Unary(Span(tok.span.start, operand.span.end,
                                  self.filename), tok.text, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        toks = self.toks
        # The dominant atoms — a name or an integer literal — are
        # recognised inline; everything else goes through the full
        # ``parse_primary`` dispatch.
        tok = toks[self.pos]
        kind = tok.kind
        if kind is T.IDENT:
            self.pos += 1
            expr = AST_POOL.name(tok)
        elif kind is T.INT:
            self.pos += 1
            expr = AST_POOL.int_lit(tok)
        else:
            expr = self.parse_primary()
        while True:
            kind = toks[self.pos].kind
            if kind is T.DOT:
                self.pos += 1
                ftok = toks[self.pos]
                if ftok.kind is T.IDENT:
                    self.pos += 1
                else:
                    ftok = self._expect(T.IDENT)
                expr = ast.FieldAccess(self._span_from(expr.span), expr,
                                       ftok.text)
            elif kind is T.LPAREN:
                self.pos += 1
                args: List[ast.Expr] = []
                if toks[self.pos].kind is not T.RPAREN:
                    args.append(self.parse_expr())
                    while toks[self.pos].kind is T.COMMA:
                        self.pos += 1
                        args.append(self.parse_expr())
                if toks[self.pos].kind is T.RPAREN:
                    self.pos += 1
                else:
                    self._expect(T.RPAREN)
                expr = ast.Call(self._span_from(expr.span), expr, args)
            elif kind is T.LBRACKET:
                self.pos += 1
                idx = self.parse_expr()
                self._expect(T.RBRACKET)
                expr = ast.Index(self._span_from(expr.span), expr, idx)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is T.INT:
            self._advance()
            return AST_POOL.int_lit(tok)
        if tok.kind is T.FLOAT:
            self._advance()
            return AST_POOL.float_lit(tok)
        if tok.kind is T.STRING:
            self._advance()
            return AST_POOL.string_lit(tok)
        if tok.kind is T.CHAR:
            self._advance()
            return AST_POOL.char_lit(tok)
        if tok.kind is T.KW_TRUE:
            self._advance()
            return AST_POOL.bool_lit(tok, True)
        if tok.kind is T.KW_FALSE:
            self._advance()
            return AST_POOL.bool_lit(tok, False)
        if tok.kind is T.KW_NULL:
            self._advance()
            return AST_POOL.null_lit(tok)
        if tok.kind is T.IDENT:
            self._advance()
            return AST_POOL.name(tok)
        if tok.kind is T.CTOR:
            return self.parse_ctor_app()
        if tok.kind is T.KW_NEW:
            return self.parse_new()
        if tok.kind is T.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(T.RPAREN)
            return inner
        if tok.kind is T.LBRACKET:
            self._advance()
            elems: List[ast.Expr] = []
            if not self._at(T.RBRACKET):
                elems.append(self.parse_expr())
                while self._accept(T.COMMA):
                    elems.append(self.parse_expr())
            close = self._expect(T.RBRACKET)
            return ast.ArrayLit(Span(tok.span.start, close.span.end,
                                     self.filename), elems)
        raise ParseError(
            f"expected an expression, found {tok.kind.value} {tok.text!r}",
            tok.span)

    def parse_ctor_app(self) -> ast.CtorApp:
        tok = self._expect(T.CTOR)
        args: List[ast.Expr] = []
        keys: List[str] = []
        if self._at(T.LPAREN):
            self._advance()
            if not self._at(T.RPAREN):
                args.append(self.parse_expr())
                while self._accept(T.COMMA):
                    args.append(self.parse_expr())
            self._expect(T.RPAREN)
        if self._at(T.LBRACE):
            self._advance()
            while not self._at(T.RBRACE):
                keys.append(self._expect(T.IDENT).text)
                if not self._accept(T.COMMA):
                    break
            self._expect(T.RBRACE)
        return ast.CtorApp(self._span_from(tok.span), tok.text, args, keys)

    def parse_new(self) -> ast.New:
        start = self._expect(T.KW_NEW).span
        region: Optional[ast.Expr] = None
        tracked = False
        if self._accept(T.LPAREN):
            region = self.parse_expr()
            self._expect(T.RPAREN)
        elif self._accept(T.KW_TRACKED):
            tracked = True
        ntype = self.parse_base_type()
        inits: List[ast.FieldInit] = []
        if self._accept(T.LBRACE):
            while not self._at(T.RBRACE):
                istart = self._peek().span
                fname = self._expect(T.IDENT).text
                self._expect(T.ASSIGN)
                value = self.parse_expr()
                self._expect(T.SEMI)
                inits.append(ast.FieldInit(self._span_from(istart), fname, value))
            self._expect(T.RBRACE)
        return ast.New(self._span_from(start), ntype, inits, tracked, region)


def parse_program(source: str, filename: str = "<input>",
                  first_line: int = 1, first_col: int = 1,
                  tokens: Optional[List[Token]] = None) -> ast.Program:
    """Parse a Vault compilation unit from source text.

    ``first_line``/``first_col`` place the text inside a larger unit,
    so that spans match a whole-unit parse; the incremental pipeline
    uses this to parse single declaration chunks in place.  ``tokens``
    supplies a pre-lexed stream for ``source`` (from the session's
    token cache or the incremental relexer) and skips lexing entirely;
    it must equal ``tokenize(source, filename, first_line, first_col)``.
    """
    tracer = current_tracer()
    if tracer.enabled:
        if tokens is None:
            with tracer.span("lex", filename=filename):
                tokens = tokenize(source, filename, first_line=first_line,
                                  first_col=first_col)
        with tracer.span("parse", filename=filename):
            return Parser(tokens, filename).parse_program()
    if tokens is None:
        tokens = tokenize(source, filename, first_line=first_line,
                          first_col=first_col)
    return Parser(tokens, filename).parse_program()


def parse_type(source: str, filename: str = "<type>") -> ast.Type:
    """Parse a single type (used by tests and the elaborator's tooling)."""
    parser = Parser(tokenize(source, filename), filename)
    ty = parser.parse_type()
    parser._expect(T.EOF)
    return ty


def parse_expr(source: str, filename: str = "<expr>") -> ast.Expr:
    """Parse a single expression."""
    parser = Parser(tokenize(source, filename), filename)
    expr = parser.parse_expr()
    parser._expect(T.EOF)
    return expr
