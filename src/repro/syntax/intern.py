"""Interned AST leaf pool.

The parser mints enormous numbers of identical leaf nodes — ``int`` base
types, parameter and variable :class:`~repro.syntax.ast.Name` nodes,
literals — and every reparse of a declaration whose header didn't change
rebuilds the same leaves at the same positions.  This pool mirrors the
elaborator's type-interning win for the identity-comparable AST leaves:
a leaf is keyed by ``(node class, token)`` — the token's value hash
covers kind, text and exact position — so repeated parses of unchanged
text at unchanged positions share one node object (and skip the
``int()``/``float()`` literal conversions and ``Span`` materialization
on every hit).

Sharing is safe because leaf nodes are immutable in practice: nothing
in the pipeline assigns to their fields (the ``_pl_*`` analysis memos
live on ``FunDef``/signature objects, never on leaves), and the key
pins the exact span, so a shared node is indistinguishable from a
fresh one.  The pool is process-global — nodes from different sessions
or files can only collide if class, kind, text, position *and*
filename all agree, in which case they are the same leaf.

On overflow the pool is simply cleared: correctness never depends on a
hit, and a cleared pool refills from the next parse.
"""

from __future__ import annotations

from . import ast
from .tokens import Token

#: entries kept before the pool is flushed (leaves are small; this is
#: a few MB at worst).
_CAPACITY = 1 << 16


class AstPool:
    """A process-wide intern table for hot AST leaf nodes."""

    __slots__ = ("_pool", "hits", "misses", "capacity")

    def __init__(self, capacity: int = _CAPACITY):
        self._pool = {}
        self.hits = 0
        self.misses = 0
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self._pool)

    def clear(self) -> None:
        self._pool.clear()

    def _insert(self, key, node):
        self.misses += 1
        pool = self._pool
        if len(pool) >= self.capacity:
            pool.clear()
        pool[key] = node
        return node

    # One small method per leaf shape: the payload conversion runs only
    # on a miss, and no per-call closure is allocated.

    def name(self, tok: Token) -> ast.Name:
        key = (ast.Name, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.Name(tok.span, tok.text))

    def int_lit(self, tok: Token) -> ast.IntLit:
        key = (ast.IntLit, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.IntLit(tok.span, int(tok.text, 0)))

    def float_lit(self, tok: Token) -> ast.FloatLit:
        key = (ast.FloatLit, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.FloatLit(tok.span, float(tok.text)))

    def string_lit(self, tok: Token) -> ast.StringLit:
        key = (ast.StringLit, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.StringLit(tok.span, tok.text))

    def char_lit(self, tok: Token) -> ast.CharLit:
        key = (ast.CharLit, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.CharLit(tok.span, tok.text))

    def bool_lit(self, tok: Token, value: bool) -> ast.BoolLit:
        key = (ast.BoolLit, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.BoolLit(tok.span, value))

    def null_lit(self, tok: Token) -> ast.NullLit:
        key = (ast.NullLit, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.NullLit(tok.span))

    def base_type(self, tok: Token) -> ast.BaseType:
        key = (ast.BaseType, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.BaseType(tok.span, tok.text))

    def named_type(self, tok: Token) -> ast.NamedType:
        """A bare (argument-free) named type; parameterized uses are
        built fresh — their argument lists are per-parse objects."""
        key = (ast.NamedType, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.NamedType(tok.span, tok.text, []))

    def state_ref(self, tok: Token) -> ast.StateRef:
        key = (ast.StateRef, tok)
        node = self._pool.get(key)
        if node is not None:
            self.hits += 1
            return node
        return self._insert(key, ast.StateRef(tok.span, tok.text))


#: the process-wide pool the parser uses.
AST_POOL = AstPool()
