"""Surface syntax for the Vault language: lexer, AST, parser, printer."""

from . import ast
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expr, parse_program, parse_type
from .pretty import pretty
from .tokens import T, Token

__all__ = [
    "Lexer",
    "Parser",
    "T",
    "Token",
    "ast",
    "parse_expr",
    "parse_program",
    "parse_type",
    "pretty",
    "tokenize",
]
