"""Surface syntax for the Vault language: lexer, AST, parser, printer."""

from . import ast
from .intern import AST_POOL, AstPool
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expr, parse_program, parse_type
from .pretty import pretty
from .relex import RelexResult, relex
from .tokens import T, Token

__all__ = [
    "AST_POOL",
    "AstPool",
    "Lexer",
    "Parser",
    "RelexResult",
    "T",
    "Token",
    "ast",
    "parse_expr",
    "parse_program",
    "parse_type",
    "pretty",
    "relex",
    "tokenize",
]
