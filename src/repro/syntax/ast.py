"""Abstract syntax for the Vault surface language.

The node classes mirror the constructs the paper uses:

* declarations — ``interface``, ``module``, ``extern module``, ``type``
  aliases and abstract types, ``variant`` declarations with key-capturing
  constructors, ``struct``, ``stateset`` partial orders, global ``key``
  declarations, and function declarations/definitions with effect
  clauses;
* types — base types, named (possibly parameterized) types,
  ``tracked(K) T`` / anonymous ``tracked T``, guarded types ``K@st : T``,
  arrays, and function types (for completion routines, §4.3);
* effect clauses — ``[K@a->b]``, ``[-K@a]``, ``[+K@b]``, ``[new K@b]``,
  with states that may be names, variables, or bounded variables
  ``(level <= DISPATCH_LEVEL)``;
* statements and expressions — C-like, plus ``switch`` pattern matching
  over variants, ``free``, ``new``/``new(region)``/``new tracked``
  allocation, and constructor application ``'Name(args){keys}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..diagnostics import Span


@dataclass
class Node:
    span: Span


# ---------------------------------------------------------------------------
# States (as they appear in guards and effect clauses)
# ---------------------------------------------------------------------------

@dataclass
class StateRef(Node):
    """A reference to a key state: a concrete state name or a state variable.

    The parser cannot distinguish state names from state variables; the
    elaborator resolves them against ``stateset`` declarations.
    """
    name: str


@dataclass
class StateBound(Node):
    """A bounded state variable, ``(var <= BOUND)`` (§4.4)."""
    var: str
    bound: str


StateExpr = Union[StateRef, StateBound]


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

@dataclass
class Type(Node):
    pass


@dataclass
class BaseType(Type):
    name: str  # void, int, bool, byte, float, string, char


@dataclass
class NamedType(Type):
    """A use of a declared type: ``FILE``, ``opt_key<K>``, ``KIRQL<level>``.

    ``args`` holds type arguments; key and state arguments appear as
    :class:`NamedType` with a bare name and are disambiguated during
    elaboration against the declaration's parameter kinds.
    """
    name: str
    args: List["TypeArg"] = field(default_factory=list)


@dataclass
class TypeArg(Node):
    """An argument in ``<...>``: a type, or a bare key/state name."""
    type: Optional[Type] = None
    name: Optional[str] = None          # key or state argument
    state: Optional[StateExpr] = None   # explicit @state on a key argument


@dataclass
class ArrayType(Type):
    elem: Type


@dataclass
class TrackedType(Type):
    """``tracked(K) T``, ``tracked(K@st) T``, ``tracked(@st) T`` or ``tracked T``.

    ``key`` is ``None`` for anonymous tracked types (existentials).
    ``state`` is the optional initial/required state annotation.
    """
    key: Optional[str]
    inner: Type
    state: Optional[StateExpr] = None


@dataclass
class GuardedType(Type):
    """``K : T``, ``K@st : T`` or ``(IRQL @ (lvl<=APC_LEVEL)) : T``."""
    key: str
    state: Optional[StateExpr]
    inner: Type


@dataclass
class FunType(Type):
    """A function type, used in type aliases (completion routines, §4.3)."""
    ret: Type
    params: List["Param"]
    effect: Optional["EffectClause"]
    name: Optional[str] = None   # the dummy name in the paper's syntax


# ---------------------------------------------------------------------------
# Effect clauses
# ---------------------------------------------------------------------------

@dataclass
class EffectItem(Node):
    """One item of an effect clause.

    ``mode`` is one of:

    * ``"keep"``    — ``K@a->b`` / ``K@a`` (held before and after);
    * ``"consume"`` — ``-K@a`` (held before, gone after);
    * ``"produce"`` — ``+K@b`` (absent before, held after);
    * ``"fresh"``   — ``new K@b`` (fresh key held after).
    """
    mode: str
    key: str
    pre: Optional[StateExpr] = None
    post: Optional[StateExpr] = None


@dataclass
class EffectClause(Node):
    items: List[EffectItem] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Decl(Node):
    pass


@dataclass
class TypeParam(Node):
    """``type T``, ``key K`` or ``state S`` inside ``<...>`` of a declaration."""
    kind: str  # "type" | "key" | "state"
    name: str


@dataclass
class Param(Node):
    type: Type
    name: Optional[str]


@dataclass
class FunDecl(Decl):
    """A function signature (prototype); also used inside interfaces."""
    ret: Type
    name: str
    params: List[Param]
    effect: Optional[EffectClause]
    type_params: List[TypeParam] = field(default_factory=list)


@dataclass
class FunDef(Decl):
    """A function definition with a body; may be nested (Figure 7)."""
    decl: FunDecl
    body: "Block"


@dataclass
class TypeAliasDecl(Decl):
    """``type name<params> = type;`` — ``rhs`` is ``None`` for abstract types."""
    name: str
    params: List[TypeParam]
    rhs: Optional[Type]


@dataclass
class CtorDecl(Node):
    """A variant constructor: ``'Name(arg-types){key-attachments}``."""
    name: str
    args: List[Type] = field(default_factory=list)
    keys: List[Tuple[str, Optional[StateExpr]]] = field(default_factory=list)


@dataclass
class VariantDecl(Decl):
    name: str
    params: List[TypeParam]
    ctors: List[CtorDecl]


@dataclass
class StructField(Node):
    type: Type
    name: str


@dataclass
class StructDecl(Decl):
    name: str
    params: List[TypeParam]
    fields: List[StructField]


@dataclass
class StateSetDecl(Decl):
    """``stateset NAME = [ a < b < c ];`` — states with a partial order.

    ``order`` lists the declared ``<`` edges; states not related by any
    edge are incomparable.
    """
    name: str
    states: List[str]
    order: List[Tuple[str, str]]


@dataclass
class KeyDecl(Decl):
    """``key NAME @ STATESET;`` — a statically-declared (global) key (§4.4)."""
    name: str
    stateset: Optional[str]
    initial: Optional[str] = None


@dataclass
class InterfaceDecl(Decl):
    name: str
    decls: List[Decl]


@dataclass
class ModuleDecl(Decl):
    """``module Name : IFACE { ... }`` or ``extern module Name : IFACE;``."""
    name: str
    interface: Optional[str]
    decls: List[Decl]
    is_extern: bool = False


@dataclass
class Program(Node):
    decls: List[Decl]
    filename: str = "<input>"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt]


@dataclass
class VarDecl(Stmt):
    type: Type
    name: str
    init: Optional["Expr"]


@dataclass
class LocalFun(Stmt):
    """A nested function definition (the paper's ``RegainIrp``, Figure 7)."""
    fundef: FunDef


@dataclass
class ExprStmt(Stmt):
    expr: "Expr"


@dataclass
class Assign(Stmt):
    target: "Expr"
    op: str          # "=", "+=", "-="
    value: "Expr"


@dataclass
class IncDec(Stmt):
    target: "Expr"
    op: str          # "++" or "--"


@dataclass
class If(Stmt):
    cond: "Expr"
    then: Stmt
    orelse: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: "Expr"
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional["Expr"]


@dataclass
class Free(Stmt):
    target: "Expr"


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Pattern(Node):
    """A switch pattern: ``'Ctor``, ``'Ctor(x, _, y)`` or ``default``."""
    ctor: Optional[str]                 # None for default
    binders: List[Optional[str]] = field(default_factory=list)


@dataclass
class Case(Node):
    pattern: Pattern
    body: List[Stmt]


@dataclass
class Switch(Stmt):
    scrutinee: "Expr"
    cases: List[Case]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class CharLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    ident: str


@dataclass
class FieldAccess(Expr):
    obj: Expr
    field: str


@dataclass
class Index(Expr):
    obj: Expr
    index: Expr


@dataclass
class Call(Expr):
    """``f(args)`` or ``Module.f(args)`` (``fn`` is Name or FieldAccess)."""
    fn: Expr
    args: List[Expr]


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class CtorApp(Expr):
    """Constructor application: ``'Name``, ``'Name(args)``, ``'Name{K}``,
    ``'Name(args){K}``."""
    name: str
    args: List[Expr] = field(default_factory=list)
    keys: List[str] = field(default_factory=list)


@dataclass
class FieldInit(Node):
    name: str
    value: Expr


@dataclass
class New(Expr):
    """Allocation:

    * ``new tracked T {inits}``  — fresh tracked heap object (``tracked=True``)
    * ``new(rgn) T {inits}``     — region allocation (``region`` set)
    * ``new T {inits}``          — plain struct value
    """
    type: Type
    inits: List[FieldInit]
    tracked: bool = False
    region: Optional[Expr] = None


@dataclass
class ArrayLit(Expr):
    elems: List[Expr]
