"""Token definitions for the Vault surface language.

The surface syntax is "based on the C programming language" (paper §2.1)
with Vault's extensions: ``tracked`` types, key guards ``K@state : T``,
effect clauses ``[K@a->b]``, ``variant`` declarations with constructor
names written ``'Name``, ``stateset`` partial orders and ``key``
declarations (§4.4), and ``interface`` / ``module`` units.
"""

from __future__ import annotations

import enum

from ..diagnostics import Pos, Span


class T(enum.Enum):
    """Token kinds."""

    # literals and names
    IDENT = "identifier"
    CTOR = "constructor"          # 'Name
    INT = "int literal"
    FLOAT = "float literal"
    STRING = "string literal"
    CHAR = "char literal"

    # keywords
    KW_INTERFACE = "interface"
    KW_MODULE = "module"
    KW_EXTERN = "extern"
    KW_TYPE = "type"
    KW_VARIANT = "variant"
    KW_STRUCT = "struct"
    KW_TRACKED = "tracked"
    KW_KEY = "key"
    KW_STATE = "state"
    KW_STATESET = "stateset"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_FREE = "free"
    KW_NEW = "new"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_VOID = "void"
    KW_INT = "int"
    KW_BOOL = "bool"
    KW_BYTE = "byte"
    KW_FLOAT = "float"
    KW_STRING = "string"
    KW_CHAR = "char"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_NULL = "null"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    AT = "@"
    QUESTION = "?"
    ASSIGN = "="
    ARROW = "->"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    BANG = "!"
    AMPAMP = "&&"
    PIPEPIPE = "||"
    PIPE = "|"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    PLUSEQ = "+="
    MINUSEQ = "-="
    UNDERSCORE = "_"

    EOF = "end of input"


KEYWORDS = {
    "interface": T.KW_INTERFACE,
    "module": T.KW_MODULE,
    "extern": T.KW_EXTERN,
    "type": T.KW_TYPE,
    "variant": T.KW_VARIANT,
    "struct": T.KW_STRUCT,
    "tracked": T.KW_TRACKED,
    "key": T.KW_KEY,
    "state": T.KW_STATE,
    "stateset": T.KW_STATESET,
    "switch": T.KW_SWITCH,
    "case": T.KW_CASE,
    "default": T.KW_DEFAULT,
    "if": T.KW_IF,
    "else": T.KW_ELSE,
    "while": T.KW_WHILE,
    "do": T.KW_DO,
    "for": T.KW_FOR,
    "return": T.KW_RETURN,
    "free": T.KW_FREE,
    "new": T.KW_NEW,
    "break": T.KW_BREAK,
    "continue": T.KW_CONTINUE,
    "void": T.KW_VOID,
    "int": T.KW_INT,
    "bool": T.KW_BOOL,
    "byte": T.KW_BYTE,
    "float": T.KW_FLOAT,
    "string": T.KW_STRING,
    "char": T.KW_CHAR,
    "true": T.KW_TRUE,
    "false": T.KW_FALSE,
    "null": T.KW_NULL,
}

#: Base-type keywords, used by the parser's type recogniser.
BASE_TYPE_TOKENS = {
    T.KW_VOID, T.KW_INT, T.KW_BOOL, T.KW_BYTE,
    T.KW_FLOAT, T.KW_STRING, T.KW_CHAR,
}


class Token:
    """One lexed token.  A plain ``__slots__`` class (not a dataclass):
    the lexer mints one per token on the hot path of every check, and a
    frozen dataclass pays ``object.__setattr__`` per field.

    Positions are stored as **scalars** (line / start and end column /
    start and end byte offset) and the :class:`~repro.diagnostics.Span`
    is materialized lazily on first access: most tokens — punctuation,
    operators, keywords consumed by ``_expect`` — never have their span
    read, so the two ``Pos`` and one ``Span`` allocations per token the
    old representation paid are skipped entirely on the hot path.  A
    token never contains a newline, so one ``line`` field covers both
    ends.  Tokens are immutable by convention; the incremental relexer
    (:mod:`repro.syntax.relex`) shares them between token streams.
    """

    __slots__ = ("kind", "text", "line", "col", "end_col",
                 "offset", "end_offset", "filename", "_span", "_hash")

    def __init__(self, kind: T, text: str, line: int = 0, col: int = 0,
                 end_col: int = 0, offset: int = 0, end_offset: int = 0,
                 filename: str = "<input>"):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col
        self.end_col = end_col
        self.offset = offset
        self.end_offset = end_offset
        self.filename = filename
        self._span = None
        self._hash = None

    @property
    def span(self) -> Span:
        span = self._span
        if span is None:
            span = Span(Pos(self.line, self.col, self.offset),
                        Pos(self.line, self.end_col, self.end_offset),
                        self.filename)
            self._span = span
        return span

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind is other.kind and self.text == other.text
                and self.line == other.line and self.col == other.col
                and self.end_col == other.end_col
                and self.offset == other.offset
                and self.end_offset == other.end_offset
                and self.filename == other.filename)

    def __hash__(self) -> int:
        # Cached: tokens are immutable by convention and the intern
        # pool (repro.syntax.intern) hashes each one on every lookup.
        h = self._hash
        if h is None:
            h = hash((self.kind, self.text, self.line, self.col,
                      self.end_col, self.offset, self.end_offset,
                      self.filename))
            self._hash = h
        return h

    def __repr__(self) -> str:
        return f"Token(kind={self.kind!r}, text={self.text!r}, span={self.span!r})"

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"
