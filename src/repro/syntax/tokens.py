"""Token definitions for the Vault surface language.

The surface syntax is "based on the C programming language" (paper §2.1)
with Vault's extensions: ``tracked`` types, key guards ``K@state : T``,
effect clauses ``[K@a->b]``, ``variant`` declarations with constructor
names written ``'Name``, ``stateset`` partial orders and ``key``
declarations (§4.4), and ``interface`` / ``module`` units.
"""

from __future__ import annotations

import enum

from ..diagnostics import Span


class T(enum.Enum):
    """Token kinds."""

    # literals and names
    IDENT = "identifier"
    CTOR = "constructor"          # 'Name
    INT = "int literal"
    FLOAT = "float literal"
    STRING = "string literal"
    CHAR = "char literal"

    # keywords
    KW_INTERFACE = "interface"
    KW_MODULE = "module"
    KW_EXTERN = "extern"
    KW_TYPE = "type"
    KW_VARIANT = "variant"
    KW_STRUCT = "struct"
    KW_TRACKED = "tracked"
    KW_KEY = "key"
    KW_STATE = "state"
    KW_STATESET = "stateset"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_FREE = "free"
    KW_NEW = "new"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_VOID = "void"
    KW_INT = "int"
    KW_BOOL = "bool"
    KW_BYTE = "byte"
    KW_FLOAT = "float"
    KW_STRING = "string"
    KW_CHAR = "char"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_NULL = "null"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    AT = "@"
    QUESTION = "?"
    ASSIGN = "="
    ARROW = "->"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    BANG = "!"
    AMPAMP = "&&"
    PIPEPIPE = "||"
    PIPE = "|"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    PLUSEQ = "+="
    MINUSEQ = "-="
    UNDERSCORE = "_"

    EOF = "end of input"


KEYWORDS = {
    "interface": T.KW_INTERFACE,
    "module": T.KW_MODULE,
    "extern": T.KW_EXTERN,
    "type": T.KW_TYPE,
    "variant": T.KW_VARIANT,
    "struct": T.KW_STRUCT,
    "tracked": T.KW_TRACKED,
    "key": T.KW_KEY,
    "state": T.KW_STATE,
    "stateset": T.KW_STATESET,
    "switch": T.KW_SWITCH,
    "case": T.KW_CASE,
    "default": T.KW_DEFAULT,
    "if": T.KW_IF,
    "else": T.KW_ELSE,
    "while": T.KW_WHILE,
    "do": T.KW_DO,
    "for": T.KW_FOR,
    "return": T.KW_RETURN,
    "free": T.KW_FREE,
    "new": T.KW_NEW,
    "break": T.KW_BREAK,
    "continue": T.KW_CONTINUE,
    "void": T.KW_VOID,
    "int": T.KW_INT,
    "bool": T.KW_BOOL,
    "byte": T.KW_BYTE,
    "float": T.KW_FLOAT,
    "string": T.KW_STRING,
    "char": T.KW_CHAR,
    "true": T.KW_TRUE,
    "false": T.KW_FALSE,
    "null": T.KW_NULL,
}

#: Base-type keywords, used by the parser's type recogniser.
BASE_TYPE_TOKENS = {
    T.KW_VOID, T.KW_INT, T.KW_BOOL, T.KW_BYTE,
    T.KW_FLOAT, T.KW_STRING, T.KW_CHAR,
}


class Token:
    """One lexed token.  A plain ``__slots__`` class (not a dataclass):
    the lexer mints one per token on the hot path of every check, and a
    frozen dataclass pays ``object.__setattr__`` per field."""

    __slots__ = ("kind", "text", "span")

    def __init__(self, kind: T, text: str, span: Span):
        self.kind = kind
        self.text = text
        self.span = span

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind is other.kind and self.text == other.text
                and self.span == other.span)

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.span))

    def __repr__(self) -> str:
        return f"Token(kind={self.kind!r}, text={self.text!r}, span={self.span!r})"

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"
