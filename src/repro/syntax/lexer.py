"""Lexer for the Vault surface language.

C-style tokens plus Vault's additions: constructor names ``'Name``
(a tick immediately followed by an identifier), ``@`` for key states,
and ``->`` inside effect clauses.  Comments are C-style ``//`` and
``/* ... */``.

The scanner is a single compiled master regular expression driven by
:func:`re.Pattern.match`; line/column information is tracked
incrementally (no token's text spans a line, so only trivia advances
the line counter).  This replaces the original character-at-a-time
cursor, which dominated whole-pipeline check time (every
``check_source`` call lexes the entire compilation unit before the
flow analysis even starts).

Tokens carry their positions as scalars and materialize
:class:`~repro.diagnostics.Span` objects lazily (see
:class:`~repro.syntax.tokens.Token`), so the hot loop below performs
exactly one allocation per token.
"""

from __future__ import annotations

import re
from typing import List

from ..diagnostics import LexError, Pos, Span
from .tokens import KEYWORDS, T, Token

_SIMPLE = {
    "(": T.LPAREN, ")": T.RPAREN, "{": T.LBRACE, "}": T.RBRACE,
    "[": T.LBRACKET, "]": T.RBRACKET, ";": T.SEMI, ",": T.COMMA,
    ".": T.DOT, ":": T.COLON, "@": T.AT, "?": T.QUESTION, "%": T.PERCENT,
    "*": T.STAR, "|": T.PIPE,
}

_OPERATORS2 = {
    "->": T.ARROW, "&&": T.AMPAMP, "||": T.PIPEPIPE, "==": T.EQ,
    "!=": T.NE, "<=": T.LE, ">=": T.GE, "++": T.PLUSPLUS,
    "--": T.MINUSMINUS, "+=": T.PLUSEQ, "-=": T.MINUSEQ,
}

_OPERATORS1 = dict(_SIMPLE)
_OPERATORS1.update({"=": T.ASSIGN, "+": T.PLUS, "-": T.MINUS,
                    "/": T.SLASH, "!": T.BANG, "<": T.LT, ">": T.GT})

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"'}

#: One master pattern; alternative order resolves ambiguities the same
#: way the original cursor did (trivia first, two-char operators before
#: their one-char prefixes, hex before decimal).  The branch taken is
#: recovered via ``Match.lastindex`` (an int compare) rather than
#: ``lastgroup``; the group numbers are pinned by the constants below.
_MASTER = re.compile(
    r"""
    (?P<TRIVIA>(?:[ \t\r\n]+|//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/)+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<NUMBER>0[xX][0-9a-fA-F]*|\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<STRING>"(?:[^"\\\n]|\\[\s\S])*")
  | (?P<OP2>->|&&|\|\||==|!=|<=|>=|\+\+|--|\+=|-=)
  | (?P<OP1>[()\{\}\[\];,.:@?%*|=+\-/!<>])
    """,
    re.VERBOSE,
)

_G_TRIVIA = _MASTER.groupindex["TRIVIA"]
_G_IDENT = _MASTER.groupindex["IDENT"]
_G_NUMBER = _MASTER.groupindex["NUMBER"]
_G_STRING = _MASTER.groupindex["STRING"]
_G_OP2 = _MASTER.groupindex["OP2"]
_G_OP1 = _MASTER.groupindex["OP1"]

_IDENT_CHARS = re.compile(r"[A-Za-z0-9_]*")

_FLOAT_MARK = re.compile(r"[.eE]")

#: identifier-shaped texts resolve through one dict: keywords map to
#: their keyword kind, ``_`` to UNDERSCORE, everything else to IDENT.
_IDENT_KINDS = dict(KEYWORDS)
_IDENT_KINDS["_"] = T.UNDERSCORE


def _tokenize(source: str, filename: str, first_line: int = 1,
              first_col: int = 1) -> List[Token]:
    tokens: List[Token] = []
    append = tokens.append
    match = _MASTER.match
    n = len(source)
    i = 0
    # Line tracking is incremental: no token's text contains a newline
    # (strings reject them, block comments are trivia), so each token
    # starts and ends on the current line and only trivia advances it.
    # ``first_line``/``first_col`` seed the tracker, letting a caller
    # lex a slice of a larger unit with in-place spans (columns are
    # computed as ``offset - line_start + 1``, so a negative initial
    # ``line_start`` shifts the first line's columns).
    line = first_line
    line_start = 1 - first_col
    ident_kind = _IDENT_KINDS.get
    while i < n:
        m = match(source, i)
        if m is None:
            ch = source[i]
            start = Pos(line, i - line_start + 1, i)
            if ch == '"':
                raise LexError("unterminated string literal",
                               Span(start, start, filename))
            if ch == "'":
                i = _lex_tick(source, i, filename, line, line_start, append)
                continue
            raise LexError(f"unexpected character {ch!r}",
                           Span.point(start.line, start.col, filename))
        group = m.lastindex
        end = m.end()
        if group == _G_TRIVIA:
            # Count newlines on the source directly — materializing the
            # trivia text would be one string allocation per gap.
            nl = source.count("\n", i, end)
            if nl:
                line += nl
                line_start = source.rfind("\n", i, end) + 1
            i = end
            continue
        text = m.group()
        if group == _G_IDENT:
            tok_kind = ident_kind(text, T.IDENT)
        elif group == _G_OP1:
            # A bare "/" followed by "*" is an unterminated block
            # comment: terminated ones were consumed by TRIVIA above.
            if text == "/" and end < n and source[end] == "*":
                start = Pos(line, i - line_start + 1, i)
                raise LexError("unterminated block comment",
                               Span(start, start, filename))
            tok_kind = _OPERATORS1[text]
        elif group == _G_NUMBER:
            if text[0] == "0" and len(text) > 1 and (text[1] == "x"
                                                     or text[1] == "X"):
                tok_kind = T.INT
            else:
                tok_kind = T.FLOAT if _FLOAT_MARK.search(text) else T.INT
        elif group == _G_OP2:
            tok_kind = _OPERATORS2[text]
        else:
            tok_kind = T.STRING
            body = text[1:-1]
            if "\\" in body:
                out: List[str] = []
                j = 0
                while j < len(body):
                    c = body[j]
                    if c == "\\":
                        j += 1
                        esc = body[j]
                        out.append(_ESCAPES.get(esc, esc))
                    else:
                        out.append(c)
                    j += 1
                text = "".join(out)
            else:
                text = body
        append(Token(tok_kind, text, line, i - line_start + 1,
                     end - line_start + 1, i, end, filename))
        i = end
    append(Token(T.EOF, "", line, n - line_start + 1, n - line_start + 1,
                 n, n, filename))
    return tokens


def _lex_tick(source: str, i: int, filename: str, line: int,
              line_start: int, append) -> int:
    """Scan a tick-introduced token: ``'Name`` constructors and
    ``'x'`` / ``'{'`` character literals (same rules as the original
    cursor lexer)."""
    col = i - line_start + 1
    j = i + 1
    n = len(source)
    head = source[j] if j < n else ""
    if not (head.isalpha() or head == "_"):
        # A tick, one character and a closing tick is a char literal.
        if head and j + 1 < n and source[j + 1] == "'":
            append(Token(T.CHAR, head, line, col, j + 3 - line_start,
                         i, j + 2, filename))
            return j + 2
        raise LexError("expected constructor name after '",
                       Span.point(line, j - line_start + 1, filename))
    m = _IDENT_CHARS.match(source, j)
    end = m.end()
    # 'x' style char literal: single letter followed by a closing tick.
    if end - j == 1 and end < n and source[end] == "'":
        append(Token(T.CHAR, source[j], line, col, end + 2 - line_start,
                     i, end + 1, filename))
        return end + 1
    append(Token(T.CTOR, source[j:end], line, col, end - line_start + 1,
                 i, end, filename))
    return end


class Lexer:
    """Converts Vault source text into a token stream.

    Kept for API compatibility; :meth:`tokenize` is the fast path and
    :meth:`next_token` serves the same stream one token at a time.
    """

    def __init__(self, source: str, filename: str = "<input>"):
        self.src = source
        self.filename = filename
        self._tokens: List[Token] = []
        self._cursor = 0

    def tokenize(self) -> List[Token]:
        if not self._tokens:
            self._tokens = _tokenize(self.src, self.filename)
        return self._tokens

    def next_token(self) -> Token:
        """The next token in the stream.

        Contract: the terminating EOF token is served exactly **once**;
        calling ``next_token`` again after EOF raises :class:`LexError`
        instead of silently re-serving it (the old ``min()`` clamp made
        an off-by-one loop spin forever on a soft EOF).
        """
        toks = self.tokenize()
        if self._cursor >= len(toks):
            raise LexError("next_token called past end of input",
                           toks[-1].span)
        tok = toks[self._cursor]
        self._cursor += 1
        return tok


def tokenize(source: str, filename: str = "<input>", first_line: int = 1,
             first_col: int = 1) -> List[Token]:
    """Tokenize Vault source, returning a list ending with an EOF token."""
    return _tokenize(source, filename, first_line, first_col)
