"""Hand-written lexer for the Vault surface language.

C-style tokens plus Vault's additions: constructor names ``'Name``
(a tick immediately followed by an identifier), ``@`` for key states,
and ``->`` inside effect clauses.  Comments are C-style ``//`` and
``/* ... */``.
"""

from __future__ import annotations

from typing import List

from ..diagnostics import LexError, Pos, Span
from .tokens import KEYWORDS, T, Token

_SIMPLE = {
    "(": T.LPAREN, ")": T.RPAREN, "{": T.LBRACE, "}": T.RBRACE,
    "[": T.LBRACKET, "]": T.RBRACKET, ";": T.SEMI, ",": T.COMMA,
    ".": T.DOT, ":": T.COLON, "@": T.AT, "?": T.QUESTION, "%": T.PERCENT,
    "*": T.STAR, "|": T.PIPE,
}


class Lexer:
    """Converts Vault source text into a token stream."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else ""

    def _advance(self) -> str:
        ch = self.src[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _here(self) -> Pos:
        return Pos(self.line, self.col, self.pos)

    def _span(self, start: Pos) -> Span:
        return Span(start, self._here(), self.filename)

    def _error(self, message: str) -> LexError:
        return LexError(message, Span.point(self.line, self.col, self.filename))

    # -- token scanning -----------------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._here()
                self._advance()
                self._advance()
                while True:
                    if self.pos >= len(self.src):
                        raise LexError("unterminated block comment",
                                       Span(start, start, self.filename))
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _lex_ident(self, start: Pos) -> Token:
        begin = self.pos
        while self.pos < len(self.src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.src[begin:self.pos]
        if text == "_":
            return Token(T.UNDERSCORE, text, self._span(start))
        kind = KEYWORDS.get(text, T.IDENT)
        return Token(kind, text, self._span(start))

    def _lex_number(self, start: Pos) -> Token:
        begin = self.pos
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token(T.INT, self.src[begin:self.pos], self._span(start))
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) and self._peek(1) in "+-"
                    and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        kind = T.FLOAT if is_float else T.INT
        return Token(kind, self.src[begin:self.pos], self._span(start))

    def _lex_string(self, start: Pos) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.src) or self._peek() == "\n":
                raise LexError("unterminated string literal",
                               Span(start, start, self.filename))
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                if self.pos >= len(self.src):
                    raise LexError("unterminated string literal",
                                   Span(start, start, self.filename))
                esc = self._advance()
                chars.append({"n": "\n", "t": "\t", "r": "\r",
                              "0": "\0", "\\": "\\", '"': '"'}.get(esc, esc))
            else:
                chars.append(ch)
        return Token(T.STRING, "".join(chars), self._span(start))

    def _lex_ctor(self, start: Pos) -> Token:
        self._advance()  # the tick
        if not (self._peek().isalpha() or self._peek() == "_"):
            # A tick followed by one char and a closing tick is a char literal.
            if self._peek() and self._peek(1) == "'":
                ch = self._advance()
                self._advance()
                return Token(T.CHAR, ch, self._span(start))
            raise self._error("expected constructor name after '")
        begin = self.pos
        while self.pos < len(self.src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        # 'x' style char literal: single letter followed by a closing tick
        if self.pos - begin == 1 and self._peek() == "'":
            ch = self.src[begin]
            self._advance()
            return Token(T.CHAR, ch, self._span(start))
        return Token(T.CTOR, self.src[begin:self.pos], self._span(start))

    def _lex_operator(self, start: Pos) -> Token:
        two = self.src[self.pos:self.pos + 2]
        table2 = {
            "->": T.ARROW, "&&": T.AMPAMP, "||": T.PIPEPIPE, "==": T.EQ,
            "!=": T.NE, "<=": T.LE, ">=": T.GE, "++": T.PLUSPLUS,
            "--": T.MINUSMINUS, "+=": T.PLUSEQ, "-=": T.MINUSEQ,
        }
        if two in table2:
            self._advance()
            self._advance()
            return Token(table2[two], two, self._span(start))
        ch = self._peek()
        table1 = dict(_SIMPLE)
        table1.update({"=": T.ASSIGN, "+": T.PLUS, "-": T.MINUS,
                       "/": T.SLASH, "!": T.BANG, "<": T.LT, ">": T.GT})
        if ch in table1:
            self._advance()
            return Token(table1[ch], ch, self._span(start))
        raise self._error(f"unexpected character {ch!r}")

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self._here()
        if self.pos >= len(self.src):
            return Token(T.EOF, "", self._span(start))
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_ident(start)
        if ch.isdigit():
            return self._lex_number(start)
        if ch == '"':
            return self._lex_string(start)
        if ch == "'":
            return self._lex_ctor(start)
        return self._lex_operator(start)

    def tokenize(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is T.EOF:
                return out


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize Vault source, returning a list ending with an EOF token."""
    return Lexer(source, filename).tokenize()
