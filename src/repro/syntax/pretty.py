"""Pretty-printer for the Vault surface AST.

Prints parseable Vault source.  Two uses in the reproduction:

* round-trip testing (``parse . pretty . parse`` is the identity up to
  spans), and
* the case-study size comparison: printing an AST processed by
  :mod:`repro.lower.erase` yields the guard-free "C-like" rendering of a
  program, which we compare against the annotated Vault source the way
  the paper compares its 4900-line C driver to the 5200-line Vault port.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast

INDENT = "    "


class Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(INDENT * self.depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    # -- types --------------------------------------------------------------

    def fmt_state(self, st: Optional[ast.StateExpr]) -> str:
        if st is None:
            return ""
        if isinstance(st, ast.StateBound):
            return f"({st.var} <= {st.bound})"
        return st.name

    def fmt_type(self, ty: ast.Type) -> str:
        if isinstance(ty, ast.BaseType):
            return ty.name
        if isinstance(ty, ast.NamedType):
            if ty.args:
                inner = ", ".join(self.fmt_type_arg(a) for a in ty.args)
                return f"{ty.name}<{inner}>"
            return ty.name
        if isinstance(ty, ast.ArrayType):
            return f"{self.fmt_type(ty.elem)}[]"
        if isinstance(ty, ast.TrackedType):
            if ty.key is not None:
                if ty.state is not None:
                    head = f"tracked({ty.key}@{self.fmt_state(ty.state)})"
                else:
                    head = f"tracked({ty.key})"
            elif ty.state is not None:
                head = f"tracked(@{self.fmt_state(ty.state)})"
            else:
                head = "tracked"
            return f"{head} {self.fmt_type(ty.inner)}"
        if isinstance(ty, ast.GuardedType):
            st = ty.state
            if isinstance(st, ast.StateBound):
                return (f"({ty.key} @ {self.fmt_state(st)}) : "
                        f"{self.fmt_type(ty.inner)}")
            if st is not None:
                return f"{ty.key}@{self.fmt_state(st)}:{self.fmt_type(ty.inner)}"
            return f"{ty.key}:{self.fmt_type(ty.inner)}"
        if isinstance(ty, ast.FunType):
            params = ", ".join(self.fmt_param(p) for p in ty.params)
            eff = self.fmt_effect(ty.effect)
            name = ty.name or "Fn"
            return f"{self.fmt_type(ty.ret)} {name}({params}){eff}"
        raise TypeError(f"unknown type node {type(ty).__name__}")

    def fmt_type_arg(self, arg: ast.TypeArg) -> str:
        if arg.type is not None:
            return self.fmt_type(arg.type)
        return arg.name or "?"

    def fmt_param(self, p: ast.Param) -> str:
        base = self.fmt_type(p.type)
        return f"{base} {p.name}" if p.name else base

    def fmt_effect(self, eff: Optional[ast.EffectClause]) -> str:
        if eff is None:
            return ""
        parts = []
        for item in eff.items:
            if item.mode == "consume":
                s = f"-{item.key}"
                if item.pre is not None:
                    s += f"@{self.fmt_state(item.pre)}"
            elif item.mode == "produce":
                s = f"+{item.key}"
                if item.post is not None:
                    s += f"@{self.fmt_state(item.post)}"
            elif item.mode == "fresh":
                s = f"new {item.key}"
                if item.post is not None:
                    s += f"@{self.fmt_state(item.post)}"
            else:
                s = item.key
                if item.pre is not None:
                    s += f"@{self.fmt_state(item.pre)}"
                if item.post is not None:
                    s += f"->{self.fmt_state(item.post)}"
            parts.append(s)
        return f" [{', '.join(parts)}]"

    def fmt_type_params(self, params: List[ast.TypeParam]) -> str:
        if not params:
            return ""
        return "<" + ", ".join(f"{p.kind} {p.name}" for p in params) + ">"

    # -- declarations --------------------------------------------------------

    def print_program(self, prog: ast.Program) -> None:
        for decl in prog.decls:
            self.print_decl(decl)

    def print_decl(self, decl: ast.Decl) -> None:
        if isinstance(decl, ast.InterfaceDecl):
            self.emit(f"interface {decl.name} {{")
            self.depth += 1
            for d in decl.decls:
                self.print_decl(d)
            self.depth -= 1
            self.emit("}")
        elif isinstance(decl, ast.ModuleDecl):
            head = "extern module" if decl.is_extern else "module"
            iface = f" : {decl.interface}" if decl.interface else ""
            if decl.is_extern:
                self.emit(f"{head} {decl.name}{iface};")
            else:
                self.emit(f"{head} {decl.name}{iface} {{")
                self.depth += 1
                for d in decl.decls:
                    self.print_decl(d)
                self.depth -= 1
                self.emit("}")
        elif isinstance(decl, ast.TypeAliasDecl):
            params = self.fmt_type_params(decl.params)
            if decl.rhs is None:
                self.emit(f"type {decl.name}{params};")
            else:
                self.emit(f"type {decl.name}{params} = {self.fmt_type(decl.rhs)};")
        elif isinstance(decl, ast.VariantDecl):
            params = self.fmt_type_params(decl.params)
            ctors = " | ".join(self.fmt_ctor(c) for c in decl.ctors)
            self.emit(f"variant {decl.name}{params} [ {ctors} ];")
        elif isinstance(decl, ast.StructDecl):
            params = self.fmt_type_params(decl.params)
            self.emit(f"struct {decl.name}{params} {{")
            self.depth += 1
            for f in decl.fields:
                self.emit(f"{self.fmt_type(f.type)} {f.name};")
            self.depth -= 1
            self.emit("}")
        elif isinstance(decl, ast.StateSetDecl):
            if decl.order:
                chain = self._order_text(decl)
            else:
                chain = ", ".join(decl.states)
            self.emit(f"stateset {decl.name} = [ {chain} ];")
        elif isinstance(decl, ast.KeyDecl):
            at = f" @ {decl.stateset}" if decl.stateset else ""
            init = f" = {decl.initial}" if decl.initial else ""
            self.emit(f"key {decl.name}{at}{init};")
        elif isinstance(decl, ast.FunDecl):
            self.emit(self.fmt_fun_head(decl) + ";")
        elif isinstance(decl, ast.FunDef):
            self.emit(self.fmt_fun_head(decl.decl) + " {")
            self.depth += 1
            for s in decl.body.stmts:
                self.print_stmt(s)
            self.depth -= 1
            self.emit("}")
        else:
            raise TypeError(f"unknown decl node {type(decl).__name__}")

    def _order_text(self, decl: ast.StateSetDecl) -> str:
        # Re-emit as chains; adequate for the chain syntax we accept.
        edges = dict(decl.order)
        sources = [s for s in decl.states
                   if s not in {b for _, b in decl.order}]
        chains = []
        seen = set()
        for src in sources:
            chain = [src]
            seen.add(src)
            while chain[-1] in edges:
                nxt = edges[chain[-1]]
                chain.append(nxt)
                seen.add(nxt)
            chains.append(" < ".join(chain))
        for s in decl.states:
            if s not in seen:
                chains.append(s)
        return ", ".join(chains)

    def fmt_ctor(self, ctor: ast.CtorDecl) -> str:
        s = f"'{ctor.name}"
        if ctor.args:
            s += "(" + ", ".join(self.fmt_type(t) for t in ctor.args) + ")"
        if ctor.keys:
            parts = []
            for name, st in ctor.keys:
                parts.append(f"{name}@{self.fmt_state(st)}" if st else name)
            s += "{" + ", ".join(parts) + "}"
        return s

    def fmt_fun_head(self, decl: ast.FunDecl) -> str:
        params = ", ".join(self.fmt_param(p) for p in decl.params)
        tparams = self.fmt_type_params(decl.type_params)
        eff = self.fmt_effect(decl.effect)
        return f"{self.fmt_type(decl.ret)} {decl.name}{tparams}({params}){eff}"

    # -- statements ------------------------------------------------------------

    def print_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.depth += 1
            for s in stmt.stmts:
                self.print_stmt(s)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            init = f" = {self.fmt_expr(stmt.init)}" if stmt.init else ""
            self.emit(f"{self.fmt_type(stmt.type)} {stmt.name}{init};")
        elif isinstance(stmt, ast.LocalFun):
            self.print_decl(stmt.fundef)
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{self.fmt_expr(stmt.expr)};")
        elif isinstance(stmt, ast.Assign):
            self.emit(f"{self.fmt_expr(stmt.target)} {stmt.op} "
                      f"{self.fmt_expr(stmt.value)};")
        elif isinstance(stmt, ast.IncDec):
            self.emit(f"{self.fmt_expr(stmt.target)}{stmt.op};")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({self.fmt_expr(stmt.cond)})")
            self._print_nested(stmt.then)
            if stmt.orelse is not None:
                self.emit("else")
                self._print_nested(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({self.fmt_expr(stmt.cond)})")
            self._print_nested(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.fmt_expr(stmt.value)};")
        elif isinstance(stmt, ast.Free):
            self.emit(f"free({self.fmt_expr(stmt.target)});")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        elif isinstance(stmt, ast.Switch):
            self.emit(f"switch ({self.fmt_expr(stmt.scrutinee)}) {{")
            for case in stmt.cases:
                if case.pattern.ctor is None:
                    self.emit("default:")
                else:
                    binders = ""
                    if case.pattern.binders:
                        binders = "(" + ", ".join(b or "_"
                                                  for b in case.pattern.binders) + ")"
                    self.emit(f"case '{case.pattern.ctor}{binders}:")
                self.depth += 1
                for s in case.body:
                    self.print_stmt(s)
                self.depth -= 1
            self.emit("}")
        else:
            raise TypeError(f"unknown stmt node {type(stmt).__name__}")

    def _print_nested(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.print_stmt(stmt)
        else:
            self.depth += 1
            self.print_stmt(stmt)
            self.depth -= 1

    # -- expressions -------------------------------------------------------------

    def fmt_expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.FloatLit):
            return repr(expr.value)
        if isinstance(expr, ast.BoolLit):
            return "true" if expr.value else "false"
        if isinstance(expr, ast.StringLit):
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
            return f'"{escaped}"'
        if isinstance(expr, ast.CharLit):
            return f"'{expr.value}'"
        if isinstance(expr, ast.NullLit):
            return "null"
        if isinstance(expr, ast.Name):
            return expr.ident
        if isinstance(expr, ast.FieldAccess):
            return f"{self.fmt_expr(expr.obj)}.{expr.field}"
        if isinstance(expr, ast.Index):
            return f"{self.fmt_expr(expr.obj)}[{self.fmt_expr(expr.index)}]"
        if isinstance(expr, ast.Call):
            args = ", ".join(self.fmt_expr(a) for a in expr.args)
            return f"{self.fmt_expr(expr.fn)}({args})"
        if isinstance(expr, ast.Unary):
            return f"{expr.op}{self._paren(expr.operand)}"
        if isinstance(expr, ast.Binary):
            return (f"{self._paren(expr.left)} {expr.op} "
                    f"{self._paren(expr.right)}")
        if isinstance(expr, ast.CtorApp):
            s = f"'{expr.name}"
            if expr.args:
                s += "(" + ", ".join(self.fmt_expr(a) for a in expr.args) + ")"
            if expr.keys:
                s += "{" + ", ".join(expr.keys) + "}"
            return s
        if isinstance(expr, ast.New):
            if expr.region is not None:
                head = f"new({self.fmt_expr(expr.region)})"
            elif expr.tracked:
                head = "new tracked"
            else:
                head = "new"
            inits = " ".join(f"{i.name}={self.fmt_expr(i.value)};"
                             for i in expr.inits)
            body = f" {{{inits}}}" if expr.inits else " {}"
            return f"{head} {self.fmt_type(expr.type)}{body}"
        if isinstance(expr, ast.ArrayLit):
            return "[" + ", ".join(self.fmt_expr(e) for e in expr.elems) + "]"
        raise TypeError(f"unknown expr node {type(expr).__name__}")

    def _paren(self, expr: ast.Expr) -> str:
        text = self.fmt_expr(expr)
        if isinstance(expr, (ast.Binary, ast.Unary)):
            return f"({text})"
        return text


def pretty(node) -> str:
    """Render a Program, Decl or Stmt back to Vault source text."""
    printer = Printer()
    if isinstance(node, ast.Program):
        printer.print_program(node)
    elif isinstance(node, ast.Decl):
        printer.print_decl(node)
    elif isinstance(node, ast.Stmt):
        printer.print_stmt(node)
    elif isinstance(node, ast.Type):
        return printer.fmt_type(node)
    elif isinstance(node, ast.Expr):
        return printer.fmt_expr(node)
    else:
        raise TypeError(f"cannot pretty-print {type(node).__name__}")
    return printer.text()
