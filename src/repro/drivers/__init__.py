"""The Windows 2000 driver case studies (paper §4): the floppy driver
and the crypt filter stacked above it."""

from .floppy import (IOCTL_READ_STATS, FloppyHarness, check_driver,
                     driver_source)
from .stack import StackedHarness, crypt_source

__all__ = ["FloppyHarness", "IOCTL_READ_STATS", "StackedHarness",
           "check_driver", "crypt_source", "driver_source"]
