"""A two-driver stack: the crypt filter above the floppy driver.

Reproduces §4's driver-stack structure — requests enter at the top
(crypt0), are transformed and passed down to the floppy FDO, which
forwards transfers to the hardware PDO; completion routines run in
LIFO order as the IRP bubbles back up.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..api import load_context
from ..core import check_program
from ..kernel import (IRP_MJ_CLOSE, IRP_MJ_CREATE, IRP_MJ_DEVICE_CONTROL,
                      IRP_MJ_PNP, IRP_MJ_READ, IRP_MJ_WRITE, FloppyDevice,
                      Irp)
from ..runtime.values import VHandle
from ..stdlib.hostimpl import Host, create_host, make_interpreter
from ..syntax import parse_program
from .floppy import FloppyHarness, driver_source

_CRYPT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "vault", "crypt.vlt")


def crypt_source() -> str:
    with open(_CRYPT_PATH, "r", encoding="utf-8") as handle:
        return handle.read()


class StackedHarness(FloppyHarness):
    """kernel requests -> crypt0 (filter) -> floppy0 -> floppy PDO."""

    DEVICE_NAME = "crypt0"

    def __init__(self, sectors: int = 2880, check: bool = True,
                 secret: int = 42, compiled: bool = False):
        combined = driver_source() + "\n" + crypt_source()
        super().__init__(sectors=sectors, check=check, source=combined,
                         compiled=compiled)
        self.secret = secret

    def boot(self) -> None:
        if self.compiled:
            self._module["DriverEntry"](VHandle("device", self.pdo))
            floppy_fdo = self.host.kernel.devices["floppy0"]
            self._module["CryptDriverEntry"](
                VHandle("device", floppy_fdo), self.secret)
            return
        self.interp.call("DriverEntry", [VHandle("device", self.pdo)])
        floppy_fdo = self.host.kernel.devices["floppy0"]
        self.interp.call("CryptDriverEntry",
                         [VHandle("device", floppy_fdo), self.secret])

    @property
    def crypt_fdo(self):
        return self.host.kernel.devices["crypt0"]

    def raw_sector(self, offset: int, length: int) -> bytes:
        """What the hardware actually stores (the ciphertext)."""
        return self.device.read(offset, length)
