"""Harness for the floppy-driver case study (paper §4).

Loads the Vault floppy driver, checks it against the kernel interface,
wires it to the simulated kernel and hardware, and offers a high-level
I/O API (read/write/ioctl/pnp) used by the examples, tests and the
case-study benchmark.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..api import load_context
from ..core import ProgramContext, check_program
from ..diagnostics import Reporter
from ..kernel import (IOCTL_EJECT, IOCTL_GET_GEOMETRY, IOCTL_INSERT,
                      IOCTL_MOTOR_OFF, IOCTL_MOTOR_ON, IRP_MJ_CLOSE,
                      IRP_MJ_CREATE, IRP_MJ_DEVICE_CONTROL, IRP_MJ_PNP,
                      IRP_MJ_READ, IRP_MJ_WRITE, FloppyDevice, Irp,
                      STATUS_SUCCESS)
from ..runtime.values import VHandle
from ..stdlib.hostimpl import Host, create_host, make_interpreter

IOCTL_READ_STATS = 0x706
IOCTL_SET_WRITE_PROTECT = 0x707
IOCTL_CLEAR_WRITE_PROTECT = 0x708
IOCTL_LAZY_WRITES_ON = 0x709
IOCTL_LAZY_WRITES_OFF = 0x70A
IOCTL_FLUSH_QUEUE = 0x70B
IOCTL_QUEUE_DEPTH = 0x70C

_DRIVER_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "vault", "floppy.vlt")


def driver_source() -> str:
    """The Vault source text of the floppy driver."""
    with open(_DRIVER_PATH, "r", encoding="utf-8") as handle:
        return handle.read()


def check_driver() -> Reporter:
    """Statically check the driver against the kernel interface."""
    ctx, reporter = load_context(driver_source(), filename="floppy.vlt")
    if reporter.ok:
        check_program(ctx, reporter)
    return reporter


class FloppyHarness:
    """A booted driver + kernel + device, ready for I/O requests.

    ``compiled=True`` runs the driver through the Vault->Python
    compiler instead of the interpreter — the paper's deployment model
    (checked source compiled with keys erased, linked against the
    kernel through a thin wrapper).
    """

    DEVICE_NAME = "floppy0"

    def __init__(self, sectors: int = 2880, check: bool = True,
                 source: Optional[str] = None, compiled: bool = False):
        src = source if source is not None else driver_source()
        self.ctx, self.reporter = load_context(src, filename="floppy.vlt")
        if self.reporter.ok and check:
            check_program(self.ctx, self.reporter)
        self.host: Host = create_host()
        self.compiled = compiled
        if compiled:
            from ..lower import compile_to_python, load_compiled
            from ..syntax import parse_program
            code = compile_to_python(parse_program(src, "floppy.vlt"))
            self._module = load_compiled(code, self.host)
            # The module's bound Rt doubles as the kernel's "interp":
            # its call_value invokes the compiled dispatch closures.
            self.interp = self._module["_rt"]
        else:
            self.interp = make_interpreter(self.ctx, self.host)
        self._register_ioctls()
        self.device = FloppyDevice(sectors=sectors)
        self.pdo = self.host.kernel.create_pdo("floppy-pdo", self.device)

    def _register_ioctls(self) -> None:
        constants = {
            "IOCTL_MOTOR_ON": IOCTL_MOTOR_ON,
            "IOCTL_MOTOR_OFF": IOCTL_MOTOR_OFF,
            "IOCTL_EJECT": IOCTL_EJECT,
            "IOCTL_INSERT": IOCTL_INSERT,
            "IOCTL_GET_GEOMETRY": IOCTL_GET_GEOMETRY,
            "IOCTL_READ_STATS": IOCTL_READ_STATS,
            "IOCTL_SET_WRITE_PROTECT": IOCTL_SET_WRITE_PROTECT,
            "IOCTL_CLEAR_WRITE_PROTECT": IOCTL_CLEAR_WRITE_PROTECT,
            "IOCTL_LAZY_WRITES_ON": IOCTL_LAZY_WRITES_ON,
            "IOCTL_LAZY_WRITES_OFF": IOCTL_LAZY_WRITES_OFF,
            "IOCTL_FLUSH_QUEUE": IOCTL_FLUSH_QUEUE,
            "IOCTL_QUEUE_DEPTH": IOCTL_QUEUE_DEPTH,
        }

        def make(value):
            def constant(interp):
                return value
            return constant

        for name, value in constants.items():
            self.host.env.register(name, make(value))

    # -- boot ------------------------------------------------------------------

    def boot(self) -> None:
        """Run DriverEntry, creating and attaching the FDO."""
        if self.compiled:
            self._module["DriverEntry"](VHandle("device", self.pdo))
        else:
            self.interp.call("DriverEntry", [VHandle("device", self.pdo)])

    # -- request helpers --------------------------------------------------------

    def _request(self, major: int, **kwargs) -> Irp:
        irp = self.host.kernel.submit_request(
            self.interp, self.DEVICE_NAME, major, **kwargs)
        if not irp.completed and not irp.pending:
            self.host.kernel.run_until_complete(self.interp, irp)
        return irp

    def open(self) -> Irp:
        return self._request(IRP_MJ_CREATE)

    def close(self) -> Irp:
        return self._request(IRP_MJ_CLOSE)

    def read(self, offset: int, length: int) -> Tuple[Irp, bytes]:
        buffer: List[int] = [0] * max(length, 0)
        irp = self._request(IRP_MJ_READ, buffer=buffer, length=length,
                            offset=offset)
        return irp, bytes(buffer[:irp.information])

    def write(self, offset: int, payload: bytes) -> Irp:
        buffer = list(payload)
        return self._request(IRP_MJ_WRITE, buffer=buffer,
                             length=len(payload), offset=offset)

    def ioctl(self, code: int) -> Irp:
        return self._request(IRP_MJ_DEVICE_CONTROL, ioctl=code)

    def pnp(self) -> Irp:
        return self._request(IRP_MJ_PNP)

    # -- state inspection ----------------------------------------------------------

    def stats_total(self) -> int:
        irp = self.ioctl(IOCTL_READ_STATS)
        return irp.information

    def audit(self) -> List[str]:
        return self.host.audit()
