"""High-level entry points for the Vault reproduction.

Typical usage::

    from repro import check_source

    report = check_source('''
        void okay() {
            tracked(R) region rgn = Region.create();
            R:point pt = new(rgn) point {x=1; y=2;};
            pt.x++;
            Region.delete(rgn);
        }
        struct point { int x; int y; }
    ''')
    assert report.ok

``check_source`` parses, elaborates and protocol-checks a compilation
unit against the standard Vault interfaces (regions, files, sockets and
the Windows 2000 kernel interface of §4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .core import ProgramContext, build_context, check_program
from .diagnostics import CheckError, Code, Reporter
from .stdlib import stdlib_context, stdlib_programs
from .syntax import ast, parse_program


def parse(source: str, filename: str = "<input>") -> ast.Program:
    """Parse one Vault compilation unit."""
    return parse_program(source, filename)


def load_context(source: str, filename: str = "<input>",
                 stdlib: bool = True,
                 units: Optional[Sequence[str]] = None,
                 extra: Sequence[ast.Program] = ()
                 ) -> "tuple[ProgramContext, Reporter]":
    """Parse ``source`` and build its program context (+stdlib).

    The stdlib units are elaborated once per process (see
    :func:`repro.stdlib.stdlib_context`); each call layers the user
    program (and ``extra``) on a clone of that base.
    """
    reporter = Reporter(source, filename)
    programs: List[ast.Program] = []
    base: Optional[ProgramContext] = None
    if stdlib:
        base, base_diags = stdlib_context(units)
        reporter.diagnostics.extend(base_diags)
    programs.extend(extra)
    programs.append(parse_program(source, filename))
    ctx = build_context(programs, reporter, base=base)
    return ctx, reporter


def check_source(source: str, filename: str = "<input>",
                 stdlib: bool = True,
                 units: Optional[Sequence[str]] = None,
                 extra: Sequence[ast.Program] = (),
                 jobs: Union[int, str] = 1) -> Reporter:
    """Parse and protocol-check a compilation unit; returns the report.

    ``jobs`` > 1 (or ``"auto"``, one worker per CPU) checks functions
    through the pipeline's worker pool; the diagnostic stream is
    byte-identical to serial mode, and small workloads stay serial
    (the scheduler's break-even check), so a larger ``jobs`` is never
    a pessimisation.
    """
    if jobs != 1 and not extra:
        from .pipeline import CheckSession
        with CheckSession(stdlib=stdlib, units=units, jobs=jobs) as session:
            return session.check(source, filename)
    ctx, reporter = load_context(source, filename, stdlib, units, extra)
    if reporter.ok:
        check_program(ctx, reporter)
    return reporter


def check_source_detailed(source: str, filename: str = "<input>",
                          stdlib: bool = True,
                          units: Optional[Sequence[str]] = None,
                          jobs: Union[int, str] = 1,
                          cache_dir: Optional[str] = None,
                          daemon: Optional[str] = "auto"):
    """Daemon-first checking for library users.

    Routes the check through a running ``vaultc serve`` daemon
    (``daemon`` names its socket; ``"auto"`` is the default path,
    ``None`` forces in-process) and transparently falls back to the
    in-process pipeline when none is reachable.  Returns a
    :class:`repro.server.CheckOutcome` — ``ok``, the rendered
    diagnostics (byte-identical in both paths), the error count, and
    ``via_daemon`` telling you which path answered.
    """
    from .server.client import check_detailed
    return check_detailed(
        source, filename,
        {"stdlib": stdlib,
         "units": list(units) if units is not None else None,
         "jobs": jobs, "cache_dir": cache_dir},
        socket_path=daemon)


def check_source_strict(source: str, filename: str = "<input>",
                        stdlib: bool = True,
                        units: Optional[Sequence[str]] = None) -> None:
    """Like :func:`check_source`, but raises :class:`CheckError`."""
    reporter = check_source(source, filename, stdlib, units)
    reporter.raise_if_errors()


def error_codes(source: str, **kwargs) -> List[Code]:
    """The list of error codes a source produces (empty when it checks)."""
    return check_source(source, **kwargs).codes()
