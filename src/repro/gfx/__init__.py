"""GDI-style graphics substrate (the §6 future-work domain)."""

from .gdi import DeviceContext, GdiSystem, Pen

__all__ = ["DeviceContext", "GdiSystem", "Pen"]
