"""A GDI-style graphics substrate (paper §6: "we need to continue
validating these features in other domains, like graphic interfaces").

Device contexts and pens follow the classic Win32 GDI discipline the
Vault interface (``gdi.vlt``) encodes in key states:

* a DC is acquired blank, must have a pen selected before drawing, and
  must be blank again (pen deselected) before release;
* a pen is created free, may be selected into one DC at a time, and
  may only be deleted while free.

Run-time misuse raises deterministic protocol errors; ``audit`` reports
unreleased DCs and undeleted pens.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..diagnostics import Code, RuntimeProtocolError

_dc_ids = itertools.count(1)
_pen_ids = itertools.count(1)


class Pen:
    def __init__(self, color: int):
        self.id = next(_pen_ids)
        self.color = color
        self.state = "idle"         # idle | selected | deleted

    def __repr__(self) -> str:
        return f"pen{self.id}[{self.state}]"


class DeviceContext:
    def __init__(self, window: int):
        self.id = next(_dc_ids)
        self.window = window
        self.state = "blank"        # blank | armed | released
        self.pen: Optional[Pen] = None
        self.lines: List[Tuple[int, int, int, int, int]] = []

    def __repr__(self) -> str:
        return f"dc{self.id}[{self.state}]"


class GdiSystem:
    """All graphics objects of one run."""

    def __init__(self) -> None:
        self.dcs: List[DeviceContext] = []
        self.pens: List[Pen] = []

    # -- protocol operations --------------------------------------------------

    def get_dc(self, window: int) -> DeviceContext:
        dc = DeviceContext(window)
        self.dcs.append(dc)
        return dc

    def create_pen(self, color: int) -> Pen:
        pen = Pen(color)
        self.pens.append(pen)
        return pen

    def _require(self, obj, state: str, what: str) -> None:
        if obj.state != state:
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"{what}: {obj!r} must be '{state}'")

    def select_pen(self, dc: DeviceContext, pen: Pen) -> None:
        self._require(dc, "blank", "select_pen")
        self._require(pen, "idle", "select_pen")
        dc.state = "armed"
        dc.pen = pen
        pen.state = "selected"

    def deselect_pen(self, dc: DeviceContext, pen: Pen) -> None:
        self._require(dc, "armed", "deselect_pen")
        if dc.pen is not pen:
            # The static checker cannot correlate *which* pen sits in
            # which DC (their keys are independent); this pairing rule
            # is enforced dynamically.
            raise RuntimeProtocolError(
                Code.RT_PROTOCOL,
                f"deselect_pen: {pen!r} is not the pen selected into "
                f"{dc!r}")
        dc.state = "blank"
        dc.pen = None
        pen.state = "idle"

    def draw_line(self, dc: DeviceContext, x0: int, y0: int,
                  x1: int, y1: int) -> None:
        self._require(dc, "armed", "draw_line")
        assert dc.pen is not None
        dc.lines.append((x0, y0, x1, y1, dc.pen.color))

    def release_dc(self, dc: DeviceContext) -> None:
        self._require(dc, "blank", "release_dc")
        dc.state = "released"

    def delete_pen(self, pen: Pen) -> None:
        self._require(pen, "idle", "delete_pen")
        pen.state = "deleted"

    # -- audits -------------------------------------------------------------------

    def audit(self) -> List[str]:
        report = [f"dc {dc.id}" for dc in self.dcs
                  if dc.state != "released"]
        report.extend(f"pen {p.id}" for p in self.pens
                      if p.state != "deleted")
        return report

    def total_lines(self) -> int:
        return sum(len(dc.lines) for dc in self.dcs)
