"""Diagnostic accumulation and pretty reporting.

The checker pushes diagnostics into a :class:`Reporter` as it walks the
control-flow graph; callers decide whether to raise (``strict``) or to
collect every error in one pass (used by the mutation harness, which
wants the *set* of violations a seeded bug produces).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .errors import CheckError, Code, Diagnostic, Severity
from .span import Span


class Reporter:
    """Collects diagnostics; optionally renders them against source text."""

    def __init__(self, source: Optional[str] = None, filename: str = "<input>"):
        self.diagnostics: List[Diagnostic] = []
        self._source_lines = source.splitlines() if source is not None else None
        self.filename = filename

    # -- accumulation -----------------------------------------------------

    def error(self, code: Code, message: str, span: Span,
              notes: Optional[Iterable[str]] = None) -> Diagnostic:
        diag = Diagnostic(code, message, span, Severity.ERROR, list(notes or []))
        self.diagnostics.append(diag)
        return diag

    def warning(self, code: Code, message: str, span: Span) -> Diagnostic:
        diag = Diagnostic(code, message, span, Severity.WARNING)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "Reporter") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries -----------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> List[Code]:
        return [d.code for d in self.errors]

    def has(self, code: Code) -> bool:
        return any(d.code is code for d in self.errors)

    def raise_if_errors(self) -> None:
        if self.errors:
            raise CheckError(self.errors)

    # -- rendering ---------------------------------------------------------

    def render(self, with_source: bool = True) -> str:
        """Human-readable report, optionally quoting the offending line."""
        out = []
        for diag in self.diagnostics:
            out.append(diag.render())
            if with_source and self._source_lines is not None:
                line_no = diag.span.start.line
                if 1 <= line_no <= len(self._source_lines):
                    text = self._source_lines[line_no - 1]
                    out.append(f"    {line_no:4} | {text}")
                    caret_col = max(diag.span.start.col, 1)
                    out.append("         | " + " " * (caret_col - 1) + "^")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()

    def __len__(self) -> int:
        return len(self.diagnostics)
