"""Source positions and spans for diagnostics.

Every token and AST node carries a :class:`Span` so that errors produced
by the checker point at the offending construct, as the Vault compiler's
error messages do in the paper's examples (Figure 2's ``dangling`` and
``leaky`` functions, etc.).

Both classes are hand-written with ``__slots__`` rather than frozen
dataclasses: the lexer mints two positions and one span per token, so
construction cost is on the hot path of every check.
"""

from __future__ import annotations


class Pos:
    """A single source position (1-based line, 1-based column)."""

    __slots__ = ("line", "col", "offset")

    def __init__(self, line: int, col: int, offset: int = 0):
        self.line = line
        self.col = col
        self.offset = offset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pos):
            return NotImplemented
        return (self.line == other.line and self.col == other.col
                and self.offset == other.offset)

    def __hash__(self) -> int:
        return hash((self.line, self.col, self.offset))

    def __repr__(self) -> str:
        return f"Pos(line={self.line}, col={self.col}, offset={self.offset})"

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class Span:
    """A half-open region of source text, with the originating file name."""

    __slots__ = ("start", "end", "filename")

    def __init__(self, start: Pos, end: Pos, filename: str = "<input>"):
        self.start = start
        self.end = end
        self.filename = filename

    @staticmethod
    def unknown() -> "Span":
        return Span(Pos(0, 0), Pos(0, 0), "<unknown>")

    @staticmethod
    def point(line: int, col: int, filename: str = "<input>") -> "Span":
        p = Pos(line, col)
        return Span(p, p, filename)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        if self.filename == "<unknown>":
            return other
        if other.filename == "<unknown>":
            return self
        lo = min((self.start.line, self.start.col), (other.start.line, other.start.col))
        hi = max((self.end.line, self.end.col), (other.end.line, other.end.col))
        return Span(Pos(lo[0], lo[1]), Pos(hi[0], hi[1]), self.filename)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (self.start == other.start and self.end == other.end
                and self.filename == other.filename)

    def __hash__(self) -> int:
        return hash((self.start, self.end, self.filename))

    def __repr__(self) -> str:
        return (f"Span(start={self.start!r}, end={self.end!r}, "
                f"filename={self.filename!r})")

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"
