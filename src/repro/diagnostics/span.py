"""Source positions and spans for diagnostics.

Every token and AST node carries a :class:`Span` so that errors produced
by the checker point at the offending construct, as the Vault compiler's
error messages do in the paper's examples (Figure 2's ``dangling`` and
``leaky`` functions, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Pos:
    """A single source position (1-based line, 1-based column)."""

    line: int
    col: int
    offset: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, with the originating file name."""

    start: Pos
    end: Pos
    filename: str = "<input>"

    @staticmethod
    def unknown() -> "Span":
        return Span(Pos(0, 0), Pos(0, 0), "<unknown>")

    @staticmethod
    def point(line: int, col: int, filename: str = "<input>") -> "Span":
        p = Pos(line, col)
        return Span(p, p, filename)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        if self.filename == "<unknown>":
            return other
        if other.filename == "<unknown>":
            return self
        lo = min((self.start.line, self.start.col), (other.start.line, other.start.col))
        hi = max((self.end.line, self.end.col), (other.end.line, other.end.col))
        return Span(Pos(lo[0], lo[1]), Pos(hi[0], hi[1]), self.filename)

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"
