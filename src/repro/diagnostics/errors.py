"""Diagnostic objects and error codes for the Vault checker.

The paper's checker reports a small family of protocol errors: accessing
a value whose guard key is not held (dangling), finishing a function
with keys the effect clause did not promise (leak), calling a function
whose precondition key set is not satisfied, key sets disagreeing at a
control-flow join, duplicating a key, and so on.  Each family gets a
stable code so tests and the mutation harness can assert on *which*
error fired, not just that one fired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .span import Span


class Code(enum.Enum):
    """Stable diagnostic codes, grouped by pipeline stage."""

    # Lexing / parsing
    LEX_ERROR = "V0001"
    PARSE_ERROR = "V0002"

    # Name resolution / well-formedness
    UNDEFINED_NAME = "V0100"
    DUPLICATE_NAME = "V0101"
    UNDEFINED_TYPE = "V0102"
    UNDEFINED_KEY = "V0103"
    UNDEFINED_STATE = "V0104"
    UNDEFINED_CONSTRUCTOR = "V0105"
    ARITY_MISMATCH = "V0106"
    BAD_TYPE_ARGUMENT = "V0107"
    DUPLICATE_STATE = "V0108"
    ABSTRACT_TYPE_USE = "V0109"

    # Ordinary type errors
    TYPE_MISMATCH = "V0200"
    NOT_A_FUNCTION = "V0201"
    NOT_A_STRUCT = "V0202"
    NO_SUCH_FIELD = "V0203"
    NOT_A_VARIANT = "V0204"
    BAD_PATTERN = "V0205"
    NOT_TRACKED = "V0206"
    NOT_ASSIGNABLE = "V0207"
    BAD_FREE = "V0208"
    MISSING_RETURN = "V0209"
    NONEXHAUSTIVE_SWITCH = "V0210"

    # Key / guard (protocol) errors — the paper's contribution
    KEY_NOT_HELD = "V0300"           # guard violated: key absent at access
    KEY_WRONG_STATE = "V0301"        # key held, but in the wrong local state
    KEY_LEAKED = "V0302"             # extra key at function exit (Fig. 2 leaky)
    KEY_CONSUMED_MISSING = "V0303"   # effect requires a key the caller lacks
    KEY_DUPLICATED = "V0304"         # key introduced twice (double acquire)
    JOIN_MISMATCH = "V0305"          # held-key sets disagree at a join (Fig. 5)
    LOOP_NO_INVARIANT = "V0306"      # key set does not stabilise around a loop
    POSTCONDITION_MISMATCH = "V0307" # exit key set differs from effect clause
    STATE_BOUND_VIOLATION = "V0308"  # constrained state var out of bounds (§4.4)
    ANONYMOUS_KEY = "V0309"          # needed key was anonymised (Fig. 4)
    TRACKED_COPY = "V0310"           # illegal duplication of a tracked value
    KEY_ESCAPES_SCOPE = "V0311"      # local key escapes via return/effect

    # Runtime (interpreter / dynamic monitor)
    RT_PROTOCOL = "V0400"
    RT_DANGLING = "V0401"
    RT_LEAK = "V0402"
    RT_DOUBLE_FREE = "V0403"
    RT_DEADLOCK = "V0404"

    # 05xx: checker self-diagnosis (the pipeline's own failures)
    CHECKER_INTERNAL = "V0500"       # checking this function crashed; isolated


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass
class Diagnostic:
    """A single message produced by the front end or checker."""

    code: Code
    message: str
    span: Span
    severity: Severity = Severity.ERROR
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        head = f"{self.span}: {self.severity.value} [{self.code.value}] {self.message}"
        if self.notes:
            return head + "".join(f"\n  note: {n}" for n in self.notes)
        return head

    def __str__(self) -> str:
        return self.render()


class VaultError(Exception):
    """Base class for all errors raised by the reproduction."""


class LexError(VaultError):
    def __init__(self, message: str, span: Span):
        super().__init__(f"{span}: {message}")
        self.message = message
        self.span = span


class ParseError(VaultError):
    def __init__(self, message: str, span: Span):
        super().__init__(f"{span}: {message}")
        self.message = message
        self.span = span


class CheckError(VaultError):
    """Raised when checking aborts; carries the accumulated diagnostics."""

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        super().__init__("\n".join(d.render() for d in diagnostics))

    @property
    def codes(self) -> List[Code]:
        return [d.code for d in self.diagnostics]

    def has(self, code: Code) -> bool:
        return code in self.codes


class RuntimeProtocolError(VaultError):
    """Raised by the interpreter / dynamic monitor on a protocol violation."""

    def __init__(self, code: Code, message: str, span: Optional[Span] = None):
        self.code = code
        self.span = span or Span.unknown()
        super().__init__(f"{self.span}: [{code.value}] {message}")
