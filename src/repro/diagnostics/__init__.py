"""Spans, diagnostics, error codes and reporting for the Vault pipeline."""

from .errors import (
    CheckError,
    Code,
    Diagnostic,
    LexError,
    ParseError,
    RuntimeProtocolError,
    Severity,
    VaultError,
)
from .reporter import Reporter
from .span import Pos, Span

__all__ = [
    "CheckError",
    "Code",
    "Diagnostic",
    "LexError",
    "ParseError",
    "Pos",
    "Reporter",
    "RuntimeProtocolError",
    "Severity",
    "Span",
    "VaultError",
]
