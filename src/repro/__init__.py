"""vault-repro — a reproduction of DeLine & Fähndrich,
"Enforcing High-Level Protocols in Low-Level Software" (PLDI 2001).

The package implements the Vault programming language described in the
paper: a C-like surface syntax whose type system statically enforces
resource management protocols through *keys* (linear compile-time
tokens tracking run-time resources), *type guards* (conditions on when
values may be accessed), *effect clauses* (per-function pre/post
conditions on the held-key set) and *keyed variants* (moving key
knowledge between static and dynamic worlds).

Subpackages:

* :mod:`repro.syntax` — lexer, parser, AST, printer;
* :mod:`repro.core` — the key/guard type system and checker (§2, §3);
* :mod:`repro.runtime` — an interpreter plus a dynamic protocol-monitor
  baseline;
* :mod:`repro.lower` — the key-erasing backend (Vault→Python, standing
  in for the paper's Vault→C compiler);
* :mod:`repro.regions`, :mod:`repro.sockets`, :mod:`repro.kernel` —
  substrate simulators for §2.2, §2.3 and the Windows 2000 case study
  of §4;
* :mod:`repro.drivers` — the floppy-driver case study;
* :mod:`repro.analysis` — baselines, mutation harness, synthetic
  corpus generator.
"""

from .api import (check_source, check_source_strict, error_codes,
                  load_context, parse)
from .diagnostics import CheckError, Code, Reporter, RuntimeProtocolError

__version__ = "1.0.0"

__all__ = [
    "CheckError",
    "Code",
    "Reporter",
    "RuntimeProtocolError",
    "check_source",
    "check_source_strict",
    "error_codes",
    "load_context",
    "parse",
    "__version__",
]
