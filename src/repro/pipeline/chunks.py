"""Splitting a compilation unit into top-level declaration chunks.

The incremental pipeline re-parses only the top-level declarations
whose text changed.  This module provides the cheap textual scanner
that finds declaration boundaries: a top-level declaration ends at a
``;`` or ``}`` at brace depth zero.  The scanner mirrors exactly the
lexer's treatment of comments, string literals, and Vault's tick
tokens (``'Name`` constructors vs. ``'x'`` / ``'{'`` char literals) so
that braces inside those never count toward the depth.

The scanner is deliberately conservative: on anything it cannot
classify (unterminated comment or string, stray characters) it raises
:class:`ChunkError` and the caller falls back to parsing the whole
unit, so error behaviour is identical to the non-incremental path.
"""

from __future__ import annotations

import re
from typing import List


class ChunkError(Exception):
    """The source cannot be split safely; parse it whole instead."""


class Chunk:
    """One top-level declaration's text plus its position in the unit.

    ``start_line``/``start_col`` are 1-based.  Concatenating the
    ``text`` of all chunks reproduces the source exactly; leading
    trivia belongs to the following chunk, trailing trivia to the last.
    """

    __slots__ = ("text", "start_line", "start_col")

    def __init__(self, text: str, start_line: int, start_col: int):
        self.text = text
        self.start_line = start_line
        self.start_col = start_col

    def __repr__(self) -> str:
        return (f"Chunk(line={self.start_line}, col={self.start_col}, "
                f"{len(self.text)} chars)")


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


#: The only characters the scanner has to stop on: newlines (line
#: tracking), comment/string/tick openers, and the brace/semicolon
#: structure.  Everything between two stops — the bulk of any real
#: unit — is skipped in one C-speed regex search instead of the
#: character-at-a-time loop this replaced.
_STRUCT = re.compile(r"[\n/\"'{};]")

#: Body of a string literal after the opening quote: escape pairs
#: (backslash consumes the next character, whatever it is — including
#: a newline, matching both the lexer and the character scanner this
#: replaced) or any plain character that isn't a quote, newline, or
#: backslash.  The match always stops at the terminator, a bare
#: newline, a trailing lone backslash, or end of input.
_STRING_BODY = re.compile(r"(?:\\[\s\S]|[^\"\n\\])*")


def split_chunks(source: str) -> List[Chunk]:
    """Split a compilation unit into one chunk per top-level declaration."""
    chunks: List[Chunk] = []
    n = len(source)
    i = 0
    line = 1
    line_start = 0
    # Position of the current chunk's first character.
    chunk_start = 0
    chunk_line = 1
    chunk_col = 1
    depth = 0
    search = _STRUCT.search

    while True:
        m = search(source, i)
        if m is None:
            break
        i = m.start()
        ch = source[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
        elif ch == "/":
            nxt = source[i + 1] if i + 1 < n else ""
            if nxt == "/":
                j = source.find("\n", i)
                i = n if j == -1 else j
            elif nxt == "*":
                j = source.find("*/", i + 2)
                if j == -1:
                    raise ChunkError("unterminated block comment")
                nl = source.count("\n", i, j + 2)
                if nl:
                    line += nl
                    line_start = source.rfind("\n", i, j + 2) + 1
                i = j + 2
            else:
                i += 1
        elif ch == '"':
            j = _STRING_BODY.match(source, i + 1).end()
            if j >= n or source[j] != '"':
                if j < n and source[j] == "\n":
                    raise ChunkError("newline in string literal")
                raise ChunkError("unterminated string literal")
            i = j + 1
        elif ch == "'":
            # Mirror the lexer: ``'x'``/``'{'`` are char literals (their
            # payload must not affect brace depth), ``'Name`` is a
            # constructor token with no closing tick.
            head = source[i + 1] if i + 1 < n else ""
            if head.isalpha() or head == "_":
                j = i + 1
                while j < n and _is_ident_char(source[j]):
                    j += 1
                if j - (i + 1) == 1 and j < n and source[j] == "'":
                    i = j + 1          # 'x' char literal
                else:
                    i = j              # 'Name constructor
            elif head and i + 2 < n and source[i + 2] == "'":
                i += 3                 # '{' style char literal
            else:
                raise ChunkError("stray tick")
        elif ch == "{":
            depth += 1
            i += 1
        elif ch == "}":
            depth -= 1
            i += 1
            if depth < 0:
                raise ChunkError("unbalanced braces")
            if depth == 0:
                chunks.append(Chunk(source[chunk_start:i],
                                    chunk_line, chunk_col))
                chunk_start = i
                chunk_line = line
                chunk_col = i - line_start + 1
        else:  # ";"
            i += 1
            if depth == 0:
                chunks.append(Chunk(source[chunk_start:i],
                                    chunk_line, chunk_col))
                chunk_start = i
                chunk_line = line
                chunk_col = i - line_start + 1

    if depth != 0:
        raise ChunkError("unbalanced braces")
    if chunk_start < n:
        # Trailing text after the last terminator: usually pure trivia.
        # Attach it to the previous chunk so the chunk list stays one
        # entry per declaration.
        if chunks:
            last = chunks[-1]
            chunks[-1] = Chunk(last.text + source[chunk_start:],
                               last.start_line, last.start_col)
        else:
            chunks.append(Chunk(source, chunk_line, chunk_col))
    return chunks
