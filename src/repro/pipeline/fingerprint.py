"""Stable content fingerprints for function summaries.

The checker is modular (paper §3): the result of checking a function
depends only on the function's own text and on the *declarations* it
references — callee signatures with their effect clauses, struct and
variant layouts, statesets with their partial order, and global keys.
A summary fingerprint hashes exactly that closure, so an edit
invalidates a cached summary precisely when it could change the
function's diagnostics:

* editing a function's body or effect clause changes its own text;
* editing a callee's effect clause changes the callee's rendered
  signature, which is part of every caller's fingerprint;
* editing a ``stateset`` changes the rendered stateset, which is part
  of the fingerprint of every function whose dependency closure
  reaches it (through a global key, a guard, or an effect clause).

Renderings deliberately avoid ``repr`` of runtime objects (key uids,
spans), so fingerprints are stable across processes and across
re-parses — that is what makes on-disk summary persistence sound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.program import ProgramContext
from ..syntax import ast, pretty

_IDENT = re.compile(r"[A-Za-z_]\w*")

#: field-name tuples per AST class (``None`` for non-dataclasses),
#: excluding ``span`` — computed once instead of per node visit.
_FIELDS: Dict[type, Optional[Tuple[str, ...]]] = {}


def _field_names(cls: type) -> Optional[Tuple[str, ...]]:
    try:
        return _FIELDS[cls]
    except KeyError:
        names = tuple(f.name for f in dataclasses.fields(cls)
                      if f.name != "span") \
            if dataclasses.is_dataclass(cls) else None
        _FIELDS[cls] = names
        return names


def collect_names(node) -> Set[str]:
    """Every string embedded in an AST subtree (identifiers, field
    names, state names, ...).  Over-approximates the set of referenced
    declarations, which can only over-invalidate, never under-."""
    names: Set[str] = set()
    add = names.add
    stack = [node]
    push = stack.append
    while stack:
        n = stack.pop()
        cls = n.__class__
        if cls is str:
            add(n)
        elif cls is list or cls is tuple:
            for item in n:
                push(item)
        else:
            fields = _field_names(cls)
            if fields:
                for name in fields:
                    push(getattr(n, name))
    return names


def _render_struct(info) -> str:
    fields = ";".join(f"{name}:{ctype.show()}" for name, ctype in info.fields)
    return f"struct {info.name}<{info.params}>{{{fields}}}"


def _render_variant(info) -> str:
    ctors = ";".join(
        f"{c.name}({','.join(t.show() for t in c.arg_types)})"
        f"{{{','.join(f'{k}@{req!s}' for k, req in c.key_attach)}}}"
        for c in info.ctors)
    return f"variant {info.name}<{info.params}>{{{ctors}}}"


def _render_alias(info) -> str:
    rhs = pretty(info.rhs) if info.rhs is not None else "<abstract>"
    return f"type {info.name}<{info.params}>={rhs} owner={info.owner}"


def _render_stateset(sset) -> str:
    return f"stateset {sset.name}{{{sset.states}}} order={sset.edges}"


def _render_global_key(info) -> str:
    return f"key {info.name}:{info.stateset}@{info.initial}"


def _sig_show(sig) -> str:
    """``Signature.show()``, memoised on the signature object (stdlib
    signatures are shared by every context layered on the cached base,
    so each renders once per process)."""
    cached = sig.__dict__.get("_pl_show")
    if cached is None:
        cached = sig.show()
        object.__setattr__(sig, "_pl_show", cached)
    return cached


def _declared_names(ctx: ProgramContext) -> frozenset:
    """Every name that resolves to *something* in this context —
    including the bare member part of qualified function names, which
    is how ``M.f`` call sites appear in a collected name set."""
    names = ctx.__dict__.get("_pl_decl_names")
    if names is None:
        collected: Set[str] = set()
        collected.update(ctx.structs)
        collected.update(ctx.variants)
        collected.update(ctx.ctor_index)
        collected.update(ctx.type_decls)
        collected.update(ctx.statespace.sets)
        collected.update(ctx.global_keys)
        collected.update(ctx.modules)
        for qual in ctx.functions:
            collected.add(qual)
            _, dot, member = qual.rpartition(".")
            if dot:
                collected.add(member)
        names = frozenset(collected)
        ctx.__dict__["_pl_decl_names"] = names
    return names


def _module_members(ctx: ProgramContext) -> Dict[str, Dict[str, object]]:
    """``module name -> {member name -> (qual, signature)}`` for every
    qualified function, built once per context: the fixpoint below
    resolves ``M.f`` call sites per function, and scanning the whole
    ``ctx.functions`` table for each one was quadratic in unit size
    (the dominant fingerprint cost on multi-hundred-function units)."""
    index = ctx.__dict__.get("_pl_module_members")
    if index is None:
        index = {}
        for qual, sig in ctx.functions.items():
            mod, dot, member = qual.rpartition(".")
            if dot:
                index.setdefault(mod, {})[member] = (qual, sig)
        ctx.__dict__["_pl_module_members"] = index
    return index


def dependency_renderings(ctx: ProgramContext, names: Iterable[str],
                          module: str = "") -> List[str]:
    """Stable renderings of every declaration the name set can reach.

    Runs a small fixpoint: identifiers appearing in an included
    rendering (e.g. a type name inside a callee's signature) pull in
    their own declarations, so deep layout/protocol changes propagate
    into the fingerprint of every (transitive) user.

    Memoised per context on the *relevant* name subset: names that
    resolve to no declaration at all (locals, field names, state
    literals of undeclared sets) cannot contribute renderings, so two
    functions whose name sets differ only in such noise share one
    fixpoint run.  Contexts are immutable once built (the session's
    context cache hands out finished elaborations), which is what
    makes caching on the instance sound.
    """
    relevant = frozenset(names) & _declared_names(ctx)
    memo: Dict[Tuple[str, frozenset], List[str]] = \
        ctx.__dict__.setdefault("_pl_dep_memo", {})
    memo_key = (module, relevant)
    cached = memo.get(memo_key)
    if cached is not None:
        return cached
    names = relevant
    rendered: Dict[str, str] = {}
    initial = set(names)
    pending = set(initial)
    seen: Set[str] = set()

    def include(key: str, text: str) -> None:
        if key not in rendered:
            rendered[key] = text
            pending.update(_IDENT.findall(text))

    while pending:
        name = pending.pop()
        if name in seen:
            continue
        seen.add(name)
        info = ctx.structs.get(name)
        if info is not None:
            include(f"s:{name}", _render_struct(info))
        vinfo = ctx.variants.get(name)
        if vinfo is not None:
            include(f"v:{name}", _render_variant(vinfo))
        vname = ctx.ctor_index.get(name)
        if vname is not None:
            include(f"v:{vname}", _render_variant(ctx.variants[vname]))
        tinfo = ctx.type_decls.get(name)
        if tinfo is not None and tinfo.kind == "alias":
            include(f"t:{name}", _render_alias(tinfo))
        sset = ctx.statespace.sets.get(name)
        if sset is not None:
            include(f"ss:{name}", _render_stateset(sset))
        kinfo = ctx.global_keys.get(name)
        if kinfo is not None:
            include(f"k:{name}", _render_global_key(kinfo))
        sig = ctx.functions.get(name)
        if sig is not None:
            include(f"f:{name}", _sig_show(sig))
        if module:
            qual = f"{module}.{name}"
            sig = ctx.functions.get(qual)
            if sig is not None:
                include(f"f:{qual}", _sig_show(sig))
        # Module-qualified calls appear as ``M.f``: the AST walk
        # collects ``M`` and ``f`` separately, so when this name is a
        # module, include the signatures of its members that the
        # function mentions.
        if name in ctx.modules:
            members = _module_members(ctx).get(name)
            if members:
                for member, (qual, qsig) in members.items():
                    if member in initial:
                        include(f"f:{qual}", _sig_show(qsig))
    result = sorted(rendered.values())
    memo[memo_key] = result
    return result


def cache_checksum(blob: bytes) -> str:
    """Content checksum (hex SHA-256) for on-disk cache payloads.

    The summary-cache file embeds this over its pickled body so a
    torn write or bit rot is *detected* at load time — corruption
    becomes a quarantine-and-rebuild, never a silently wrong replay.
    The shared store (``repro.cache``) reuses it for both its blob
    envelopes and its store keys, so every byte the checker persists
    or ships over the wire carries the same checksum discipline.
    Lives here with the other content-hashing so every stable hash
    the pipeline persists is derived in one module.
    """
    return hashlib.sha256(blob).hexdigest()


def function_fingerprint(ctx: ProgramContext, qual: str, fundef: ast.FunDef,
                         own_text: str) -> str:
    """The summary cache key for one function definition."""
    module = qual.rpartition(".")[0]
    # The name set is a function of the AST alone; the pipeline's chunk
    # cache reuses FunDef objects across checks, so memoise it on the
    # definition itself.
    names = fundef.__dict__.get("_pl_names")
    if names is None:
        names = frozenset(collect_names(fundef))
        object.__setattr__(fundef, "_pl_names", names)
    deps = dependency_renderings(ctx, names, module)
    h = hashlib.sha256()
    h.update(qual.encode())
    h.update(b"\x00")
    h.update(own_text.encode())
    for dep in deps:
        h.update(b"\x00")
        h.update(dep.encode())
    return h.hexdigest()
