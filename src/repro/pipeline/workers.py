"""A supervised fork-server worker pool for parallel flow checking.

Workers are forked **once** per elaborated context and stay warm for
subsequent ``check()`` calls against that context — they inherit the
context, the interned type tables and the warmed-up bytecode through
fork, so nothing is pickled on the way in.  The unit of communication
is a **batch** (one length-prefixed pickle frame out with a dispatch
id and a list of qualified names, one frame back with all results)
over plain ``os.pipe`` pairs — no locks, no feeder threads, no shared
queues.

The parent side is a *supervisor*, not a bare dispatcher.  A worker
failure used to abandon parallelism for a full serial re-check of
everything; now the pool degrades in the smallest possible steps:

* a worker that exits, hangs past its deadline, or desyncs its result
  stream is SIGKILLed, reaped (all of its pipe fds closed — no fd leak
  across crash/respawn cycles) and **respawned**, and its batch is
  retried under a fresh dispatch id;
* a batch that fails repeatedly is **bisected** — split in half and
  requeued — so a single poisonous function is isolated in
  ``O(log n)`` failed dispatches while every other function keeps
  checking in parallel;
* an isolated single function gets one final attempt in the parent;
  if even that raises, the function is reported as a structured
  ``V0500`` diagnostic (plus a ``poison_function`` event) instead of
  sinking the run;
* only when recovery is hopeless — the respawn budget is exhausted,
  a fork fails, or too many distinct functions crash the checker —
  does the pool give up, raising :class:`WorkerCrash` that carries the
  **partial results** of every batch that did complete, so the
  session's serial fallback re-checks only what is actually missing.

Each step is published on the session's event log (``worker_respawn``,
``worker_timeout``, ``batch_retry``, ``batch_bisect``,
``poison_function``/``poison_recovered``) and counted under the
``resilience.*`` metrics, so a degraded run is visible and
attributable after the fact.

Deadlines come from the scheduler's cost model
(:func:`repro.pipeline.scheduler.batch_deadline`): a batch may take a
generous multiple of its estimated cost, never less than the
``--batch-timeout`` floor.

When the session's telemetry is enabled, each worker records its own
spans (per-function ``check_function``) and metric deltas and ships
them back in the ``ok`` result frame; the parent absorbs them, so one
Chrome trace shows the main process and every worker as separate pid
tracks.  The :mod:`repro.pipeline.faults` harness hooks into the
worker loop (dispatch-keyed crash/hang/EOF/garbage faults, per-
function poison) to make every recovery path above deterministically
testable.
"""

from __future__ import annotations

import os
import pickle
import selectors
import signal
import struct
import time
import traceback
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core import check_function_diagnostics
from ..diagnostics import Code, Diagnostic
from ..obs import (EventLog, MetricsRegistry, NULL_METRICS, NULL_TRACER,
                   Telemetry, Tracer)
from ..obs.trace import activate as activate_tracer
from .faults import FaultPlan
from .scheduler import DEFAULT_BATCH_TIMEOUT, batch_deadline

_HEADER = struct.Struct("!I")

#: dispatches of one batch before the supervisor stops retrying it
#: as-is and bisects (or, at one function, serializes) it.
MAX_BATCH_ATTEMPTS = 2

#: worker respawns per ``check_batches`` call before the pool gives
#: up and surfaces a :class:`WorkerCrash` with partial results.
MAX_RESPAWNS = 8

#: distinct functions allowed to crash the checker before the pool
#: concludes the problem is not the functions and gives up.
MAX_POISONED = 3

#: reply payloads above this are treated as stream corruption.
_MAX_FRAME = 1 << 30

#: how long a hang-injected worker sleeps (the watchdog kills it long
#: before; the constant only bounds an unsupervised escape).
_HANG_SECONDS = 600.0

#: counters pre-registered at pool creation so no-fault runs report
#: explicit zeros (the benchmark and ``vaultc stats`` read them).
RESILIENCE_COUNTERS = ("resilience.respawns", "resilience.retries",
                       "resilience.bisections", "resilience.timeouts",
                       "resilience.poisoned")


class WorkerCrash(RuntimeError):
    """The pool could not recover; carries the child traceback (when
    one exists) and the partial results of batches that completed."""

    def __init__(self, message: str, child_traceback: str = "",
                 partial: Optional[Dict[str, Tuple[Tuple[Diagnostic, ...],
                                                   float]]] = None):
        super().__init__(message)
        self.child_traceback = child_traceback
        self.partial = dict(partial) if partial else {}


class _GiveUp(Exception):
    """Internal: recovery is hopeless, unwind to the serial fallback."""

    def __init__(self, reason: str, child_traceback: str = ""):
        super().__init__(reason)
        self.reason = reason
        self.child_traceback = child_traceback


def fork_available() -> bool:
    return hasattr(os, "fork") and hasattr(os, "pipe")


# -- framed pipe I/O ---------------------------------------------------------

def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    parts: List[bytes] = []
    remaining = n
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            return None          # EOF: the other end is gone
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def _write_frame(fd: int, obj: object) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    _write_all(fd, _HEADER.pack(len(payload)) + payload)


def _read_frame(fd: int) -> Optional[object]:
    header = _read_exact(fd, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    payload = _read_exact(fd, length)
    if payload is None:
        return None
    return pickle.loads(payload)


# -- the worker side ---------------------------------------------------------

def _worker_loop(ctx, cmd_fd: int, result_fd: int,
                 join_abstraction: bool, max_loop_iterations: int,
                 trace: bool, metrics_on: bool,
                 fault_plan: Optional[FaultPlan] = None) -> None:
    """Runs in the forked child until told to exit (never returns)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    pid = os.getpid()
    tracer = Tracer(process_name=f"checker worker {pid}") if trace \
        else NULL_TRACER
    metrics = MetricsRegistry() if metrics_on else NULL_METRICS
    events = EventLog()
    with activate_tracer(tracer):
        while True:
            message = _read_frame(cmd_fd)
            if message is None or message[0] == "exit":
                os._exit(0)
            _tag, dispatch_id, quals = message
            fault = fault_plan.dispatch_fault(dispatch_id) \
                if fault_plan else None
            if fault == "crash":
                os._exit(9)
            if fault == "hang":
                time.sleep(_HANG_SECONDS)
                os._exit(9)
            if fault == "eof":
                os.close(result_fd)
                os._exit(0)
            if fault == "garbage":
                _write_all(result_fd, _HEADER.pack(24) + b"\xde\xad" * 12)
                continue
            results: List[Tuple[str, Tuple[Diagnostic, ...], float]] = []
            qual = "<none>"
            try:
                with tracer.span("worker_batch", functions=len(quals)):
                    for qual in quals:
                        if fault_plan is not None \
                                and fault_plan.poisoned(qual):
                            os._exit(11)
                        started = time.perf_counter()
                        with tracer.span("check_function", function=qual):
                            diags = check_function_diagnostics(
                                ctx, qual, ctx.fun_defs[qual],
                                join_abstraction=join_abstraction,
                                max_loop_iterations=max_loop_iterations)
                        cost = time.perf_counter() - started
                        if metrics.enabled:
                            metrics.counter(
                                "workers.functions_checked").inc()
                            metrics.histogram(
                                "check.function_seconds").observe(cost)
                        results.append((qual, tuple(diags), cost))
                obs = None
                if trace or metrics_on or events.records:
                    obs = {"events": events.drain(),
                           "spans": tracer.drain(),
                           "metrics": metrics.drain()}
                _write_frame(result_fd, ("ok", dispatch_id, results, obs))
            except BaseException:
                try:
                    _write_frame(result_fd, ("err", dispatch_id, qual,
                                             traceback.format_exc()))
                except BaseException:
                    os._exit(1)


class _Worker:
    __slots__ = ("pid", "cmd_fd", "result_fd", "buf")

    def __init__(self, pid: int, cmd_fd: int, result_fd: int):
        self.pid = pid
        self.cmd_fd = cmd_fd
        self.result_fd = result_fd
        self.buf = b""

    def close_fds(self) -> None:
        """Close both parent-side pipe ends exactly once; safe to call
        repeatedly and after partial failures."""
        for attr in ("cmd_fd", "result_fd"):
            fd = getattr(self, attr)
            if fd >= 0:
                setattr(self, attr, -1)
                try:
                    os.close(fd)
                except OSError:
                    pass


class _BatchJob:
    """One unit of supervised work: a list of quals plus its retry
    history and estimated cost (the watchdog deadline's input)."""

    __slots__ = ("quals", "cost", "attempts")

    def __init__(self, quals: List[str], cost: Optional[float],
                 attempts: int = 0):
        self.quals = list(quals)
        self.cost = cost
        self.attempts = attempts


class _RunState:
    """Book-keeping for one supervised ``check_batches`` call."""

    __slots__ = ("queue", "results", "poisoned", "busy", "idle", "sel",
                 "last_child_tb")

    def __init__(self, sel: selectors.BaseSelector):
        self.queue: Deque[_BatchJob] = deque()
        self.results: Dict[str, Tuple[Tuple[Diagnostic, ...], float]] = {}
        self.poisoned: set = set()
        #: worker -> (job, dispatch_id, absolute deadline)
        self.busy: Dict[_Worker, Tuple[_BatchJob, int, float]] = {}
        self.idle: List[_Worker] = []
        self.sel = sel
        self.last_child_tb = ""


#: sentinels for the incremental frame reader.
_PARTIAL = object()
_CORRUPT = object()


# -- the parent side ---------------------------------------------------------

class WorkerPool:
    """``jobs`` forked checkers bound to one elaborated context.

    The pool holds a strong reference to the context it was forked
    with: the session reuses the pool only while checking against the
    *same* context object and discards it when the context changes (an
    edit produced a new elaboration the children have never seen).
    """

    def __init__(self, ctx, jobs: int,
                 join_abstraction: bool, max_loop_iterations: int,
                 telemetry: Optional[Telemetry] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 batch_timeout: float = DEFAULT_BATCH_TIMEOUT):
        self.ctx = ctx
        self.jobs = jobs
        self.join_abstraction = join_abstraction
        self.max_loop_iterations = max_loop_iterations
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.fault_plan = fault_plan
        self.batch_timeout = batch_timeout
        self._workers: List[_Worker] = []
        self._closed = False
        self._dispatch_seq = 0
        self._respawns = 0
        #: when this pool last did (or finished) work — long-lived
        #: hosts (the check daemon) reap pools idle past a linger.
        self.last_used = time.monotonic()
        if self.telemetry.metrics.enabled:
            for name in RESILIENCE_COUNTERS:
                self.telemetry.metrics.counter(name)
        try:
            for _ in range(jobs):
                self._spawn_one()
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    def _spawn_one(self) -> _Worker:
        cmd_r, cmd_w = os.pipe()
        result_r, result_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: drop the parent ends — ours and every previously
            # spawned sibling's, so a sibling's pipes see EOF as soon
            # as the parent alone closes them.
            try:
                os.close(cmd_w)
                os.close(result_r)
                for sibling in self._workers:
                    for fd in (sibling.cmd_fd, sibling.result_fd):
                        if fd >= 0:
                            os.close(fd)
                _worker_loop(self.ctx, cmd_r, result_w,
                             self.join_abstraction,
                             self.max_loop_iterations,
                             self.telemetry.tracer.enabled,
                             self.telemetry.metrics.enabled,
                             self.fault_plan)
            finally:
                os._exit(1)
        os.close(cmd_r)
        os.close(result_w)
        worker = _Worker(pid, cmd_w, result_r)
        self._workers.append(worker)
        return worker

    def matches(self, ctx, jobs: int, join_abstraction: bool,
                max_loop_iterations: int) -> bool:
        """Can this pool serve a request with these parameters?"""
        return (not self._closed
                and ctx is self.ctx
                and jobs <= len(self._workers)
                and join_abstraction == self.join_abstraction
                and max_loop_iterations == self.max_loop_iterations)

    def close(self) -> None:
        """Shut workers down.  Idempotent, and robust to children that
        already died (or were reaped) before or during the close."""
        if self._closed:
            return
        self._closed = True
        workers, self._workers = self._workers, []
        for worker in workers:
            if worker.cmd_fd >= 0:
                try:
                    _write_frame(worker.cmd_fd, ("exit",))
                except OSError:
                    pass
            worker.close_fds()
        for worker in workers:
            self._reap(worker)

    @staticmethod
    def _reap(worker: _Worker, patience: float = 5.0) -> None:
        if worker.pid <= 0:
            return
        deadline = time.monotonic() + patience
        while time.monotonic() < deadline:
            try:
                pid, _status = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                worker.pid = -1
                return
            if pid:
                worker.pid = -1
                return
            time.sleep(0.01)
        try:
            os.kill(worker.pid, signal.SIGKILL)
            os.waitpid(worker.pid, 0)
        except (ChildProcessError, ProcessLookupError, OSError):
            pass
        worker.pid = -1

    def __del__(self):  # best-effort; explicit close() is the API
        try:
            self.close()
        except BaseException:
            pass

    # -- checking ------------------------------------------------------------

    def check_batches(self, batches: Sequence[Sequence[str]],
                      costs: Optional[Sequence[float]] = None
                      ) -> Dict[str, Tuple[Tuple[Diagnostic, ...], float]]:
        """Run the batches under supervision; map qual -> (diags, s).

        ``costs`` (the scheduler's per-batch estimates) size the
        watchdog deadlines.  Worker crashes, hangs and stream
        corruption are recovered in-place (respawn / retry / bisect /
        serialize-one); :class:`WorkerCrash` is raised only when the
        pool as a whole is beyond saving, and then carries the partial
        results so the caller need not redo completed work.
        """
        if self._closed:
            raise WorkerCrash("worker pool is closed")
        if not self._workers:
            raise WorkerCrash("worker pool has no workers")
        self.last_used = time.monotonic()
        self._respawns = 0
        sel = selectors.DefaultSelector()
        state = _RunState(sel)
        batch_costs: List[Optional[float]] = list(costs) if costs else \
            [None] * len(batches)
        for quals, cost in zip(batches, batch_costs):
            state.queue.append(_BatchJob(list(quals), cost))
        try:
            for worker in self._workers:
                sel.register(worker.result_fd, selectors.EVENT_READ, worker)
                state.idle.append(worker)
            self._supervise(state)
        except _GiveUp as exc:
            self._final_drain(state)
            for worker in list(state.busy):
                self._retire(worker, state)
            partial = {qual: res for qual, res in state.results.items()
                       if qual not in state.poisoned}
            raise WorkerCrash(exc.reason, exc.child_traceback,
                              partial=partial) from None
        finally:
            sel.close()
            self.last_used = time.monotonic()
        return state.results

    def idle_seconds(self) -> float:
        """Seconds since this pool last started or finished a run."""
        return time.monotonic() - self.last_used

    # -- the supervision loop ------------------------------------------------

    def _supervise(self, state: _RunState) -> None:
        while state.queue or state.busy:
            self._dispatch_pending(state)
            if not state.busy:
                continue
            now = time.monotonic()
            timeout = max(0.0, min(deadline for _job, _did, deadline
                                   in state.busy.values()) - now)
            for key, _mask in state.sel.select(timeout):
                worker = key.data
                self._on_readable(worker, state)
            now = time.monotonic()
            expired = [worker for worker, (_job, _did, deadline)
                       in state.busy.items() if deadline <= now]
            for worker in expired:
                self._on_timeout(worker, state)

    def _dispatch_pending(self, state: _RunState) -> None:
        while state.queue and state.idle:
            worker = state.idle.pop()
            job = state.queue.popleft()
            dispatch_id = self._dispatch_seq
            self._dispatch_seq += 1
            try:
                _write_frame(worker.cmd_fd, ("batch", dispatch_id,
                                             list(job.quals)))
            except OSError:
                # The worker died while idle; replace it and re-offer
                # the job (no attempt charged — it never ran).
                state.queue.appendleft(job)
                self._retire(worker, state)
                self._respawn_into(state)
                continue
            deadline = time.monotonic() + batch_deadline(job.cost,
                                                         self.batch_timeout)
            state.busy[worker] = (job, dispatch_id, deadline)

    def _on_readable(self, worker: _Worker, state: _RunState) -> None:
        frame = self._read_ready(worker)
        if frame is _PARTIAL:
            return
        entry = state.busy.pop(worker, None)
        job = entry[0] if entry is not None else None
        if frame is None or frame is _CORRUPT or not isinstance(frame, tuple):
            kind = "crash" if frame is None else "garbage"
            reason = ("worker exited unexpectedly" if kind == "crash" else
                      "worker result stream corrupt")
            self._crash_event(worker.pid,
                              job.quals if job is not None else (), "",
                              reason)
            self._retire(worker, state)
            self._respawn_into(state)
            if job is not None:
                self._job_failed(job, state, kind, "")
            return
        if frame[0] == "ok":
            _tag, _dispatch_id, batch_results, obs = frame
            for qual, diags, cost in batch_results:
                state.results[qual] = (tuple(diags), cost)
            if obs:
                self.telemetry.events.absorb(obs.get("events") or [])
                self.telemetry.tracer.absorb(obs.get("spans") or [])
                self.telemetry.metrics.merge(obs.get("metrics"))
            state.idle.append(worker)
            return
        if frame[0] == "err" and job is not None:
            _tag, _dispatch_id, qual, child_tb = frame
            state.last_child_tb = child_tb
            self._crash_event(worker.pid, job.quals, child_tb,
                              f"worker raised while checking '{qual}'")
            # The worker survived (it framed the error itself): keep
            # it.  The culprit is attributed, so skip the bisection
            # dance — requeue the untouched remainder and settle the
            # culprit in the parent.
            state.idle.append(worker)
            rest = [q for q in job.quals
                    if q != qual and q not in state.results]
            if rest:
                per = job.cost / len(job.quals) \
                    if job.cost and job.quals else None
                state.queue.append(_BatchJob(
                    rest, per * len(rest) if per else None, job.attempts))
            self._resolve_poison(qual, state, child_tb)
            return
        # Unknown tag, or a reply from a worker we did not ask:
        # protocol desync — treat like corruption.
        self._crash_event(worker.pid, job.quals if job is not None else (),
                          "", "worker protocol desync")
        self._retire(worker, state)
        self._respawn_into(state)
        if job is not None:
            self._job_failed(job, state, "desync", "")

    def _on_timeout(self, worker: _Worker, state: _RunState) -> None:
        entry = state.busy.pop(worker, None)
        if entry is None:
            return
        job, _dispatch_id, deadline = entry
        self._bump("timeouts")
        self.telemetry.events.emit(
            "worker_timeout",
            f"checker worker (pid {worker.pid}) exceeded its batch "
            f"deadline; killing and respawning",
            pid=worker.pid, functions=list(job.quals),
            deadline_seconds=batch_deadline(job.cost, self.batch_timeout))
        self._retire(worker, state)
        self._respawn_into(state)
        self._job_failed(job, state, "timeout", "")

    def _job_failed(self, job: _BatchJob, state: _RunState,
                    kind: str, child_tb: str) -> None:
        job.attempts += 1
        if job.attempts < MAX_BATCH_ATTEMPTS:
            self._bump("retries")
            self.telemetry.events.emit(
                "batch_retry",
                f"retrying batch of {len(job.quals)} function(s) after "
                f"{kind} (attempt {job.attempts + 1})",
                functions=list(job.quals), attempt=job.attempts + 1,
                cause=kind)
            state.queue.append(job)
            return
        if len(job.quals) > 1:
            self._bump("bisections")
            mid = len(job.quals) // 2
            left, right = job.quals[:mid], job.quals[mid:]
            per = job.cost / len(job.quals) if job.cost else None
            self.telemetry.events.emit(
                "batch_bisect",
                f"batch of {len(job.quals)} function(s) failed "
                f"{job.attempts} time(s); bisecting to isolate the "
                f"offender",
                functions=list(job.quals), left=left, right=right,
                cause=kind)
            # The halves inherit one strike: the parent batch already
            # failed MAX_BATCH_ATTEMPTS times, so its pieces are
            # suspect — giving each a fresh retry doubles the crash
            # count per bisection level and can exhaust the respawn
            # budget before the offender is cornered.
            state.queue.append(_BatchJob(left, per * len(left) if per
                                         else None,
                                         attempts=MAX_BATCH_ATTEMPTS - 1))
            state.queue.append(_BatchJob(right, per * len(right) if per
                                         else None,
                                         attempts=MAX_BATCH_ATTEMPTS - 1))
            return
        self._resolve_poison(job.quals[0], state, child_tb)

    def _resolve_poison(self, qual: str, state: _RunState,
                        child_tb: str) -> None:
        """A single function is left holding the blame: check it once
        in the parent.  Success means the fault was worker-local or
        transient; failure makes it a structured diagnostic."""
        started = time.perf_counter()
        try:
            with self.telemetry.tracer.span("poison_isolate",
                                            function=qual):
                diags = tuple(check_function_diagnostics(
                    self.ctx, qual, self.ctx.fun_defs[qual],
                    join_abstraction=self.join_abstraction,
                    max_loop_iterations=self.max_loop_iterations))
        except Exception:
            tb = traceback.format_exc()
            state.poisoned.add(qual)
            self._bump("poisoned")
            self.telemetry.events.emit(
                "poison_function",
                f"checking '{qual}' crashes the checker; isolated and "
                f"reported as a diagnostic",
                function=qual, traceback=tb, recovered=False)
            fundef = self.ctx.fun_defs[qual]
            diag = Diagnostic(
                Code.CHECKER_INTERNAL,
                f"the checker itself crashed on '{qual}'; the function "
                f"was isolated and its protocol status is unknown",
                fundef.span,
                notes=["every other function was checked normally; "
                       "see the poison_function event for the traceback"])
            state.results[qual] = ((diag,),
                                   time.perf_counter() - started)
            if len(state.poisoned) > MAX_POISONED:
                raise _GiveUp(
                    f"{len(state.poisoned)} functions crashed the "
                    f"checker — the fault is unlikely to be in the "
                    f"functions", tb or child_tb)
        else:
            self.telemetry.events.emit(
                "poison_recovered",
                f"'{qual}' was blamed for a worker failure but checks "
                f"cleanly in the parent (transient or worker-local "
                f"fault)",
                function=qual, recovered=True)
            state.results[qual] = (diags, time.perf_counter() - started)

    # -- worker replacement --------------------------------------------------

    def _respawn_into(self, state: _RunState) -> None:
        if self._respawns >= MAX_RESPAWNS:
            raise _GiveUp(
                f"worker respawn budget exhausted "
                f"({self._respawns} respawns)", state.last_child_tb)
        try:
            worker = self._spawn_one()
        except OSError as exc:
            raise _GiveUp(f"could not respawn checker worker: {exc}")
        self._respawns += 1
        self._bump("respawns")
        self.telemetry.events.emit(
            "worker_respawn",
            f"respawned checker worker (pid {worker.pid}, "
            f"respawn {self._respawns} of this run)",
            pid=worker.pid, respawns=self._respawns)
        state.sel.register(worker.result_fd, selectors.EVENT_READ, worker)
        state.idle.append(worker)

    def _retire(self, worker: _Worker, state: _RunState) -> None:
        """Remove a worker from the run and the pool: unregister,
        SIGKILL, close both fds, reap.  Every failure path funnels
        through here, so repeated crash/respawn cycles cannot leak
        fds or zombies."""
        if worker.result_fd >= 0:
            try:
                state.sel.unregister(worker.result_fd)
            except (KeyError, ValueError):
                pass
        state.busy.pop(worker, None)
        if worker in state.idle:
            state.idle.remove(worker)
        if worker in self._workers:
            self._workers.remove(worker)
        if worker.pid > 0:
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
        worker.close_fds()
        self._reap(worker, patience=1.0)

    def _read_ready(self, worker: _Worker):
        """One read after the selector reported readability; returns a
        decoded frame, ``_PARTIAL`` (more bytes needed), ``None`` on
        EOF, or ``_CORRUPT`` on an undecodable payload."""
        try:
            chunk = os.read(worker.result_fd, 1 << 16)
        except OSError:
            return None
        if not chunk:
            return None
        worker.buf += chunk
        if len(worker.buf) < _HEADER.size:
            return _PARTIAL
        (length,) = _HEADER.unpack(worker.buf[:_HEADER.size])
        if length > _MAX_FRAME:
            return _CORRUPT
        end = _HEADER.size + length
        if len(worker.buf) < end:
            return _PARTIAL
        payload = worker.buf[_HEADER.size:end]
        worker.buf = worker.buf[end:]
        try:
            return pickle.loads(payload)
        except Exception:
            return _CORRUPT

    def _final_drain(self, state: _RunState) -> None:
        """Before giving up, briefly collect replies already in
        flight — every result salvaged here is one the serial
        fallback will not re-check."""
        deadline = time.monotonic() + 0.25
        while state.busy and time.monotonic() < deadline:
            events = state.sel.select(0.05)
            if not events:
                continue
            for key, _mask in events:
                worker = key.data
                if worker not in state.busy:
                    continue
                frame = self._read_ready(worker)
                if frame is _PARTIAL:
                    continue
                state.busy.pop(worker, None)
                if isinstance(frame, tuple) and frame and frame[0] == "ok":
                    for qual, diags, cost in frame[2]:
                        state.results[qual] = (tuple(diags), cost)
                    obs = frame[3]
                    if obs:
                        self.telemetry.events.absorb(obs.get("events") or [])
                        self.telemetry.tracer.absorb(obs.get("spans") or [])
                        self.telemetry.metrics.merge(obs.get("metrics"))

    # -- accounting ----------------------------------------------------------

    def _bump(self, name: str, n: int = 1) -> None:
        """Count one resilience action on both surfaces: the metrics
        registry (when enabled) and the session's plain stats."""
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter(f"resilience.{name}").inc(n)
        stats = self.telemetry.stats
        if stats is not None:
            setattr(stats, name, getattr(stats, name, 0) + n)

    def _crash_event(self, pid: int, quals: Sequence[str],
                     child_traceback: str, reason: str) -> None:
        """Publish a structured record of a worker failure — the
        post-hoc attribution the old bare stderr warning lacked."""
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("workers.crashes").inc()
        self.telemetry.events.emit(
            "worker_crash",
            f"checker worker (pid {pid}) failed: {reason}",
            pid=pid, functions=list(quals), reason=reason,
            traceback=child_traceback)
