"""A persistent fork-server worker pool for parallel flow checking.

The previous parallel path built a ``multiprocessing.Pool`` inside
every ``check()`` call and shipped one task per function through the
pool's queues.  Both ends of that were overhead: the pool spawn cost
was paid per call, and the per-task round-trips serialised scheduling
through a single feeder thread.  This pool inverts the design:

* workers are forked **once** per elaborated context and stay warm for
  subsequent ``check()`` calls against that context — they inherit the
  context, the interned type tables and the warmed-up bytecode through
  fork, so nothing is pickled on the way in;
* the unit of communication is a **batch** (one pipe frame out with a
  list of qualified names, one frame back with all results), sized by
  the scheduler so each worker gets one balanced batch per call;
* frames are length-prefixed pickles over plain ``os.pipe`` pairs —
  no locks, no feeder threads, no shared queues.

Workers look function definitions up by qualified name in the forked
context (``ctx.fun_defs``), so the parent never serialises an AST.  A
worker that dies or raises surfaces as :class:`WorkerCrash` carrying
the child's traceback; the pool publishes a structured
``worker_crash`` event (child pid, batch function names, traceback)
on the session's event log, and the session falls back to serial, so
a pool failure can never change the diagnostic stream.

When the session's telemetry is enabled, each worker records its own
spans (per-function ``check_function``) and metric deltas and ships
them back as a third element of the ``ok`` result frame; the parent
absorbs them, so one Chrome trace shows the main process and every
worker as separate pid tracks.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import check_function_diagnostics
from ..diagnostics import Diagnostic
from ..obs import (EventLog, MetricsRegistry, NULL_METRICS, NULL_TRACER,
                   Telemetry, Tracer)
from ..obs.trace import activate as activate_tracer

_HEADER = struct.Struct("!I")


class WorkerCrash(RuntimeError):
    """A pool worker exited or raised; carries the child traceback."""

    def __init__(self, message: str, child_traceback: str = ""):
        super().__init__(message)
        self.child_traceback = child_traceback


def fork_available() -> bool:
    return hasattr(os, "fork") and hasattr(os, "pipe")


# -- framed pipe I/O ---------------------------------------------------------

def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    parts: List[bytes] = []
    remaining = n
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            return None          # EOF: the other end is gone
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def _write_frame(fd: int, obj: object) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    _write_all(fd, _HEADER.pack(len(payload)) + payload)


def _read_frame(fd: int) -> Optional[object]:
    header = _read_exact(fd, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    payload = _read_exact(fd, length)
    if payload is None:
        return None
    return pickle.loads(payload)


# -- the worker side ---------------------------------------------------------

def _worker_loop(ctx, cmd_fd: int, result_fd: int,
                 join_abstraction: bool, max_loop_iterations: int,
                 trace: bool, metrics_on: bool) -> None:
    """Runs in the forked child until told to exit (never returns)."""
    import traceback

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    pid = os.getpid()
    tracer = Tracer(process_name=f"checker worker {pid}") if trace \
        else NULL_TRACER
    metrics = MetricsRegistry() if metrics_on else NULL_METRICS
    events = EventLog()
    with activate_tracer(tracer):
        while True:
            message = _read_frame(cmd_fd)
            if message is None or message[0] == "exit":
                os._exit(0)
            _tag, quals = message
            results: List[Tuple[str, Tuple[Diagnostic, ...], float]] = []
            qual = "<none>"
            try:
                with tracer.span("worker_batch", functions=len(quals)):
                    for qual in quals:
                        started = time.perf_counter()
                        with tracer.span("check_function", function=qual):
                            diags = check_function_diagnostics(
                                ctx, qual, ctx.fun_defs[qual],
                                join_abstraction=join_abstraction,
                                max_loop_iterations=max_loop_iterations)
                        cost = time.perf_counter() - started
                        if metrics.enabled:
                            metrics.counter(
                                "workers.functions_checked").inc()
                            metrics.histogram(
                                "check.function_seconds").observe(cost)
                        results.append((qual, tuple(diags), cost))
                obs = None
                if trace or metrics_on or events.records:
                    obs = {"events": events.drain(),
                           "spans": tracer.drain(),
                           "metrics": metrics.drain()}
                _write_frame(result_fd, ("ok", results, obs))
            except BaseException:
                try:
                    _write_frame(result_fd,
                                 ("err", qual, traceback.format_exc()))
                except BaseException:
                    os._exit(1)


class _Worker:
    __slots__ = ("pid", "cmd_fd", "result_fd")

    def __init__(self, pid: int, cmd_fd: int, result_fd: int):
        self.pid = pid
        self.cmd_fd = cmd_fd
        self.result_fd = result_fd


# -- the parent side ---------------------------------------------------------

class WorkerPool:
    """``jobs`` forked checkers bound to one elaborated context.

    The pool holds a strong reference to the context it was forked
    with: the session reuses the pool only while checking against the
    *same* context object and discards it when the context changes (an
    edit produced a new elaboration the children have never seen).
    """

    def __init__(self, ctx, jobs: int,
                 join_abstraction: bool, max_loop_iterations: int,
                 telemetry: Optional[Telemetry] = None):
        self.ctx = ctx
        self.jobs = jobs
        self.join_abstraction = join_abstraction
        self.max_loop_iterations = max_loop_iterations
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._workers: List[_Worker] = []
        self._closed = False
        try:
            for _ in range(jobs):
                self._spawn_one()
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    def _spawn_one(self) -> None:
        cmd_r, cmd_w = os.pipe()
        result_r, result_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: drop the parent ends — ours and every previously
            # spawned sibling's, so a sibling's pipes see EOF as soon
            # as the parent alone closes them.
            try:
                os.close(cmd_w)
                os.close(result_r)
                for sibling in self._workers:
                    os.close(sibling.cmd_fd)
                    os.close(sibling.result_fd)
                _worker_loop(self.ctx, cmd_r, result_w,
                             self.join_abstraction,
                             self.max_loop_iterations,
                             self.telemetry.tracer.enabled,
                             self.telemetry.metrics.enabled)
            finally:
                os._exit(1)
        os.close(cmd_r)
        os.close(result_w)
        self._workers.append(_Worker(pid, cmd_w, result_r))

    def matches(self, ctx, jobs: int, join_abstraction: bool,
                max_loop_iterations: int) -> bool:
        """Can this pool serve a request with these parameters?"""
        return (not self._closed
                and ctx is self.ctx
                and jobs <= len(self._workers)
                and join_abstraction == self.join_abstraction
                and max_loop_iterations == self.max_loop_iterations)

    def close(self) -> None:
        """Shut workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                _write_frame(worker.cmd_fd, ("exit",))
            except OSError:
                pass
            for fd in (worker.cmd_fd, worker.result_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass
        for worker in self._workers:
            self._reap(worker)
        self._workers = []

    @staticmethod
    def _reap(worker: _Worker) -> None:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                pid, _status = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                return
            if pid:
                return
            time.sleep(0.01)
        try:
            os.kill(worker.pid, signal.SIGKILL)
            os.waitpid(worker.pid, 0)
        except (ChildProcessError, ProcessLookupError, OSError):
            pass

    def __del__(self):  # best-effort; explicit close() is the API
        try:
            self.close()
        except BaseException:
            pass

    # -- checking ------------------------------------------------------------

    def check_batches(self, batches: Sequence[Sequence[str]]
                      ) -> Dict[str, Tuple[Tuple[Diagnostic, ...], float]]:
        """Run one batch per worker; map qual -> (diagnostics, seconds).

        All command frames go out before any reply is read, so the
        workers run concurrently; replies are then drained in worker
        order (each worker sends exactly one frame per batch, so there
        is nothing to poll for).
        """
        if self._closed:
            raise WorkerCrash("worker pool is closed")
        if len(batches) > len(self._workers):
            raise WorkerCrash(
                f"{len(batches)} batches for {len(self._workers)} workers")
        engaged = self._workers[:len(batches)]
        try:
            for worker, quals in zip(engaged, batches):
                _write_frame(worker.cmd_fd, ("batch", list(quals)))
        except OSError as exc:
            raise WorkerCrash(f"worker pipe write failed: {exc}") from exc
        results: Dict[str, Tuple[Tuple[Diagnostic, ...], float]] = {}
        for worker, quals in zip(engaged, batches):
            reply = _read_frame(worker.result_fd)
            if reply is None:
                self._crash_event(worker.pid, quals, "",
                                  "worker exited unexpectedly")
                raise WorkerCrash(
                    f"checker worker (pid {worker.pid}) exited "
                    f"unexpectedly while checking {len(quals)} functions")
            if reply[0] == "err":
                _tag, qual, child_tb = reply
                self._crash_event(worker.pid, quals, child_tb,
                                  f"worker raised while checking '{qual}'")
                raise WorkerCrash(
                    f"checker worker (pid {worker.pid}) crashed "
                    f"while checking '{qual}'", child_tb)
            for qual, diags, cost in reply[1]:
                results[qual] = (diags, cost)
            obs = reply[2] if len(reply) > 2 else None
            if obs:
                self.telemetry.events.absorb(obs.get("events") or [])
                self.telemetry.tracer.absorb(obs.get("spans") or [])
                self.telemetry.metrics.merge(obs.get("metrics"))
        return results

    def _crash_event(self, pid: int, quals: Sequence[str],
                     child_traceback: str, reason: str) -> None:
        """Publish a structured record of a worker failure — the
        post-hoc attribution the old bare stderr warning lacked."""
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("workers.crashes").inc()
        self.telemetry.events.emit(
            "worker_crash",
            f"checker worker (pid {pid}) failed: {reason}",
            pid=pid, functions=list(quals), reason=reason,
            traceback=child_traceback)
