"""Cost-model scheduling for parallel function checking.

Fanning uncached functions out to worker processes only pays off when
the work outweighs the fan-out overhead, and only balances when the
batches carry comparable work.  This module owns both decisions:

* :func:`estimate_cost` — a static per-function cost estimate from the
  definition's AST shape (statement count, branch count, loop nesting);
  flow-checking cost grows with exactly those: every statement runs a
  transfer function, every branch forces a clone + join, every loop
  body is re-analysed up to ``MAX_LOOP_ITERATIONS`` times.
* :func:`plan` — packs functions into one balanced batch per worker
  (LPT bin-packing over estimated or previously *recorded* costs) and
  decides whether parallelism is worth it at all: below the break-even
  point the plan says "serial", so ``--jobs N`` is never slower than
  ``--jobs 1`` on small workloads.
* :func:`resolve_jobs` — turns a ``--jobs`` spec (``"auto"``, ``0`` or
  an explicit count) into a worker count for this machine.

Recorded costs (wall-clock seconds from a previous check of the same
function, persisted in the summary cache) take precedence over the
static estimate when available; the estimate is only the cold-start
fallback.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.checker import MAX_LOOP_ITERATIONS
from ..syntax import ast

#: Estimated seconds of flow-checking per cost unit (one straight-line
#: statement).  Calibrated on the synthetic region-protocol corpus:
#: ~0.4 ms per ~10-statement function.
SECONDS_PER_UNIT = 4e-5

#: Total estimated seconds below which forking is not worth it.  A
#: fork + pipe round-trip costs a few milliseconds per worker; 50 ms
#: of checking is comfortably past that on any machine we target.
BREAK_EVEN_SECONDS = 0.05

#: Headroom multiplier over a batch's estimated cost before the
#: supervisor's watchdog presumes the worker hung.  Deliberately
#: generous: the static estimate is rough, and a false kill costs a
#: respawn + retry, whereas a missed hang only delays by the floor.
TIMEOUT_COST_MULTIPLIER = 25.0

#: Floor (seconds) under every batch deadline — ``vaultc check
#: --batch-timeout`` overrides it.  High enough that no honest batch
#: on the slowest CI box comes near it.
DEFAULT_BATCH_TIMEOUT = 30.0

_BRANCH_UNITS = 4.0    # clone + join at the merge point
_CALL_UNITS = 1.5      # signature instantiation + effect application


_CALL_CLASSES = frozenset((ast.Call, ast.CtorApp, ast.New))

#: per-class field-name tuples for expression nodes (``None`` for
#: anything that is not an expression dataclass) — one dict probe per
#: visited node instead of the isinstance chain this replaces.
_EXPR_FIELDS: Dict[type, Optional[Tuple[str, ...]]] = {}


def _expr_field_names(cls: type) -> Optional[Tuple[str, ...]]:
    try:
        return _EXPR_FIELDS[cls]
    except KeyError:
        names = tuple(f.name for f in dataclasses.fields(cls)
                      if f.name != "span") \
            if (isinstance(cls, type) and issubclass(cls, ast.Expr)
                and dataclasses.is_dataclass(cls)) else None
        _EXPR_FIELDS[cls] = names
        return names


def _expr_units(expr: ast.Expr) -> float:
    """Calls dominate expression cost; everything else is noise."""
    units = 0.0
    stack: List[object] = [expr]
    push = stack.append
    while stack:
        node = stack.pop()
        cls = node.__class__
        fields = _EXPR_FIELDS.get(cls)
        if fields is None and cls not in _EXPR_FIELDS:
            fields = _expr_field_names(cls)
        if fields is not None:
            if cls in _CALL_CLASSES:
                units += _CALL_UNITS
            for name in fields:
                push(getattr(node, name))
        elif cls is list or cls is tuple:
            stack.extend(node)
    return units


def _stmt_units(stmt: ast.Stmt) -> float:
    units = 1.0
    if isinstance(stmt, ast.Block):
        return sum(_stmt_units(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        units += _BRANCH_UNITS + _expr_units(stmt.cond)
        units += _stmt_units(stmt.then)
        if stmt.orelse is not None:
            units += _stmt_units(stmt.orelse)
        return units
    if isinstance(stmt, ast.While):
        # The checker re-analyses loop bodies to a bounded fixpoint.
        body = _BRANCH_UNITS + _expr_units(stmt.cond) + _stmt_units(stmt.body)
        return units + body * MAX_LOOP_ITERATIONS
    if isinstance(stmt, ast.Switch):
        units += _BRANCH_UNITS * max(1, len(stmt.cases))
        units += _expr_units(stmt.scrutinee)
        for case in stmt.cases:
            units += sum(_stmt_units(s) for s in case.body)
        return units
    if isinstance(stmt, ast.LocalFun):
        return units + _fun_units(stmt.fundef)
    for name in getattr(stmt, "__dataclass_fields__", ()):
        if name == "span":
            continue
        value = getattr(stmt, name)
        if isinstance(value, ast.Expr):
            units += _expr_units(value)
    return units


def _fun_units(fundef: ast.FunDef) -> float:
    return 2.0 + _stmt_units(fundef.body)


def estimate_cost(fundef: ast.FunDef) -> float:
    """Estimated flow-checking seconds for one definition (memoised on
    the AST node — the chunk cache reuses FunDef objects across
    checks)."""
    cached = fundef.__dict__.get("_pl_cost")
    if cached is None:
        cached = _fun_units(fundef) * SECONDS_PER_UNIT
        object.__setattr__(fundef, "_pl_cost", cached)
    return cached


def resolve_jobs(spec: Union[int, str, None]) -> int:
    """Turn a ``--jobs`` spec into a concrete worker count.

    ``"auto"``, ``0`` and ``None`` mean "one worker per available
    CPU" — the CPUs this process may actually run on, not the machine
    total (they differ under cgroup/affinity limits).
    """
    if spec is None:
        return available_cpus()
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in ("auto", ""):
            return available_cpus()
        spec = int(text)
    if spec <= 0:
        return available_cpus()
    return int(spec)


def batch_deadline(est_cost: Optional[float],
                   floor: float = DEFAULT_BATCH_TIMEOUT) -> float:
    """Seconds a worker may spend on one batch before the watchdog
    SIGKILLs and respawns it.

    Derived from the same cost model that sized the batch (recorded
    wall-clock costs when available, the static estimate otherwise),
    scaled by :data:`TIMEOUT_COST_MULTIPLIER` and clamped to ``floor``.
    """
    cost = float(est_cost) if est_cost and est_cost > 0 else 0.0
    return max(float(floor), cost * TIMEOUT_COST_MULTIPLIER)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass
class Plan:
    """The scheduler's verdict for one batch of uncached functions.

    ``batches`` holds indices into the caller's work list, one batch
    per worker, each batch in ascending (original) index order so a
    worker checks its share in deterministic order.
    """

    parallel: bool
    batches: List[List[int]] = field(default_factory=list)
    batch_costs: List[float] = field(default_factory=list)
    total_cost: float = 0.0
    reason: str = ""

    def describe(self) -> str:
        if not self.parallel:
            return f"serial ({self.reason})"
        loads = ", ".join(f"{c * 1000:.1f}ms" for c in self.batch_costs)
        return (f"{len(self.batches)} workers, est. "
                f"{self.total_cost * 1000:.1f}ms total [{loads}]")


def plan(items: Sequence[Tuple[str, ast.FunDef]],
         jobs: int,
         recorded_costs: Optional[Dict[str, float]] = None,
         break_even_seconds: float = BREAK_EVEN_SECONDS) -> Plan:
    """Pack ``(qual, fundef)`` work items into balanced worker batches.

    Longest-processing-time bin-packing: sort by descending cost, give
    each item to the least-loaded worker.  LPT is within 4/3 of the
    optimal makespan, which is far tighter than the naive contiguous
    split when costs are skewed (one pathological function no longer
    drags a whole contiguous slice with it).
    """
    costs: List[float] = []
    for qual, fundef in items:
        recorded = recorded_costs.get(qual) if recorded_costs else None
        costs.append(recorded if recorded is not None
                     else estimate_cost(fundef))
    total = sum(costs)
    jobs = min(jobs, len(items))
    if jobs < 2 or len(items) < 2:
        return Plan(parallel=False, total_cost=total,
                    reason="single worker")
    if total < break_even_seconds:
        return Plan(parallel=False, total_cost=total,
                    reason=f"est. {total * 1000:.1f}ms under "
                           f"{break_even_seconds * 1000:.0f}ms break-even")
    order = sorted(range(len(items)), key=lambda i: costs[i], reverse=True)
    batches: List[List[int]] = [[] for _ in range(jobs)]
    heap: List[Tuple[float, int]] = [(0.0, w) for w in range(jobs)]
    heapq.heapify(heap)
    for i in order:
        load, worker = heapq.heappop(heap)
        batches[worker].append(i)
        heapq.heappush(heap, (load + costs[i], worker))
    loads = [sum(costs[i] for i in batch) for batch in batches]
    kept = [(sorted(batch), load)
            for batch, load in zip(batches, loads) if batch]
    return Plan(parallel=True,
                batches=[batch for batch, _ in kept],
                batch_costs=[load for _, load in kept],
                total_cost=total)
