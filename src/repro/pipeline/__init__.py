"""The parallel + incremental checking pipeline.

:class:`CheckSession` is the entry point: a long-lived object whose
``check(source)`` behaves exactly like :func:`repro.check_source` but
caches per-function summaries, parsed declaration chunks, and
elaborated contexts between calls, and can fan uncached function
checks out to a supervised fork-based process pool (crashed workers
are respawned, hung workers are killed by a cost-model watchdog,
poisonous batches are bisected, corrupt on-disk caches are
quarantined).  See ``docs/CHECKER.md`` ("Performance" and "Failure
modes and recovery") for the cache key derivation, the determinism
guarantee and the recovery state machine.  :class:`FaultPlan` is the
deterministic chaos harness that makes every recovery path testable.
"""

from .chunks import Chunk, ChunkError, split_chunks
from .faults import FaultError, FaultPlan
from .fingerprint import (cache_checksum, collect_names,
                          dependency_renderings, function_fingerprint)
from .scheduler import (BREAK_EVEN_SECONDS, DEFAULT_BATCH_TIMEOUT, Plan,
                        available_cpus, batch_deadline, estimate_cost,
                        plan, resolve_jobs)
from .session import CheckSession, SessionStats
from .workers import WorkerCrash, WorkerPool, fork_available

__all__ = [
    "BREAK_EVEN_SECONDS",
    "CheckSession",
    "Chunk",
    "ChunkError",
    "DEFAULT_BATCH_TIMEOUT",
    "FaultError",
    "FaultPlan",
    "Plan",
    "SessionStats",
    "WorkerCrash",
    "WorkerPool",
    "available_cpus",
    "batch_deadline",
    "cache_checksum",
    "collect_names",
    "dependency_renderings",
    "estimate_cost",
    "fork_available",
    "function_fingerprint",
    "plan",
    "resolve_jobs",
    "split_chunks",
]
