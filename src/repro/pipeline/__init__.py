"""The parallel + incremental checking pipeline.

:class:`CheckSession` is the entry point: a long-lived object whose
``check(source)`` behaves exactly like :func:`repro.check_source` but
caches per-function summaries, parsed declaration chunks, and
elaborated contexts between calls, and can fan uncached function
checks out to a fork-based process pool.  See ``docs/CHECKER.md``
("Performance") for the cache key derivation and the determinism
guarantee.
"""

from .chunks import Chunk, ChunkError, split_chunks
from .fingerprint import (collect_names, dependency_renderings,
                          function_fingerprint)
from .scheduler import (BREAK_EVEN_SECONDS, Plan, available_cpus,
                        estimate_cost, plan, resolve_jobs)
from .session import CheckSession, SessionStats
from .workers import WorkerCrash, WorkerPool, fork_available

__all__ = [
    "BREAK_EVEN_SECONDS",
    "CheckSession",
    "Chunk",
    "ChunkError",
    "Plan",
    "SessionStats",
    "WorkerCrash",
    "WorkerPool",
    "available_cpus",
    "collect_names",
    "dependency_renderings",
    "estimate_cost",
    "fork_available",
    "function_fingerprint",
    "plan",
    "resolve_jobs",
    "split_chunks",
]
