"""The parallel + incremental checking pipeline.

:class:`CheckSession` is the entry point: a long-lived object whose
``check(source)`` behaves exactly like :func:`repro.check_source` but
caches per-function summaries, parsed declaration chunks, and
elaborated contexts between calls, and can fan uncached function
checks out to a fork-based process pool.  See ``docs/CHECKER.md``
("Performance") for the cache key derivation and the determinism
guarantee.
"""

from .chunks import Chunk, ChunkError, split_chunks
from .fingerprint import (collect_names, dependency_renderings,
                          function_fingerprint)
from .session import CheckSession, SessionStats

__all__ = [
    "CheckSession",
    "Chunk",
    "ChunkError",
    "SessionStats",
    "collect_names",
    "dependency_renderings",
    "function_fingerprint",
    "split_chunks",
]
